"""Ratcheted coverage floor over a coverage.py JSON report.

CI runs ``pytest --cov=repro --cov-report=json`` and then::

    python tools/check_coverage_floor.py coverage.json \
        --prefix src/repro/observability/ --floor 90

The check aggregates ``covered_lines / num_statements`` across every
measured file under ``--prefix`` and fails (exit 1) below ``--floor``.
It is a *ratchet*: when the measured coverage rises, raise the floor in
ci.yml to match -- never lower it to make a red build green.  Matching
zero files is an error (exit 2), so a renamed package cannot silently
disable the gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["aggregate", "main"]


def aggregate(report: dict, prefix: str) -> tuple[float, int, list[str]]:
    """(percent covered, statement count, matched files) under prefix."""
    files = report.get("files")
    if not isinstance(files, dict):
        raise ValueError("not a coverage.py JSON report: no 'files' object")
    prefix_path = pathlib.PurePosixPath(prefix.rstrip("/"))
    covered = statements = 0
    matched: list[str] = []
    for raw_name, entry in sorted(files.items()):
        name = pathlib.PurePosixPath(raw_name.replace("\\", "/"))
        if not name.is_relative_to(prefix_path):
            continue
        summary = entry.get("summary", {})
        covered += int(summary.get("covered_lines", 0))
        statements += int(summary.get("num_statements", 0))
        matched.append(str(name))
    percent = 100.0 * covered / statements if statements else 0.0
    return percent, statements, matched


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage.py JSON report path")
    parser.add_argument(
        "--prefix", default="src/repro/observability/",
        help="only count files under this path (default: %(default)s)",
    )
    parser.add_argument(
        "--floor", type=float, default=90.0,
        help="minimum aggregate line coverage percent (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        report = json.loads(pathlib.Path(args.report).read_text())
        percent, statements, matched = aggregate(report, args.prefix)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not matched:
        print(
            f"error: no measured files under {args.prefix!r} -- "
            "wrong prefix or the package was renamed without moving the gate",
            file=sys.stderr,
        )
        return 2
    print(
        f"{args.prefix}: {percent:.1f}% of {statements} statements "
        f"across {len(matched)} file(s); floor {args.floor:.1f}%"
    )
    if percent < args.floor:
        print(
            f"FAIL: coverage {percent:.1f}% is below the ratcheted floor "
            f"{args.floor:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark configuration.

Benchmarks default to the "smoke" scale so ``pytest benchmarks/
--benchmark-only`` completes in a few minutes on a laptop; set
``REPRO_BENCH_SCALE=bench`` to reproduce the EXPERIMENTS.md numbers
(tens of minutes; campaign logs are cached on disk after the first
run, so repeated invocations time only the analysis).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import DATASET_SPECS, generate_dataset, get_scale


def pytest_report_header(config):
    return f"repro benchmark scale: {_scale_name()}"


def _scale_name() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale():
    return get_scale(_scale_name())


@pytest.fixture(scope="session")
def warm_cache(scale):
    """Generate (or load) every Table II dataset once, up front, so the
    table benchmarks time the mining pipeline rather than disk/campaign
    work on first touch."""
    for name in sorted(DATASET_SPECS):
        generate_dataset(name, scale)
    return True

"""Bench R-9: statistical sampling campaigns (repro.injection.sampling).

Times one synthetic wide campaign -- 8 int64 variables x 64 bits x 196
test cases = 100,352 cells -- exhaustively and under
``mode="sample"`` at a 0.02 CI half-width stop target.  The sampled
run pays for the stratified draw plan, the per-round interval updates
and the batched flip-mask generation; the speedup measures the whole
sampled pipeline against the whole exhaustive loop.

The assertions encode the subsystem's contract *before* the speedup
bar is judged: every sampled record is bit-identical to the exhaustive
campaign's record for the same (variable, bit, time, test case) cell,
every stratum reached the stop target, and only then does the
wall-clock ratio get compared against the >= 5x acceptance bar of
EXPERIMENTS.md R-9.
"""

import json
import os
import time

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.injection.sampling import SamplingSpec
from repro.mining.cache import clear_reuse_caches
from repro.targets.base import TargetSystem

#: Bits of an int64 whose corruption the output sum exposes: 3 of 64,
#: a ~4.7% deterministic failure rate per stratum -- far enough from
#: 0.5 that the 0.02-half-width stop needs only a few rounds.
SENSITIVE_MASK = (1 << 3) | (1 << 31) | (1 << 62)

VARIABLES = tuple(f"v{i}" for i in range(8))
TEST_CASES = tuple(range(196))


class WideTarget(TargetSystem):
    """Eight int64 variables, one probe, O(1) per run: the cheapest
    target that still spans a >= 100k-cell injection space."""

    name = "WD"

    @property
    def modules(self):
        return ("Wide",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return tuple(VariableSpec(name, "int64") for name in VARIABLES)

    def run(self, test_case, harness: Harness):
        state = harness.probe(
            "Wide",
            Location.ENTRY,
            {name: test_case * 977 for name in VARIABLES},
        )
        return sum(int(state[name]) & SENSITIVE_MASK for name in VARIABLES)

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


CONFIG = CampaignConfig(
    module="Wide",
    injection_location=Location.ENTRY,
    sample_location=Location.ENTRY,
    test_cases=TEST_CASES,
    injection_times=(0,),
)

SPEC = SamplingSpec(
    ci="wilson",
    target_halfwidth=0.02,
    min_cells=64,
    round_cells=256,
    seed=7,
)


def _timed(**kwargs):
    clear_reuse_caches()  # both runs capture their own golden runs
    campaign = Campaign(WideTarget(), CONFIG)
    started = time.perf_counter()
    result = campaign.run(**kwargs)
    return time.perf_counter() - started, result


@pytest.mark.bench_smoke
def test_bench_sampling_speedup(benchmark):
    exhaustive_s, exhaustive = _timed()
    cells_total = len(exhaustive.records)
    assert cells_total >= 100_000

    sampled_s, sampled = benchmark.pedantic(
        lambda: _timed(mode="sample", sampling=SPEC), rounds=1, iterations=1
    )
    report = sampled.sampling

    # Contract first: the sampled subset is bit-identical to the
    # exhaustive table, and every stratum converged at the target.
    table = {
        (r.flip.variable, r.flip.bit, r.injection_time, r.test_case): r.to_dict()
        for r in exhaustive.records
    }
    for record in sampled.records:
        key = (
            record.flip.variable,
            record.flip.bit,
            record.injection_time,
            record.test_case,
        )
        assert record.to_dict() == table[key]
    assert all(s.stopped == "converged" for s in report.strata)
    assert all(s.halfwidth <= SPEC.target_halfwidth for s in report.strata)

    speedup = exhaustive_s / sampled_s
    print()
    print(
        f"sampling WD @ {cells_total} cells: exhaustive {exhaustive_s:.2f}s, "
        f"sampled {sampled_s:.2f}s ({speedup:.1f}x); "
        f"{report.cells_sampled}/{report.cells_total} cells drawn "
        f"({report.sampled_fraction:.1%}) in {report.rounds} round(s)"
    )

    artifact = os.environ.get("REPRO_BENCH_SAMPLING_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "target": WideTarget.name,
                    "cells_total": report.cells_total,
                    "cells_sampled": report.cells_sampled,
                    "sampled_fraction": report.sampled_fraction,
                    "rounds": report.rounds,
                    "ci": SPEC.ci,
                    "target_halfwidth": SPEC.target_halfwidth,
                    "exhaustive_s": exhaustive_s,
                    "sampled_s": sampled_s,
                    "speedup": speedup,
                    "strata": [
                        {
                            "stratum": s.stratum,
                            "sampled": s.sampled,
                            "halfwidth": s.halfwidth,
                            "stopped": s.stopped,
                        }
                        for s in report.strata
                    ],
                },
                handle,
                indent=2,
            )

    # The R-9 acceptance bar: >= 5x end-to-end at the 0.02 stop target.
    assert speedup >= 5.0, f"speedup {speedup:.2f}x below the 5x bar"

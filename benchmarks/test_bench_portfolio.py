"""Bench R-8: detector-portfolio solve time (repro.portfolio).

Times one full greedy sweep (solve + Pareto front) over a synthetic
100-candidate instance with structured overlap -- far past the exact
solver's 20-candidate ceiling, so the timing exercises the path real
deployments take.  Before timing anything it re-asserts the
correctness contract on a 12-candidate slice: greedy (with its
best-single safeguard) must match the branch-and-bound optimum
exactly, as it does on every tractable instance in the test suite.

The acceptance bar is deliberately generous -- the greedy sweep is
O(n^2) coverage evaluations and must stay interactive (< 5 s for 100
candidates at ~20 budgets) so `repro portfolio pareto` remains a
sub-second CLI call at the 18-dataset scale used in EXPERIMENTS R-8.
"""

import json
import os
import time

import pytest

from repro.portfolio.candidates import CandidateSet, DetectorCandidate
from repro.portfolio.optimize import exact_select, greedy_select
from repro.portfolio.pareto import pareto_front

N_CANDIDATES = 100
UNIVERSE = 400
TIME_BAR_S = 5.0


def _instance(n=N_CANDIDATES, universe=UNIVERSE):
    """Deterministic overlapping-coverage instance, no RNG needed.

    Candidate ``i`` detects a contiguous arithmetic stripe of the
    universe whose width and stride vary with ``i``, so detection sets
    overlap heavily (the interesting case for marginal coverage) and
    costs span two orders of magnitude.
    """
    candidates = []
    for i in range(n):
        width = 5 + (i * 7) % 40
        start = (i * 13) % universe
        stride = 1 + i % 3
        ids = frozenset(
            (start + k * stride) % universe for k in range(width)
        )
        candidates.append(
            DetectorCandidate(
                name=f"d{i:03d}",
                coverage=len(ids) / universe,
                cost_s=(1 + (i * 11) % 100) * 1e-7,
                detected=ids,
            )
        )
    return CandidateSet(candidates, activated=universe)


@pytest.mark.bench_smoke
def test_bench_portfolio_solve(benchmark):
    # Contract first: on a tractable slice, safeguarded greedy matches
    # the exact optimum before we trust its timings at scale.
    small = CandidateSet(list(_instance())[:12], activated=UNIVERSE)
    for budget in (5e-6, 2e-5, 1e-4):
        greedy = greedy_select(small, budget)
        exact = exact_select(small, budget)
        assert greedy.coverage == pytest.approx(exact.coverage), budget

    candidates = _instance()
    budgets = [k * 5e-6 for k in range(1, 21)]

    def sweep():
        started = time.perf_counter()
        front = pareto_front(candidates, budgets, solver="greedy")
        return time.perf_counter() - started, front

    elapsed_s, front = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best = front[-1]

    print()
    print(
        f"portfolio solve: {N_CANDIDATES} candidates x {len(budgets)} "
        f"budgets in {elapsed_s:.2f}s; front {len(front)} points, "
        f"best coverage {best.coverage:.3f} at {best.cost_s * 1e6:.1f}us"
    )

    artifact = os.environ.get("REPRO_BENCH_PORTFOLIO_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "candidates": N_CANDIDATES,
                    "universe": UNIVERSE,
                    "budgets": len(budgets),
                    "sweep_s": elapsed_s,
                    "front_points": len(front),
                    "best_coverage": best.coverage,
                    "best_cost_s": best.cost_s,
                    "time_bar_s": TIME_BAR_S,
                },
                handle,
                indent=2,
            )

    # The front must be usable, not just fast.
    assert len(front) >= 3
    assert best.coverage > 0.9
    assert elapsed_s < TIME_BAR_S, (
        f"sweep took {elapsed_s:.2f}s, over the {TIME_BAR_S:.0f}s bar"
    )

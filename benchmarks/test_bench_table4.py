"""Bench E-T4: regenerate Table IV (refined models).

Paper-shape assertion (Section VII-D): "each of the models generated
in the previous step were improved on, with respect to the mean AUC
measure, during the predicate refinement process" -- i.e. refined AUC
>= baseline AUC for every dataset (our pipeline falls back to the
baseline when no grid point beats it, so the inequality is exact).
"""

from repro.experiments import table4


def test_bench_table4(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(lambda: table4.run(scale), rounds=1, iterations=1)
    print()
    print(table4.main(scale))
    assert len(rows) == 18
    for row in rows:
        assert row.improved, (
            f"{row.dataset}: refined AUC {row.auc} < baseline "
            f"{row.baseline_auc}"
        )
        assert row.fpr < 0.08, f"{row.dataset}: FPR {row.fpr}"
    # Refinement lifts the hard datasets: the minimum TPR across the
    # table must rise relative to the baseline table.
    from repro.experiments import table3

    baseline_rows = {r.dataset: r for r in table3.run(scale)}
    improved_tpr = sum(
        1 for r in rows if r.tpr >= baseline_rows[r.dataset].tpr - 1e-9
    )
    assert improved_tpr >= 9, "refinement should not trade TPR away broadly"

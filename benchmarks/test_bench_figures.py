"""Benches E-F1/E-F2/F-R: pipeline trace, tree figure, ROC figure."""

from repro.experiments import figure1, figure2, figure_roc


def test_bench_figure1(benchmark, scale, warm_cache):
    trace, detector = benchmark.pedantic(
        lambda: figure1.run(scale, "MG-A2"), rounds=1, iterations=1
    )
    print()
    print(trace)
    # The trace must show all four stages and end with the detector.
    for marker in ("[Step 1]", "[Step 2]", "[Step 3]", "[Step 4]",
                   "[Output]"):
        assert marker in trace
    assert detector.predicate is not None
    assert "def generated_detector" in trace


def test_bench_figure2(benchmark, scale, warm_cache):
    text = benchmark.pedantic(
        lambda: figure2.run(scale, "MG-A1"), rounds=1, iterations=1
    )
    print()
    print(text)
    # Figure 2 structure: a rendered tree plus the extracted predicate.
    assert "fail" in text
    assert "Extracted predicate" in text
    assert "flag_error =" in text


def test_bench_figure_roc(benchmark, scale, warm_cache):
    points, envelope_auc, baseline_auc = benchmark.pedantic(
        lambda: figure_roc.run(scale, "FG-B1"), rounds=1, iterations=1
    )
    print()
    print(figure_roc.main(scale, "FG-B1"))
    # One point per grid trial plus the baseline.
    assert len(points) == scale.grid.size() + 1
    # The multi-point envelope cannot be worse than the baseline's
    # single-point trapezoid AUC (it passes through that point).
    assert envelope_auc >= baseline_auc - 1e-9
    for fpr, tpr, _ in points:
        assert 0.0 <= fpr <= 1.0
        assert 0.0 <= tpr <= 1.0

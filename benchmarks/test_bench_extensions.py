"""Benches A-4/A-5/P-1: cost-sensitivity, invariant baselines, propagation."""

import pytest

from repro.experiments import ablation_baselines, ablation_cost, propagation


def test_bench_ablation_cost(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: ablation_cost.run(scale), rounds=1, iterations=1
    )
    print()
    print(ablation_cost.main(scale))
    by_dataset: dict[str, dict[str, float]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.plan] = row.tpr
    # Shape: Ting instance weighting is competitive with resampling --
    # the best cost plan reaches at least the no-treatment TPR.
    for dataset, plans in by_dataset.items():
        best_cost = max(plans["ting-cost-5"], plans["ting-cost-20"])
        assert best_cost >= plans["none"] - 0.02, dataset


def test_bench_ablation_baselines(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: ablation_baselines.run(scale), rounds=1, iterations=1
    )
    print()
    print(ablation_baselines.main(scale))
    by_key = {(r.dataset, r.approach): r for r in rows}
    datasets = {r.dataset for r in rows}
    for dataset in datasets:
        mined = by_key[(dataset, "mined (step 3)")]
        invariants = by_key[(dataset, "invariants")]
        # The paper's core contrast: failure-aware predicates are far
        # more accurate than deviation-detecting invariants.
        assert mined.fpr < invariants.fpr, dataset
        assert mined.fpr < 0.1, dataset
        assert invariants.fpr > 0.2, dataset


def test_bench_propagation(benchmark, scale, warm_cache):
    reports = benchmark.pedantic(
        lambda: propagation.run(scale), rounds=1, iterations=1
    )
    print()
    print(propagation.main(scale))
    by_module = {(r.target, r.module): r for r in reports}
    # Shape checks against the targets' designed resilience.
    fhandle = by_module[("7Z", "FHandle")]
    per_var = {v.variable: v.permeability for v in fhandle.variables}
    assert per_var["checksum_acc"] <= 0.02   # scratch accumulator
    assert per_var["arch_offset"] >= 0.5     # live offset chain
    mass = by_module[("FG", "Mass")]
    assert 0 < mass.module_permeability < 0.5
    for report in reports:
        assert report.total_runs > 0
        assert 0 <= report.module_permeability <= 1


def test_bench_ablation_labels(benchmark, scale, warm_cache):
    from repro.experiments import ablation_labels

    rows = benchmark.pedantic(
        lambda: ablation_labels.run(scale), rounds=1, iterations=1
    )
    print()
    print(ablation_labels.main(scale))
    by_key = {(r.dataset, r.trained_on): r for r in rows}
    for dataset in {r.dataset for r in rows}:
        failure = by_key[(dataset, "failure")]
        deviation = by_key[(dataset, "deviation")]
        # Deviation is the broader concept: more positives, and judged
        # against failures it pays in false positives.
        assert deviation.positives >= failure.positives, dataset
        assert deviation.fpr_vs_failure >= failure.fpr_vs_failure, dataset
        assert failure.fpr_vs_failure < 0.1, dataset


def test_bench_significance(benchmark, scale, warm_cache):
    from repro.experiments import significance

    rows = benchmark.pedantic(
        lambda: significance.run(scale, ["7Z-A1", "MG-B1"]),
        rounds=1, iterations=1,
    )
    print()
    print(significance.main(scale, ["7Z-A1", "MG-B1"]))
    for row in rows:
        assert 0 <= row.t_test.p_value <= 1
        # Matched folds: identical fold assignment for both plans, so
        # the comparison is paired and the delta equals the AUC gap.
        assert row.t_test.mean_difference == pytest.approx(
            row.refined_auc - row.baseline_auc, abs=1e-9
        )



def test_bench_latency(benchmark, scale, warm_cache):
    from repro.experiments import latency

    rows = benchmark.pedantic(
        lambda: latency.run(scale, ["MG-B"]), rounds=1, iterations=1
    )
    print()
    print(latency.main(scale, ["MG-B"]))
    by_detector = {r.detector: r for r in rows}
    assert set(by_detector) == {"entry", "exit", "union"}
    # The union's coverage dominates both members'.
    union = by_detector["union"].report.coverage.point
    assert union >= by_detector["entry"].report.coverage.point - 1e-9
    assert union >= by_detector["exit"].report.coverage.point - 1e-9
    for row in rows:
        assert 0 <= row.report.coverage.point <= 1
        assert row.report.latency.mean >= 0

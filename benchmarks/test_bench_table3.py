"""Bench E-T3: regenerate Table III (baseline C4.5, no sampling).

Paper-shape assertions (Section VII-C): high AUC everywhere, very low
FPR, low AUC variance across folds.  Absolute numbers depend on the
scale; the asserted bounds are the loosest that still capture the
paper's qualitative claims at the smoke scale (the bench scale clears
them by a wide margin -- see EXPERIMENTS.md).
"""

from repro.experiments import table3


def test_bench_table3(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(lambda: table3.run(scale), rounds=1, iterations=1)
    print()
    print(table3.main(scale))
    assert len(rows) == 18
    for row in rows:
        # "the mean AUC for all baseline models is greater than 0.896"
        # -- at reduced scale we assert a looser floor.
        assert row.auc > 0.70, f"{row.dataset}: AUC {row.auc}"
        # "the mean FPR is extremely low in all cases"
        assert row.fpr < 0.05, f"{row.dataset}: FPR {row.fpr}"
        # "the variance of all the models generated is consistently low"
        assert row.var < 0.08, f"{row.dataset}: Var {row.var}"
        assert row.comp >= 1.0
    # Global shape: most datasets reach the paper's TPR regime.
    strong = sum(1 for r in rows if r.tpr >= 0.75)
    assert strong >= 12, f"only {strong}/18 datasets reach TPR 0.75"

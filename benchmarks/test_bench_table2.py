"""Bench E-T2: regenerate Table II (the 18 fault-injection datasets).

Also benchmarks one raw campaign (no cache) so the cost of Step 1
itself is visible, separately from the cached table assembly.
"""

from repro.experiments import table2
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
)
from repro.injection.campaign import Campaign


def test_bench_table2(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(lambda: table2.run(scale), rounds=1, iterations=1)
    print()
    print(table2.main(scale))
    assert len(rows) == 18
    by_name = {r.dataset: r for r in rows}
    # Table II structure: 3 systems x 2 modules x 3 location pairs.
    assert set(by_name) == set(DATASET_SPECS)
    # Shape: fault injection data is imbalanced towards non-failures
    # in every dataset ("only a small proportion of runs lead to
    # failure"), yet every dataset has a failure pool to learn from.
    for row in rows:
        assert 0 < row.failures < row.instances / 2, row.dataset


def test_bench_single_campaign(benchmark, scale):
    """Step 1 cost for one dataset, bypassing the cache."""
    spec = DATASET_SPECS["MG-A1"]

    def run_campaign():
        target = build_target(spec.target, scale)
        return Campaign(target, campaign_config(spec, scale)).run()

    result = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    assert result.n_runs > 0
    assert 0 < result.failure_rate < 0.5

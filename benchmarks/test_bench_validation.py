"""Bench V-1: runtime-assertion re-injection validation (Section VII-D)."""

from repro.experiments import validation


def test_bench_validation(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: validation.run(scale), rounds=1, iterations=1
    )
    print()
    print(validation.main(scale))
    assert rows
    for row in rows:
        # The paper's check: rates observed under re-injection are
        # commensurate with the cross-validation estimates.
        assert row.commensurate, (
            f"{row.dataset}: observed TPR={row.observed_tpr} "
            f"FPR={row.observed_fpr} vs CV TPR={row.cv_tpr} "
            f"FPR={row.cv_fpr}"
        )
        assert row.mean_latency >= 0.0

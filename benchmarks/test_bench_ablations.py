"""Benches A-1/A-2/A-3: the ablation studies of DESIGN.md."""

import numpy as np

from repro.experiments import (
    ablation_learners,
    ablation_location,
    ablation_sampling,
)


def test_bench_ablation_sampling(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: ablation_sampling.run(scale), rounds=1, iterations=1
    )
    print()
    print(ablation_sampling.main(scale))
    by_dataset: dict[str, dict[str, float]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.plan] = row.tpr
    # Shape: some resampling plan matches or beats the no-sampling TPR
    # on most datasets (the reason Step 2/4 exist).
    helped = sum(
        1
        for plans in by_dataset.values()
        if max(v for k, v in plans.items() if k != "none")
        >= plans["none"] - 1e-9
    )
    assert helped >= len(by_dataset) - 1


def test_bench_ablation_learners(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: ablation_learners.run(scale), rounds=1, iterations=1
    )
    print()
    print(ablation_learners.main(scale))
    by_key = {(r.dataset, r.learner): r for r in rows}
    datasets = {r.dataset for r in rows}
    for dataset in datasets:
        # Shape: C4.5 (the paper's choice) is competitive with the best
        # non-symbolic learner.
        c45 = by_key[(dataset, "c45")].auc
        best_other = max(
            r.auc for r in rows
            if r.dataset == dataset and r.learner not in ("c45", "rules", "prism")
        )
        assert c45 >= best_other - 0.1, dataset
    # Shape: the signed log mapping does not hurt Naive Bayes *on
    # average* (per-dataset it can cut either way: integer-dominated
    # attributes are already Gaussian-friendly).
    raw_mean = np.mean(
        [by_key[(d, "naive-bayes(raw)")].auc for d in datasets]
    )
    log_mean = np.mean(
        [by_key[(d, "naive-bayes(log)")].auc for d in datasets]
    )
    assert log_mean >= raw_mean - 0.08


def test_bench_ablation_location(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: ablation_location.run(scale), rounds=1, iterations=1
    )
    print()
    print(ablation_location.main(scale))
    groups = {r.module_group for r in rows}
    # Three location combinations per module group, all evaluable.
    for group in groups:
        combos = {r.combination for r in rows if r.module_group == group}
        assert combos == {"entry/entry", "entry/exit", "exit/exit"}
    assert all(np.isfinite(r.auc) for r in rows)

"""Bench R-4: mining data-plane throughput (repro.mining).

Times the presorted C4.5 data plane against the seed implementation
(naive per-node sorting, per-row descent, no reuse caches) on the
program-state workload of ``repro.experiments.mining_bench``.  The
contract checks run *inside* ``mining_bench.run`` -- trees, class
distributions and refinement rankings are verified bit-identical
before any timing is reported -- so the assertions here only encode
the throughput bars.

Measured margins (EXPERIMENTS.md R-4): batch distribution 14-18x,
induction 2.3-4.2x, end-to-end refinement 2.2-2.3x.  The refinement
target of the original plan was 3x; the measured ceiling is the shared
array-throughput floor analysed in docs/mining-performance.md, so the
asserted bar is the conservative 1.5x.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import mining_bench


@pytest.mark.bench_smoke
def test_bench_mining_data_plane(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: mining_bench.run(scale),
        rounds=1,
        iterations=1,
    )
    print()
    print(mining_bench.render(rows))
    by_stage = {row.stage: row for row in rows}
    assert set(by_stage) == {"fit", "distribution", "refine"}

    artifact = os.environ.get("REPRO_BENCH_JSON")
    if artifact:
        payload = {
            row.stage: {
                "detail": row.detail,
                "baseline_s": row.baseline_s,
                "optimized_s": row.optimized_s,
                "speedup": row.speedup,
            }
            for row in rows
        }
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump({"scale": scale.name, "stages": payload}, handle, indent=2)

    # Level-order batch routing vs per-row recursive descent: the
    # acceptance bar is >= 5x (measured margin 14-18x).
    assert by_stage["distribution"].speedup >= 5.0
    # Presorted induction vs per-node sorting (measured 2.3-4.2x).
    assert by_stage["fit"].speedup >= 1.5
    # End-to-end Step 4 sweep vs the seed path (measured 2.2-2.3x; see
    # the module docstring for why the bar sits below the 3x target).
    assert by_stage["refine"].speedup >= 1.5

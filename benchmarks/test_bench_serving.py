"""Bench R-6: sustained throughput of the serving tier (repro.serving).

Times one synthetic load run against the multi-process topology with 1
evaluator worker and with 4, on a **wait-bound** workload: each event
carries a modeled 0.3 ms downstream cost
(``ServeConfig.worker_cost_s`` -- an external scorer or RPC), so the
scaling measures the tier's sharding/ring/drain machinery rather than
this machine's core count (CI runners and the reference container
expose a single CPU, where a compute-bound workload cannot speed up at
all; the precedent is the R-3 orchestration bench).

The assertions encode the subsystem's contract:

* accounting closed on both runs -- ``processed + shed == submitted``
  with zero shed (no silent loss at any worker count);
* per-event flags bit-identical between the 1-worker and 4-worker
  topologies (sharding must never change what gets flagged);
* >= 2x sustained-throughput scaling from 1 to 4 workers.
"""

import json
import os
import time

import pytest

from repro.core.detector import Detector
from repro.core.predicate import And, Comparison, Or
from repro.runtime.registry import DetectorRegistry
from repro.serving import (
    LoadProfile,
    ServeConfig,
    ServingTopology,
    synthesize_states,
)

EVENTS = 1600
BATCH = 20
COST_S = 0.0003  # modeled downstream cost per event


def make_registry() -> DetectorRegistry:
    registry = DetectorRegistry(lint_policy="off")
    registry.register(Detector(Comparison("v", ">", 5.0), name="hi"))
    registry.register(
        Detector(
            Or([Comparison("v", "<=", 1.0), Comparison("w", "==", 0.0)]),
            name="lo",
        )
    )
    registry.register(
        Detector(
            And([Comparison("u", "!=", 3.0), Comparison("v", ">", 0.0)]),
            name="mix",
        )
    )
    return registry


def _timed_run(tmp_path, registry, states, workers):
    topology = ServingTopology.from_registry(
        registry,
        tmp_path / f"snapshot-{workers}.json",
        ServeConfig(
            workers=workers,
            capacity=256,
            batch_size=BATCH,
            shed_after_s=5.0,
            worker_cost_s=COST_S,
        ),
    )
    topology.start()
    started = time.perf_counter()
    topology.submit_many(states)
    topology.drain()
    elapsed = time.perf_counter() - started
    return elapsed, topology.stop()


@pytest.mark.bench_smoke
def test_bench_serving_scales_with_workers(benchmark, tmp_path):
    registry = make_registry()
    states = list(
        synthesize_states(registry, LoadProfile(events=EVENTS, seed=0))
    )
    single_s, single = _timed_run(tmp_path, registry, states, workers=1)

    def quad_run():
        return _timed_run(tmp_path, registry, states, workers=4)

    quad_s, quad = benchmark.pedantic(quad_run, rounds=1, iterations=1)
    speedup = single_s / quad_s

    print()
    print(
        f"serving: {EVENTS} events, 1 worker {single_s:.2f}s "
        f"({EVENTS / single_s:,.0f} ev/s), 4 workers {quad_s:.2f}s "
        f"({EVENTS / quad_s:,.0f} ev/s, {speedup:.1f}x)"
    )

    # Contract first: closed accounting, nothing shed, on both runs.
    for report in (single, quad):
        assert report.accounted, "processed + shed != submitted"
        assert report.submitted == EVENTS
        assert report.shed == 0 and report.processed == EVENTS
    # Sharding must never change what gets flagged: bit-identical
    # per-event masks between the two topologies.
    assert single.flags_by_seq() == quad.flags_by_seq()
    # Both runs ran the same deploy serial throughout.
    assert set(single.serials) == set(quad.serials) == {1}
    # The acceptance bar: >= 2x sustained throughput from 1 -> 4
    # workers on the wait-bound load.
    assert speedup >= 2.0, f"speedup {speedup:.2f}x below the 2x bar"

    artifact = os.environ.get("REPRO_BENCH_SERVING_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "events": EVENTS,
                    "batch_size": BATCH,
                    "worker_cost_s": COST_S,
                    "single_worker_s": single_s,
                    "four_worker_s": quad_s,
                    "single_events_per_s": EVENTS / single_s,
                    "four_events_per_s": EVENTS / quad_s,
                    "speedup": speedup,
                    "shed": quad.shed,
                    "detections": quad.detections(),
                },
                handle,
                indent=2,
            )

"""Bench R-3: parallel campaign execution (repro.orchestration).

Times one latency-bound injection campaign serially and on a 4-worker
:class:`~repro.orchestration.ProcessPool`.  The target models the
dominant cost of a real campaign -- waiting on an external binary to
run one injected test case -- with a fixed sleep per run, so the
speedup measures the orchestration layer's scheduling rather than this
machine's core count (CI runners and the reference container expose a
single CPU, where a compute-bound workload cannot speed up at all).

The assertions encode the subsystem's contract: the merged parallel
result is bit-identical to the serial one, and 4 workers clear a >= 2x
wall-clock speedup on the wait-bound workload.
"""

import time

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.orchestration import ProcessPool
from repro.targets.base import TargetSystem


class WaitBoundTarget(TargetSystem):
    """Each run waits ``delay`` seconds, like an external binary would."""

    name = "WB"
    delay = 0.02

    @property
    def modules(self):
        return ("Acc",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (VariableSpec("acc", "int32"), VariableSpec("scratch", "int32"))

    def run(self, test_case, harness: Harness):
        time.sleep(self.delay)
        acc = test_case
        for step in range(4):
            state = harness.probe(
                "Acc", Location.ENTRY, {"acc": acc, "scratch": 0}
            )
            acc = int(state["acc"]) + step
        return acc

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


CONFIG = CampaignConfig(
    module="Acc",
    injection_location=Location.ENTRY,
    sample_location=Location.ENTRY,
    test_cases=(0, 1, 2),
    injection_times=(1, 2),
    bits=(0, 1, 2, 3),
)


def _timed_run(pool=None):
    campaign = Campaign(WaitBoundTarget(), CONFIG)
    started = time.perf_counter()
    result = campaign.run(pool=pool) if pool is not None else campaign.run()
    return time.perf_counter() - started, result


def test_bench_orchestration_speedup(benchmark):
    serial_seconds, serial = _timed_run()

    def parallel_run():
        with ProcessPool(4, backoff=0) as pool:
            return _timed_run(pool=pool)

    parallel_seconds, parallel = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )
    speedup = serial_seconds / parallel_seconds
    print()
    print(
        f"orchestration: {serial.n_runs} runs, serial {serial_seconds:.2f}s, "
        f"4 workers {parallel_seconds:.2f}s ({speedup:.1f}x)"
    )
    # Contract first: parallel merge is bit-identical to the serial run.
    assert parallel.records == serial.records
    assert parallel.orchestration["jobs"] == 4
    assert parallel.orchestration["quarantined"] == []
    # The acceptance bar: >= 2x at 4 workers on the wait-bound campaign.
    assert speedup >= 2.0, f"speedup {speedup:.2f}x below the 2x bar"

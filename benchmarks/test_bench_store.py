"""Bench R-10: the compositional campaign store (repro.injection.store).

Times a full multi-module injection sweep -- 8 source-built modules x
6 bits x 2 variables x 2 test cases -- twice after a single-module
edit: once cold (fresh exhaustive re-run of every module) and once
warm against a store populated before the edit (only the edited
module's shards execute; the other 7 modules load bit-identically).

The assertions encode the subsystem's contract *before* the speedup
bar is judged: the warm delta run's record tables equal the cold
exhaustive run's for every module -- ``to_dict()`` equality, canonical
order included -- and the store counters prove that no shard of an
unedited module executed.  Only then does the wall-clock ratio get
compared against the >= 5x acceptance bar of EXPERIMENTS.md R-10.
"""

import json
import os
import time

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.injection.store import CampaignStore
from repro.mining.cache import clear_reuse_caches
from repro.orchestration.tasks import fingerprint_of
from repro.targets.base import TargetSystem

MODULES = tuple(f"m{i}" for i in range(8))

#: Iterations of the per-run LCG busy loop: sized so one run costs
#: milliseconds, the regime where injection runs (not fingerprinting
#: or store IO) dominate both sides of the ratio -- as they do for the
#: real targets, whose runs are full application executions.
ITERATIONS = 60_000


def source_for(module: str, generation: int = 0) -> str:
    """Module source: a keyed LCG reduction over the probed inputs.

    ``generation`` perturbs the increment, modelling an edit that
    changes both the source text and the computed component.
    """
    seed = sum(ord(c) for c in module) * 977 + generation
    return (
        "def compute(a, b):\n"
        f"    acc = (a * 48271 + b * 16807 + {seed}) % 2147483647\n"
        f"    for _ in range({ITERATIONS}):\n"
        "        acc = (acc * 48271 + 11) % 2147483647\n"
        "    return acc\n"
    )


class StoreBenchTarget(TargetSystem):
    """Multi-module source-built target (the test-suite SourcedTarget
    shape, with a busy-loop per module so runs dominate wall-clock)."""

    name = "SB"

    def __init__(self, sources: dict) -> None:
        self._sources = dict(sources)
        self._fns = {}
        for module, source in self._sources.items():
            namespace: dict = {}
            exec(compile(source, f"<{module}>", "exec"), namespace)
            self._fns[module] = namespace["compute"]

    @property
    def modules(self):
        return tuple(sorted(self._sources))

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (VariableSpec("a", "int32"), VariableSpec("b", "int32"))

    def run(self, test_case, harness: Harness):
        out = []
        for module in self.modules:
            state = harness.probe(
                module,
                Location.ENTRY,
                {"a": test_case + 1, "b": 2 * test_case + 3},
            )
            out.append(self._fns[module](int(state["a"]), int(state["b"])))
        return tuple(out)

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output

    def fingerprint(self):
        return fingerprint_of(
            {
                "class": type(self).__qualname__,
                "sources": sorted(self._sources.items()),
            }
        )

    def shared_state_fingerprint(self):
        return fingerprint_of(
            {
                "class": type(self).__qualname__,
                "modules": sorted(self._sources),
            }
        )

    def module_sources(self, module):
        self.check_module(module)
        return (self._sources[module],)


def config_for(module: str) -> CampaignConfig:
    return CampaignConfig(
        module=module,
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(0,),
        bits=(0, 1, 2),
    )


def sweep(target, store=None):
    """One campaign per module; returns ({module: result}, seconds)."""
    clear_reuse_caches()  # each sweep captures its own golden runs
    started = time.perf_counter()
    results = {
        module: Campaign(target, config_for(module)).run(store=store)
        for module in target.modules
    }
    return results, time.perf_counter() - started


def tables(results):
    return {
        module: [record.to_dict() for record in result.records]
        for module, result in results.items()
    }


@pytest.mark.bench_smoke
def test_bench_store_delta_speedup(benchmark, tmp_path):
    original = {m: source_for(m) for m in MODULES}
    edited = dict(original, m3=source_for("m3", generation=1))

    # Populate the store at generation 0, then edit module m3.
    store = CampaignStore(tmp_path / "store")
    sweep(StoreBenchTarget(original), store=store)

    cold_results, cold_s = sweep(StoreBenchTarget(edited))
    warm_results, warm_s = benchmark.pedantic(
        lambda: sweep(StoreBenchTarget(edited), store=store),
        rounds=1,
        iterations=1,
    )

    # Contract first: the warm delta is bit-identical to the fresh
    # exhaustive sweep, module by module, and the counters prove that
    # only the edited module's shards executed.
    assert tables(warm_results) == tables(cold_results)
    shards_per_module = warm_results["m3"].orchestration["tasks"]
    for module, result in warm_results.items():
        delta = result.orchestration["store"]
        if module == "m3":
            assert result.orchestration["executed"] == (
                result.orchestration["tasks"]
            )
            assert delta["invalidated"] == result.orchestration["tasks"]
            assert delta["writes"] == result.orchestration["tasks"]
        else:
            assert result.orchestration["executed"] == 0
            assert result.orchestration["stored"] == (
                result.orchestration["tasks"]
            )
            assert delta["hits"] == result.orchestration["tasks"]
            assert delta["misses"] == 0 and delta["invalidated"] == 0

    reused = sum(r.orchestration["stored"] for r in warm_results.values())
    total = sum(r.orchestration["tasks"] for r in warm_results.values())
    speedup = cold_s / warm_s
    print()
    print(
        f"store {StoreBenchTarget.name} @ {len(MODULES)} modules, "
        f"{total} shards: cold {cold_s:.2f}s, warm delta {warm_s:.2f}s "
        f"({speedup:.1f}x); {reused}/{total} shards reused after editing m3"
    )

    artifact = os.environ.get("REPRO_BENCH_STORE_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "target": StoreBenchTarget.name,
                    "modules": len(MODULES),
                    "edited_module": "m3",
                    "shards_total": total,
                    "shards_reused": reused,
                    "reused_fraction": reused / total,
                    "shards_per_module": shards_per_module,
                    "cold_s": cold_s,
                    "warm_s": warm_s,
                    "speedup": speedup,
                    "divergences": 0,
                },
                handle,
                indent=2,
            )

    # The R-10 acceptance bar: >= 5x warm delta after a 1/8-module edit.
    assert speedup >= 5.0, f"speedup {speedup:.2f}x below the 5x bar"

"""Bench R-5: observability overhead (repro.observability).

The tracing contract has a cost clause: with the default no-op tracer
the instrumentation must be invisible -- under 5% of the R-4 refine
workload.  Instrumented code pays one dispatch through the module-level
``obs.span``/``obs.count`` per event whether or not tracing is on, so
the no-op overhead of a run is (events in the run) x (measured per-event
no-op cost); that product is compared against the measured refine wall
clock.  The active-tracer overhead (in-memory recording) is reported
alongside for EXPERIMENTS.md, and the ranking equality between the
traced and untraced sweeps re-asserts the bit-identity contract on the
benchmark workload itself.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import observability as obs
from repro.core.refine import RefinementGrid, refine
from repro.experiments.mining_bench import make_state_dataset
from repro.mining.cache import clear_reuse_caches
from repro.mining.tree import C45DecisionTree


def _noop_span_cost(samples: int = 50_000) -> float:
    """Seconds per (span enter + exit + one count) with tracing off."""
    assert not obs.enabled()
    started = time.perf_counter()
    for _ in range(samples):
        with obs.span("bench.noop") as span:
            span.count("n")
    return (time.perf_counter() - started) / samples


def _sweep(scale, tracer=None):
    clear_reuse_caches()
    dataset = make_state_dataset(600, 12, seed=scale.seed)
    grid = RefinementGrid(
        undersample_levels=(25.0, 85.0),
        oversample_levels=(100.0, 700.0),
        neighbour_counts=(1, 5),
    )
    factory = lambda: C45DecisionTree(min_leaf_weight=2.0)  # noqa: E731
    started = time.perf_counter()
    if tracer is None:
        result = refine(dataset, factory, grid, folds=3, seed=scale.seed)
    else:
        with obs.tracing(tracer):
            result = refine(dataset, factory, grid, folds=3, seed=scale.seed)
    return time.perf_counter() - started, result


def _ranking(result):
    return [(t.plan.describe(), t.key) for t in result.ranked()]


@pytest.mark.bench_smoke
def test_bench_observability_overhead(benchmark, scale):
    noop_cost = _noop_span_cost()

    def measured():
        untraced_s, untraced = _sweep(scale)
        tracer = obs.Tracer()
        traced_s, traced = _sweep(scale, tracer)
        return untraced_s, untraced, traced_s, traced, tracer

    untraced_s, untraced, traced_s, traced, tracer = benchmark.pedantic(
        measured, rounds=1, iterations=1
    )

    # Bit-identity on the benchmark workload itself.
    assert _ranking(untraced) == _ranking(traced)

    # Count the events the instrumented sweep emits: every span plus
    # every obs.count dispatch (counter increments inside spans).
    events = len(tracer.spans) + sum(
        len(record.counters) for record in tracer.spans
    )
    noop_overhead_s = events * noop_cost
    noop_fraction = noop_overhead_s / untraced_s
    active_fraction = max(traced_s / untraced_s - 1.0, 0.0)

    print()
    print(
        f"refine {untraced_s * 1e3:,.1f}ms untraced, "
        f"{traced_s * 1e3:,.1f}ms traced ({len(tracer.spans)} spans, "
        f"{events} events)"
    )
    print(
        f"no-op span cost {noop_cost * 1e9:,.0f}ns/event -> "
        f"{noop_overhead_s * 1e6:,.1f}us ({noop_fraction * 100:.3f}% of refine); "
        f"active tracer {active_fraction * 100:+.1f}%"
    )

    artifact = os.environ.get("REPRO_BENCH_OBS_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "scale": scale.name,
                    "refine_untraced_s": untraced_s,
                    "refine_traced_s": traced_s,
                    "spans": len(tracer.spans),
                    "events": events,
                    "noop_cost_ns": noop_cost * 1e9,
                    "noop_fraction": noop_fraction,
                    "active_fraction": active_fraction,
                },
                handle,
                indent=2,
            )

    # The R-5 acceptance bar: the no-op instrumentation accounts for
    # under 5% of the refine workload (measured ~0.01%, see
    # EXPERIMENTS.md R-5 -- the margin is ~500x).
    assert noop_fraction < 0.05
    # The sweep must actually be instrumented, or the bound is vacuous.
    assert len(tracer.spans) > 10

"""Bench R-7: static injection-space pruning (repro.analysis.prune).

Times one seed-target campaign (7Z-B3: the LDecode exit/exit dataset,
whose exit state is mostly write-only) exhaustively and under
``prune="static"`` with the default 5% audit enabled.  The pruned run
pays for the dataflow analysis, the per-bit channel signatures, the
record synthesis and the audit re-injections -- the speedup measures
the whole pipeline against the whole exhaustive loop, not just runs
skipped.

The assertions encode the subsystem's contract: the pruned outcome
table is bit-identical to the exhaustive one (``to_dict()`` equality,
canonical order included), the audit re-injects a real sample with
zero contradictions, and the wall-clock speedup clears the >= 1.5x
acceptance bar of EXPERIMENTS.md R-7 (measured ~4x at smoke scale).
"""

import json
import os
import time

import pytest

from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
)
from repro.injection.campaign import Campaign

DATASET = "7Z-B3"


def _campaign(scale):
    spec = DATASET_SPECS[DATASET]
    return Campaign(
        build_target(spec.target, scale), campaign_config(spec, scale)
    )


def _timed(scale, **kwargs):
    campaign = _campaign(scale)
    started = time.perf_counter()
    result = campaign.run(**kwargs)
    return time.perf_counter() - started, result


@pytest.mark.bench_smoke
def test_bench_prune_speedup(benchmark, scale):
    exhaustive_s, exhaustive = _timed(scale)

    pruned_s, pruned = benchmark.pedantic(
        lambda: _timed(scale, prune="static"), rounds=1, iterations=1
    )
    speedup = exhaustive_s / pruned_s
    info = pruned.prune
    audit = info["audit"]

    print()
    print(
        f"prune {DATASET} @ {scale.name}: exhaustive {exhaustive_s:.2f}s, "
        f"pruned {pruned_s:.2f}s ({speedup:.1f}x); "
        f"{info['runs_pruned']}/{info['runs_planned']} runs pruned "
        f"({info['pruned_fraction']:.0%}), {audit['audited']} audited"
    )

    artifact = os.environ.get("REPRO_BENCH_PRUNE_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "dataset": DATASET,
                    "scale": scale.name,
                    "exhaustive_s": exhaustive_s,
                    "pruned_s": pruned_s,
                    "speedup": speedup,
                    "runs_planned": info["runs_planned"],
                    "runs_executed": info["runs_executed"],
                    "runs_pruned": info["runs_pruned"],
                    "pruned_fraction": info["pruned_fraction"],
                    "audited": audit["audited"],
                    "contradictions": audit["contradictions"],
                },
                handle,
                indent=2,
            )

    # Contract first: the pruned table is bit-identical to exhaustive.
    assert [r.to_dict() for r in pruned.records] == [
        r.to_dict() for r in exhaustive.records
    ]
    # The audit actually sampled pruned cells, and none contradicted.
    assert audit["audited"] > 0
    assert audit["contradictions"] == 0
    assert info["runs_pruned"] > 0
    # The R-7 acceptance bar: >= 1.5x end-to-end on the seed target.
    assert speedup >= 1.5, f"speedup {speedup:.2f}x below the 1.5x bar"

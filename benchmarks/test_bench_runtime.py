"""Bench R-1: detector serving throughput (repro.runtime).

Times the compiled-vs-interpreted comparison on one Table II detector
per target system over a 10k-instance batch.  The assertions encode
the subsystem's contract: detection vectors are bit-identical across
paths (checked inside ``runtime_bench.run``) and the compiled batch
evaluator clears at least 5x interpreted throughput.
"""

from repro.experiments import runtime_bench


def test_bench_runtime_throughput(benchmark, scale, warm_cache):
    rows = benchmark.pedantic(
        lambda: runtime_bench.run(scale, n_states=10_000),
        rounds=1,
        iterations=1,
    )
    print()
    print(runtime_bench.render(rows))
    by_key = {(r.dataset, r.mode): r for r in rows}
    datasets = {r.dataset for r in rows}
    assert datasets == set(runtime_bench.DEFAULT_DATASETS)
    for dataset in datasets:
        interpreted = by_key[(dataset, "interpreted")]
        batch = by_key[(dataset, "batch")]
        engine = by_key[(dataset, "engine")]
        # run() already verified bit-identical flags; spot-check the
        # reported detections agree too.
        assert batch.detections == interpreted.detections
        assert engine.detections == interpreted.detections
        # The acceptance bar: compiled batch evaluation is >= 5x the
        # per-state interpreted walk (measured margin is 50-100x).
        assert batch.throughput >= 5 * interpreted.throughput, dataset
        # The full engine path (packing + metrics) must still beat
        # per-state interpretation.
        assert engine.throughput >= interpreted.throughput, dataset

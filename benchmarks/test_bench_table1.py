"""Bench E-T1: regenerate Table I (confusion matrix + Section IV metrics)."""

from repro.experiments import table1


def test_bench_table1(benchmark, scale, warm_cache):
    confusion = benchmark.pedantic(
        lambda: table1.run(scale, "7Z-A1"), rounds=1, iterations=1
    )
    print()
    print(table1.main(scale, "7Z-A1"))
    # Table I structure: cells account for every instance.
    assert confusion.total > 0
    assert confusion.tp + confusion.fn + confusion.fp + confusion.tn == (
        confusion.total
    )
    # Shape: the baseline model is a strong classifier of
    # failure-inducing states.
    assert confusion.auc() > 0.75

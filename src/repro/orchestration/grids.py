"""Parallel evaluation of refinement grids (Step 4 trials).

:func:`repro.core.refine.refine` evaluates every preprocessing plan of
a :class:`~repro.core.refine.RefinementGrid` with stratified
cross-validation.  The trials are independent by construction -- each
plan's RNG is ``np.random.default_rng((seed, index))``, derived from
the trial's identity rather than any shared stream -- so the grid
parallelises without touching the statistics: the worker evaluates a
trial with exactly the code and exactly the RNG the serial loop would
have used, and trials are collated in plan order, so the winning plan
(``max`` over trials, first-best-wins) is bit-identical serial or
parallel.

Trial fingerprints cover the dataset content, the plan, the CV
protocol and the learner, but *not* the grid as a whole: adding plans
to a grid re-executes only the new trials against an existing journal,
and a journal shared with campaign generation reuses every campaign
shard when only the grid changed (FastFlip-style incremental reuse).
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Callable

import numpy as np

from repro import observability as obs
from repro.core.refine import (
    RefinementGrid,
    RefinementResult,
    RefinementTrial,
)
from repro.mining.cache import ContentCache
from repro.mining.crossval import (
    CrossValidationResult,
    FoldResult,
    cross_validate,
)
from repro.mining.dataset import Dataset
from repro.mining.metrics import ConfusionMatrix
from repro.orchestration.journal import Journal
from repro.orchestration.pool import SerialPool, WorkerPool
from repro.orchestration.tasks import Task, TaskGraph, fingerprint_of

__all__ = ["dataset_fingerprint", "run_refinement"]


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content fingerprint of a dataset (schema + exact cell bytes)."""
    digest = hashlib.sha256()
    for attribute in (*dataset.attributes, dataset.class_attribute):
        digest.update(
            f"{attribute.name}:{attribute.kind}:{','.join(attribute.values)};".encode()
        )
    digest.update(np.ascontiguousarray(dataset.x, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(dataset.y, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(dataset.weights, dtype=np.float64).tobytes())
    return digest.hexdigest()[:16]


def _callable_tag(fn: Callable | None) -> str | None:
    """Stable identity of a callable for fingerprinting.

    Factories that want cache hits across processes should expose a
    ``fingerprint`` attribute (e.g.
    :class:`repro.core.preprocess.LearnerFactory`); otherwise the
    qualified name identifies the code being run.
    """
    if fn is None:
        return None
    tag = getattr(fn, "fingerprint", None)
    if tag is not None:
        return str(tag)
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"


def _encode_evaluation(evaluation: CrossValidationResult) -> dict:
    # json round-trips finite float64 exactly (repr shortest-round-trip),
    # and confusion cells / complexities are always finite.
    return {
        "folds": [
            {
                "fold": fold.fold,
                "matrix": fold.confusion.matrix.tolist(),
                "labels": list(fold.confusion.labels),
                "positive": fold.confusion.positive,
                "complexity": fold.complexity,
            }
            for fold in evaluation.folds
        ]
    }


def _decode_evaluation(payload: dict) -> CrossValidationResult:
    return CrossValidationResult(
        [
            FoldResult(
                fold=int(entry["fold"]),
                confusion=ConfusionMatrix(
                    np.array(entry["matrix"], dtype=np.float64),
                    tuple(entry["labels"]),
                    int(entry["positive"]),
                ),
                complexity=float(entry["complexity"]),
            )
            for entry in payload["folds"]
        ]
    )


# Datasets cross the process boundary once per trial and arrive
# without their presort cache (it is dropped on pickling), so workers
# re-adopt the column sort orders computed by an earlier trial on the
# same content instead of re-sorting for every plan.
_WORKER_PRESORTS = ContentCache(maxsize=4, name="worker-dataset-presorts")


def _evaluate_plan(
    dataset: Dataset,
    make_classifier: Callable,
    plan,
    index: int,
    folds: int,
    seed: int,
    complexity: Callable | None,
    positive: int,
) -> CrossValidationResult:
    """Worker body: one trial, with the serial loop's exact RNG."""
    with obs.span("refine.trial", index=index, plan=plan.describe()):
        fingerprint = dataset_fingerprint(dataset)
        presort = _WORKER_PRESORTS.get(fingerprint)
        if presort is not None:
            dataset._presort = presort
        else:
            _WORKER_PRESORTS.put(fingerprint, dataset.presort())
        rng = np.random.default_rng((seed, index))
        return cross_validate(
            dataset,
            make_classifier,
            k=folds,
            rng=rng,
            preprocess=plan.apply,
            complexity=complexity,
            positive=positive,
        )


def run_refinement(
    dataset: Dataset,
    make_classifier: Callable,
    grid: RefinementGrid,
    folds: int = 10,
    seed: int = 0,
    complexity: Callable | None = None,
    positive: int = 1,
    pool: WorkerPool | None = None,
    journal: Journal | None = None,
) -> RefinementResult:
    """Evaluate a refinement grid through a worker pool.

    Bit-identical to :func:`repro.core.refine.refine` for the same
    arguments, any worker count.  A trial that exhausts its retries
    raises -- unlike campaign shards there is no meaningful degraded
    record for a trial, and silently dropping one would bias the
    winner selection.
    """
    if pool is None:
        pool = SerialPool()
    plans = list(grid.plans())
    if not plans:
        raise ValueError("refinement grid is empty")
    dataset_fp = dataset_fingerprint(dataset)
    base = {
        "schema": 1,
        "dataset": dataset_fp,
        "folds": folds,
        "seed": seed,
        "positive": positive,
        "learner": _callable_tag(make_classifier),
        "complexity": _callable_tag(complexity),
    }
    tasks = [
        Task(
            task_id=f"trial:{index:05d}",
            fingerprint=fingerprint_of(
                {**base, "index": index, "plan": dataclasses.asdict(plan)}
            ),
            fn=_evaluate_plan,
            args=(
                dataset,
                make_classifier,
                plan,
                index,
                folds,
                seed,
                complexity,
                positive,
            ),
            weight=folds,
        )
        for index, plan in enumerate(plans)
    ]
    graph = TaskGraph(tasks, encode=_encode_evaluation, decode=_decode_evaluation)
    outcomes = graph.run(pool, journal)
    trials: list[RefinementTrial] = []
    for task, plan in zip(tasks, plans):
        outcome = outcomes[task.task_id]
        if not outcome.ok:
            raise RuntimeError(
                f"refinement trial {task.task_id} quarantined: {outcome.error}"
            )
        trials.append(RefinementTrial(plan, outcome.result))
    best = max(trials, key=lambda t: t.key)
    return RefinementResult(trials, best)

"""Parallel, checkpointed, fault-tolerant execution of the methodology.

The expensive steps of the paper's methodology -- the Step 1 fault
injection campaigns and the Step 4 refinement grids -- are
embarrassingly parallel.  This package turns them into scheduled
*tasks* (:mod:`~repro.orchestration.tasks`) executed through worker
pools that survive worker death (:mod:`~repro.orchestration.pool`),
checkpointed into resumable JSONL journals
(:mod:`~repro.orchestration.journal`), with campaign sharding
(:mod:`~repro.orchestration.campaigns`), grid fan-out
(:mod:`~repro.orchestration.grids`) and an end-to-end pipeline driver
(:mod:`~repro.orchestration.orchestrate`).

Determinism contract: for the same seed and configuration, a merged
parallel result is bit-identical to the serial one -- any worker
count, with or without a journal, resumed or not.
"""

from repro.orchestration.campaigns import plan_pairs, plan_shards, run_campaign
from repro.orchestration.grids import dataset_fingerprint, run_refinement
from repro.orchestration.journal import Journal
from repro.orchestration.orchestrate import OrchestrationReport, run_dataset
from repro.orchestration.pool import (
    ProcessPool,
    SerialPool,
    TaskOutcome,
    WorkerPool,
    configure,
    default_journal_dir,
    default_pool,
    make_pool,
    picklable,
)
from repro.orchestration.tasks import (
    Task,
    TaskGraph,
    derive_seed,
    estimate_runs,
    fingerprint_of,
)

__all__ = [
    "Task",
    "TaskGraph",
    "fingerprint_of",
    "derive_seed",
    "estimate_runs",
    "TaskOutcome",
    "WorkerPool",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "configure",
    "default_pool",
    "default_journal_dir",
    "picklable",
    "Journal",
    "plan_pairs",
    "plan_shards",
    "run_campaign",
    "dataset_fingerprint",
    "run_refinement",
    "OrchestrationReport",
    "run_dataset",
]

"""End-to-end orchestrated pipeline for one Table II dataset.

``repro orchestrate <dataset>`` runs the expensive half of the
methodology -- the Step 1 injection campaign and the Step 4 refinement
grid -- through one worker pool and one checkpoint journal:

* the campaign is sharded and executed in parallel, each completed
  shard journaled as it lands;
* its records become the mining dataset (Step 2's format
  transformation);
* the baseline model is cross-validated (Step 3's evaluation) and the
  refinement grid searched in parallel, trials journaled under the
  same file;
* progress and latency flow through one
  :class:`~repro.runtime.metrics.RuntimeMetrics` instance.

Because campaign-shard fingerprints do not involve the grid, rerunning
with a different grid against the same journal reuses every campaign
shard and evaluates only the new trials.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro import observability as obs
from repro.orchestration.grids import run_refinement
from repro.orchestration.journal import Journal
from repro.orchestration.pool import WorkerPool, make_pool
from repro.runtime.metrics import RuntimeMetrics

__all__ = ["OrchestrationReport", "run_dataset"]


@dataclasses.dataclass
class OrchestrationReport:
    """What one orchestrated pipeline run did and found."""

    dataset: str
    scale: str
    learner: str
    jobs: int
    seconds: float
    campaign: dict
    baseline: dict
    refined: dict
    best_plan: str
    metrics: dict

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def run_dataset(
    name: str,
    scale: str = "smoke",
    jobs: int | None = None,
    journal_path=None,
    learner: str = "c45",
    pool: WorkerPool | None = None,
    metrics: RuntimeMetrics | None = None,
    prune: str | None = None,
    audit_fraction: float | None = None,
) -> OrchestrationReport:
    """Campaign -> dataset -> baseline CV -> refined grid, orchestrated.

    ``prune="static"`` runs the campaign through the static
    injection-space pruner (:mod:`repro.analysis.prune`): proven-dead
    and equivalent points are synthesized instead of executed, and
    ``audit_fraction`` of the pruned cells are re-injected for real as
    a soundness check.  The mined dataset is bit-identical either way.
    """
    # Heavy experiment modules are imported lazily; orchestration is a
    # lower layer than the experiment drivers that also call into it.
    from repro.core.preprocess import (
        LearnerFactory,
        default_plan_for,
        model_complexity,
    )
    from repro.experiments.datasets import (
        DATASET_SPECS,
        build_target,
        campaign_config,
    )
    from repro.experiments.scale import get_scale
    from repro.injection.campaign import Campaign
    from repro.mining.crossval import cross_validate

    spec = DATASET_SPECS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    scale_obj = get_scale(scale)
    metrics = metrics if metrics is not None else RuntimeMetrics()
    journal = Journal(journal_path) if journal_path is not None else None
    owns_pool = pool is None
    if owns_pool:
        pool = make_pool(jobs, metrics=metrics)
    started = time.perf_counter()
    try:
        with obs.span(
            "orchestrate.run", dataset=name, scale=scale_obj.name, jobs=pool.jobs
        ):
            with obs.span("phase.campaign", target=spec.target):
                target = build_target(spec.target, scale_obj)
                config = campaign_config(spec, scale_obj)
                result = Campaign(target, config).run(
                    pool=pool,
                    journal=journal,
                    prune=prune,
                    audit_fraction=audit_fraction,
                )
                dataset = result.to_dataset(name)

            factory = LearnerFactory(learner)
            plan = default_plan_for(learner)
            with obs.span("phase.baseline", learner=learner):
                baseline = cross_validate(
                    dataset,
                    factory,
                    k=scale_obj.folds,
                    rng=np.random.default_rng((scale_obj.seed, 0)),
                    preprocess=plan.apply,
                    complexity=model_complexity,
                )
            with obs.span("phase.refine", plans=scale_obj.grid.size()):
                refined = run_refinement(
                    dataset,
                    factory,
                    scale_obj.grid,
                    folds=scale_obj.folds,
                    seed=scale_obj.seed,
                    complexity=model_complexity,
                    pool=pool,
                    journal=journal,
                )
    finally:
        if owns_pool:
            pool.close()
    return OrchestrationReport(
        dataset=name,
        scale=scale_obj.name,
        learner=learner,
        jobs=pool.jobs,
        seconds=time.perf_counter() - started,
        campaign={
            "runs": result.n_runs,
            "failures": result.n_failures,
            "crashes": result.n_crashes,
            "failure_rate": result.failure_rate,
            **getattr(result, "orchestration", {}),
            **(
                {"prune": result.prune}
                if getattr(result, "prune", None) is not None
                else {}
            ),
        },
        baseline=baseline.summary(),
        refined=refined.best.evaluation.summary(),
        best_plan=refined.best.plan.describe(),
        metrics=metrics.report(),
    )

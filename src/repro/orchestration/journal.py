"""JSONL checkpoint journal for task results.

FastFlip's lesson (PAPERS.md) is that injection analyses should
persist per-unit results and reuse them incrementally instead of
recomputing the world on every change.  The journal is that persistence
layer for orchestrated runs:

* **append-only JSONL** -- one line per completed task, written as the
  task finishes, so a run killed mid-flight keeps everything completed
  so far (a torn final line from the kill itself is tolerated and
  skipped on load);
* **fingerprinted** -- every line carries the task's content
  fingerprint; on resume a stored result is only reused when the
  fingerprint still matches, so editing the campaign config silently
  invalidates exactly the affected tasks;
* **incremental across phases** -- campaign shards and refinement
  trials share one journal under distinct task-id families.  Campaign
  fingerprints do not include the refinement grid, so re-running with
  only the grid changed reuses every campaign shard and re-executes
  only the trials.

The journal stores JSON payloads; task-specific ``encode``/``decode``
hooks on :class:`~repro.orchestration.tasks.TaskGraph` translate real
results (e.g. :class:`~repro.injection.campaign.ExperimentRecord`
lists with NaN samples) exactly.
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["Journal"]

_FORMAT = "repro.orchestration.journal"
_VERSION = 1


class Journal:
    """An append-only JSONL checkpoint file."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict[str, dict]:
        """Task entries keyed by task id (the last line per id wins).

        Unparseable lines -- typically one torn tail line from a killed
        writer -- are skipped; the surviving entries are exactly the
        tasks whose results were durably checkpointed.
        """
        entries: dict[str, dict] = {}
        if not self.path.exists():
            return entries
        with open(self.path, encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(payload, dict):
                    continue
                task_id = payload.get("task")
                if task_id is not None:
                    entries[task_id] = payload
        return entries

    def append(self, task_id: str, fingerprint: str, result: object) -> None:
        """Durably record one completed task."""
        line = json.dumps(
            {
                "format": _FORMAT,
                "version": _VERSION,
                "task": task_id,
                "fingerprint": fingerprint,
                "result": result,
            },
            separators=(",", ":"),
            allow_nan=False,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fp:
            fp.write(line + "\n")
            fp.flush()

    def clear(self) -> None:
        """Discard the checkpoint (start the next run fresh)."""
        self.path.unlink(missing_ok=True)

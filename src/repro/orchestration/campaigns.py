"""Sharded, checkpointed execution of fault injection campaigns.

A campaign enumerates runs in a fixed canonical order -- variable,
then bit, then injection time, then test case (the serial loop of
:meth:`repro.injection.campaign.Campaign._run_serial`).  The shard
planner cuts that enumeration at ``(variable, bit)`` granularity into
consecutive batches, so concatenating shard results *in shard order*
reproduces the serial record order exactly, whatever order the shards
actually finished in.  Targets are deterministic per test case and a
run has no other randomness, so the merged result is bit-identical to
the serial campaign for any worker count.

The default shard size is one ``(variable, bit)`` pair per task.  That
keeps shard boundaries -- and therefore journal fingerprints --
independent of the worker count, so a campaign journaled at
``jobs=8`` resumes correctly at ``jobs=2``.

Shard granularity also respects static pruning classes for free:
:mod:`repro.analysis.prune` verdicts are uniform across injection
times and test cases, so a pruned point is a whole ``(variable, bit)``
pair -- exactly the planner's unit.  A pruned campaign passes its
surviving pairs via ``pairs=``; no shard ever straddles an
equivalence class, and because per-pair fingerprints ignore the
config's prune settings, shards journaled by an exhaustive campaign
are reused verbatim by a pruned one (and vice versa).

A shard whose injected faults keep killing the worker process is
quarantined by the pool after its retries; the campaign then
synthesises one crash record per planned run in the shard
(``crashed=True``/``failed=True``, the campaign's standing definition
of a crash) rather than losing the whole campaign to one pathological
fault.
"""

from __future__ import annotations

import warnings

from repro import observability as obs
from repro.injection.bitflip import BitFlip, flip_values_batch
from repro.injection.campaign import Campaign, CampaignResult, ExperimentRecord
from repro.injection.golden import GoldenRun, golden_runs_for
from repro.observability import names
from repro.orchestration.journal import Journal
from repro.orchestration.pool import SerialPool, WorkerPool
from repro.orchestration.tasks import Task, TaskGraph, _chunk, fingerprint_of

__all__ = ["plan_pairs", "plan_shards", "run_campaign"]

#: pair = (variable name, kind, bit position)
Pair = tuple[str, str, int]


def plan_pairs(campaign: Campaign) -> list[Pair]:
    """Every (variable, bit) the campaign will flip, canonical order."""
    return [
        (spec.name, spec.kind, bit)
        for spec in campaign._targeted_specs()
        for bit in campaign._bits_for(spec)
    ]


def plan_shards(
    campaign: Campaign,
    shard_size: int = 1,
    pairs: list[Pair] | None = None,
) -> list[tuple[Pair, ...]]:
    """Cut the pair enumeration into consecutive run-batches.

    ``pairs`` restricts the plan to an explicit subset (a prune plan's
    surviving pairs) while keeping the canonical order.
    """
    return _chunk(plan_pairs(campaign) if pairs is None else list(pairs), shard_size)


def _injection_hints(
    campaign: Campaign,
    name: str,
    kind: str,
    bit: int,
    golden_runs: dict[int, GoldenRun],
) -> dict[tuple[int, int], tuple]:
    """``(time, test_case) -> (golden value, flipped value)`` for one pair.

    The shard data plane: the golden value of the injected variable at
    every (injection time, test case) cell of the pair is known before
    any run starts, so all the cells' flips are computed by one
    vectorized XOR (:func:`flip_values_batch`) instead of one
    pack/unpack per run.  The harness still verifies the live value
    matches the golden one before using a hint, so cells where the two
    diverge (or where the variable is absent) simply fall back.
    """
    config = campaign.config
    probe = config.injection_probe
    cells: list[tuple[int, int]] = []
    values: list = []
    for injection_time in config.injection_times:
        for tc in config.test_cases:
            sample = golden_runs[tc].sample_at(probe, injection_time)
            if sample is None or name not in sample.variables:
                continue
            cells.append((injection_time, tc))
            values.append(sample.variables[name])
    flipped = flip_values_batch(values, kind, bit)
    return {
        cell: (value, injected)
        for cell, value, injected in zip(cells, values, flipped)
    }


def _execute_shard(
    campaign: Campaign,
    pairs: tuple[Pair, ...],
    golden_runs: dict[int, GoldenRun],
) -> list[ExperimentRecord]:
    """Worker body: the serial inner loops for one shard's pairs."""
    records: list[ExperimentRecord] = []
    with obs.span("campaign.shard", pairs=len(pairs)) as shard_span:
        for name, kind, bit in pairs:
            flip = BitFlip(name, kind, bit)
            hints = _injection_hints(campaign, name, kind, bit, golden_runs)
            for injection_time in campaign.config.injection_times:
                for tc in campaign.config.test_cases:
                    records.append(
                        campaign._run_one(
                            flip,
                            injection_time,
                            tc,
                            golden_runs[tc],
                            injected_hint=hints.get((injection_time, tc)),
                        )
                    )
        shard_span.count("runs", len(records))
        shard_span.count("failures", sum(1 for r in records if r.failed))
    return records


def _crash_records(
    campaign: Campaign, pairs: tuple[Pair, ...]
) -> list[ExperimentRecord]:
    """Records for a quarantined shard: every planned run crashed."""
    records: list[ExperimentRecord] = []
    for name, kind, bit in pairs:
        flip = BitFlip(name, kind, bit)
        for injection_time in campaign.config.injection_times:
            for tc in campaign.config.test_cases:
                records.append(
                    ExperimentRecord(
                        test_case=tc,
                        flip=flip,
                        injection_time=injection_time,
                        sample=None,
                        failed=True,
                        crashed=True,
                        temporal_impact=0,
                        deviated=True,
                    )
                )
    return records


def run_campaign(
    campaign: Campaign,
    pool: WorkerPool | None = None,
    journal: Journal | None = None,
    shard_size: int = 1,
    pairs: list[Pair] | None = None,
    golden_runs: dict[int, GoldenRun] | None = None,
    store=None,
) -> CampaignResult:
    """Execute a campaign through a worker pool, optionally journaled.

    Returns a :class:`CampaignResult` bit-identical to
    ``campaign.run()`` serial execution (absent quarantined shards).
    The result additionally carries an ``orchestration`` attribute
    summarising the schedule: total/executed/cached/stored task counts
    and the ids of quarantined shards.  ``pairs`` restricts execution
    to an explicit pair subset (pruned campaigns); ``golden_runs``
    reuses already-captured golden runs.

    ``store`` (a :class:`repro.injection.store.CampaignStore`) makes
    the run a delta operation: each shard's records are looked up
    under its content address -- module source-closure fingerprint +
    failure-spec fingerprint + probes + config slice + pairs -- and
    only shards whose address misses execute.  Because the address
    drops the config's variable/bit selection (the shard's pairs carry
    those) and shards are pair-anchored, exhaustive, pruned and
    sampled campaigns of the same slice all share store entries.  A
    target without declared module source closures
    (:meth:`~repro.targets.base.TargetSystem.module_sources`) is not
    store-eligible; the run warns and proceeds storeless.  When every
    shard is already stored, golden-run capture is skipped entirely --
    the warm-path fast lane the delta bench measures.
    """
    if pool is None:
        pool = SerialPool()
    config = campaign.config
    store_base = None
    if store is not None:
        store_base = campaign.store_key_base()
        if store_base is None:
            from repro.injection.store import StoreEligibilityWarning

            warnings.warn(
                f"target {campaign.target.name!r} declares no module "
                "source closures (module_sources) or is otherwise not "
                "fingerprintable; running without the campaign store",
                StoreEligibilityWarning,
                stacklevel=2,
            )
            store = None
    counters_before = dict(store.counters) if store is not None else None
    with obs.span("campaign.plan", target=campaign.target.name):
        shards = plan_shards(campaign, shard_size, pairs)
        store_fingerprints: list[str | None] = [None] * len(shards)
        store_keys: list[dict | None] = [None] * len(shards)
        fully_stored = False
        if store is not None:
            with obs.span(
                names.STORE_RESOLVE, target=campaign.target.name
            ) as resolve_span:
                store_keys = [
                    {**store_base, "pairs": [list(pair) for pair in shard]}
                    for shard in shards
                ]
                store_fingerprints = [
                    fingerprint_of(key) for key in store_keys
                ]
                contained = sum(
                    1 for fp in store_fingerprints if store.contains(fp)
                )
                fully_stored = bool(shards) and contained == len(shards)
                resolve_span.count("shards", len(shards))
                resolve_span.count(names.COUNTER_STORE_HITS, contained)
        if golden_runs is None:
            if fully_stored:
                # Every shard loads from the store: no run will execute,
                # so the golden runs would never be consulted.  Skipping
                # their capture is what makes a warm delta run pay only
                # for the edited module.
                golden_runs = {}
            else:
                golden_runs = golden_runs_for(
                    campaign.target, config.test_cases
                )
    # Per-pair records do not depend on the prune settings (a pair that
    # executes computes the same records either way), so fingerprints
    # drop them: journal shards stay shareable between exhaustive and
    # pruned campaigns.
    fingerprint_config = config.to_dict()
    for key in ("prune", "audit_fraction", "audit_seed"):
        fingerprint_config.pop(key, None)
    base = {
        "schema": 1,
        "target": campaign.target.name,
        "config": fingerprint_config,
    }
    # Shard ids anchor to the full enumeration (first pair's position),
    # not the shard's position in this run's possibly-restricted pair
    # list: a pruned campaign then hits the same journal entries an
    # exhaustive one wrote, and vice versa.
    position = {pair: i for i, pair in enumerate(plan_pairs(campaign))}
    tasks = [
        Task(
            task_id=f"campaign:{position.get(pairs[0], index):05d}",
            fingerprint=fingerprint_of(
                {**base, "pairs": [list(pair) for pair in pairs]}
            ),
            fn=_execute_shard,
            args=(campaign, pairs, golden_runs),
            weight=len(pairs)
            * len(config.injection_times)
            * len(config.test_cases),
            store_fingerprint=store_fingerprints[index],
            store_key=store_keys[index],
        )
        for index, pairs in enumerate(shards)
    ]
    graph = TaskGraph(
        tasks,
        encode=lambda records: [record.to_dict() for record in records],
        decode=lambda payload: [
            ExperimentRecord.from_dict(entry) for entry in payload
        ],
    )
    outcomes = graph.run(pool, journal, store=store)

    records: list[ExperimentRecord] = []
    quarantined: list[str] = []
    cached = 0
    stored = 0
    with obs.span("campaign.merge", shards=len(shards)) as merge_span:
        for task, pairs in zip(tasks, shards):
            outcome = outcomes[task.task_id]
            if outcome.status == "quarantined":
                quarantined.append(task.task_id)
                records.extend(_crash_records(campaign, pairs))
            else:
                if outcome.status == "cached":
                    cached += 1
                elif outcome.status == "stored":
                    stored += 1
                records.extend(outcome.result)
        merge_span.count("records", len(records))
        merge_span.count("cached_shards", cached)
        merge_span.count("stored_shards", stored)
        merge_span.count("quarantined_shards", len(quarantined))
    result = CampaignResult(
        campaign.target.name,
        config,
        records,
        golden_runs,
        campaign.variable_specs,
    )
    result.orchestration = {  # type: ignore[attr-defined]
        "tasks": len(tasks),
        "executed": len(tasks) - cached - stored - len(quarantined),
        "cached": cached,
        "stored": stored,
        "quarantined": quarantined,
        "jobs": pool.jobs,
    }
    if store is not None:
        with obs.span(
            names.STORE_SYNC,
            target=campaign.target.name,
            root=str(store.root),
        ) as sync_span:
            delta = {
                key: store.counters[key] - counters_before[key]
                for key in store.counters
            }
            sync_span.count(names.COUNTER_STORE_HITS, delta["hits"])
            sync_span.count(names.COUNTER_STORE_MISSES, delta["misses"])
            sync_span.count(
                names.COUNTER_STORE_INVALIDATED, delta["invalidated"]
            )
            sync_span.count(names.COUNTER_STORE_WRITES, delta["writes"])
        result.orchestration["store"] = delta  # type: ignore[attr-defined]
    return result

"""Worker pools: serial and process-parallel task execution.

Fault injection campaigns are embarrassingly parallel (ZOFI runs
injection campaigns at near-linear speedup across cores), but they are
also *hostile* workloads: an injected fault can take the whole worker
process down with it.  The pools here make that survivable:

* :class:`SerialPool` executes tasks in order, in-process -- the
  reference schedule every parallel schedule must reproduce
  bit-identically;
* :class:`ProcessPool` fans tasks out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  A task that
  *raises* fails that task only; a task that *kills its worker* (the
  segfault analogue) breaks the executor, so the pool rebuilds it with
  exponential backoff and resubmits whatever had not finished.  Either
  way a task is retried up to ``max_retries`` times and then
  **quarantined** -- reported as a
  :class:`TaskOutcome` with ``status="quarantined"`` instead of
  poisoning the run -- mirroring the detector quarantine of
  :class:`repro.runtime.engine.StreamingEngine`.

Both pools report per-task latency and fault counters through a
:class:`repro.runtime.metrics.RuntimeMetrics` instance under
``orchestration.<kind>`` names, so campaign and grid progress shows up
in the same report as detector serving.

:func:`configure` installs process-wide defaults (worker count,
journal directory) that :meth:`Campaign.run` and :func:`refine` pick
up when no explicit pool is passed -- this is how the experiments
CLI's ``--jobs``/``--resume`` flags reach every driver without
threading parameters through eighteen call sites.
"""

from __future__ import annotations

import dataclasses
import pathlib
import pickle
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro import observability as obs
from repro.orchestration.tasks import Task
from repro.runtime.metrics import RuntimeMetrics

__all__ = [
    "TaskOutcome",
    "WorkerPool",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "configure",
    "default_pool",
    "default_journal_dir",
    "picklable",
]


@dataclasses.dataclass
class TaskOutcome:
    """Terminal state of one task.

    ``status`` is ``"done"`` (result valid), ``"cached"`` (result
    restored from a journal without executing), ``"stored"`` (result
    loaded from a content-addressed campaign store,
    :mod:`repro.injection.store`) or ``"quarantined"`` (the task
    exhausted its retries; ``error`` holds the last failure).
    """

    task_id: str
    status: str
    result: object = None
    error: str | None = None
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("done", "cached", "stored")


def _invoke(
    fn: Callable,
    args: tuple,
    task_id: str | None = None,
    trace=None,
) -> tuple[float, object]:
    """Worker-side shim: run the task and time it where it ran.

    ``trace`` (a :class:`repro.observability.TraceSpec`, shipped by
    the submitting pool when tracing is active) makes the worker
    journal its spans to a shard-local file; each task runs under an
    ``orchestration.task`` span either way, which is a no-op while
    tracing is off.
    """
    obs.ensure_worker(trace)
    started = time.perf_counter()
    if task_id is None:
        result = fn(*args)
    else:
        with obs.span("orchestration.task", task=task_id):
            result = fn(*args)
    return time.perf_counter() - started, result


class WorkerPool:
    """Common retry/quarantine/metrics machinery for the pools."""

    jobs: int = 1

    def __init__(
        self,
        max_retries: int = 2,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.metrics = metrics

    def run(
        self,
        tasks: Sequence[Task],
        on_result: Callable[[Task, TaskOutcome], None] | None = None,
    ) -> dict[str, TaskOutcome]:
        """Execute ``tasks``, calling ``on_result`` as each finishes."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- shared bookkeeping --------------------------------------------
    def _sleep(self, failures: int) -> None:
        if self.backoff > 0:
            time.sleep(min(self.backoff * (2 ** (failures - 1)), self.max_backoff))

    def _record_done(self, task: Task, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.stats_for(f"orchestration.{task.kind}").record_batch(
                task.weight, 0, seconds
            )

    def _record_fault(self, task: Task) -> None:
        if self.metrics is not None:
            self.metrics.stats_for(f"orchestration.{task.kind}").record_fault()


class SerialPool(WorkerPool):
    """In-process execution in task order: the reference schedule."""

    jobs = 1

    def run(
        self,
        tasks: Sequence[Task],
        on_result: Callable[[Task, TaskOutcome], None] | None = None,
    ) -> dict[str, TaskOutcome]:
        outcomes: dict[str, TaskOutcome] = {}
        with obs.span("pool.run", kind="serial", jobs=1, tasks=len(tasks)):
            for task in tasks:
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        seconds, result = _invoke(
                            task.fn, task.args, task.task_id
                        )
                    except Exception as exc:  # noqa: BLE001 -- isolation boundary
                        self._record_fault(task)
                        if attempts > self.max_retries:
                            outcome = TaskOutcome(
                                task_id=task.task_id,
                                status="quarantined",
                                error=f"{type(exc).__name__}: {exc}",
                                attempts=attempts,
                            )
                            break
                        self._sleep(attempts)
                    else:
                        self._record_done(task, seconds)
                        outcome = TaskOutcome(
                            task_id=task.task_id,
                            status="done",
                            result=result,
                            attempts=attempts,
                            seconds=seconds,
                        )
                        break
                outcomes[task.task_id] = outcome
                if on_result is not None:
                    on_result(task, outcome)
        return outcomes


class ProcessPool(WorkerPool):
    """``ProcessPoolExecutor``-backed pool that survives worker death.

    Tasks are submitted in waves; when an injected fault (or anything
    else) kills a worker, the broken executor is torn down, rebuilt
    after an exponential backoff, and every unfinished task is
    resubmitted.  Per-task failure counts persist across rebuilds, so
    the task that keeps killing its worker is eventually quarantined
    while innocent tasks complete on a later wave.
    """

    def __init__(
        self,
        jobs: int,
        max_retries: int = 2,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        metrics: RuntimeMetrics | None = None,
        mp_context=None,
    ) -> None:
        super().__init__(max_retries, backoff, max_backoff, metrics)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=self._mp_context
            )
        return self._executor

    def _teardown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run(
        self,
        tasks: Sequence[Task],
        on_result: Callable[[Task, TaskOutcome], None] | None = None,
    ) -> dict[str, TaskOutcome]:
        outcomes: dict[str, TaskOutcome] = {}
        pending: dict[str, Task] = {t.task_id: t for t in tasks}
        failures: dict[str, int] = {t.task_id: 0 for t in tasks}
        rebuilds = 0

        def settle(task: Task, outcome: TaskOutcome) -> None:
            outcomes[task.task_id] = outcome
            del pending[task.task_id]
            if on_result is not None:
                on_result(task, outcome)

        def run_wave(batch: Sequence[Task]) -> bool:
            """Run one wave; True when the executor broke.

            A dead worker breaks the whole executor, so *every*
            unfinished future in the wave reports BrokenProcessPool --
            blaming them all would quarantine innocent tasks.  A
            worker-death failure is therefore only charged when the
            batch ran alone (blame is unambiguous); multi-task breakage
            just triggers the isolation pass below.
            """
            nonlocal rebuilds
            executor = self._ensure_executor()
            trace = obs.export_spec()
            futures = {
                executor.submit(
                    _invoke, task.fn, task.args, task.task_id, trace
                ): task
                for task in batch
            }
            broken = False
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = futures[future]
                    try:
                        seconds, result = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        if len(futures) == 1:
                            self._record_fault(task)
                            failures[task.task_id] += 1
                            if failures[task.task_id] > self.max_retries:
                                settle(task, TaskOutcome(
                                    task_id=task.task_id,
                                    status="quarantined",
                                    error=f"worker died: {exc}",
                                    attempts=failures[task.task_id],
                                ))
                    except Exception as exc:  # noqa: BLE001 -- isolation
                        self._record_fault(task)
                        failures[task.task_id] += 1
                        if failures[task.task_id] > self.max_retries:
                            settle(task, TaskOutcome(
                                task_id=task.task_id,
                                status="quarantined",
                                error=f"{type(exc).__name__}: {exc}",
                                attempts=failures[task.task_id],
                            ))
                    else:
                        self._record_done(task, seconds)
                        settle(task, TaskOutcome(
                            task_id=task.task_id,
                            status="done",
                            result=result,
                            attempts=failures[task.task_id] + 1,
                            seconds=seconds,
                        ))
            if broken:
                self._teardown_executor()
                rebuilds += 1
                self._sleep(rebuilds)
            return broken

        with obs.span(
            "pool.run", kind="process", jobs=self.jobs, tasks=len(tasks)
        ) as pool_span:
            while pending:
                batch = [task for task in tasks if task.task_id in pending]
                broken = run_wave(batch)
                if broken and len(batch) > 1:
                    # Isolation pass: rerun the survivors one at a time so
                    # the task that keeps killing its worker accumulates
                    # failures (and is eventually quarantined) while the
                    # innocent majority completes.
                    for task in [t for t in tasks if t.task_id in pending]:
                        run_wave([task])
                elif not broken and pending:
                    # Plain task failures: back off before the retry wave.
                    self._sleep(max(failures[tid] for tid in pending))
            pool_span.count("rebuilds", rebuilds)
        # Collate in task order, never completion order.
        return {task.task_id: outcomes[task.task_id] for task in tasks}


def make_pool(
    jobs: int | None,
    metrics: RuntimeMetrics | None = None,
    **kwargs,
) -> WorkerPool:
    """A pool sized for ``jobs`` workers (serial for ``None``/``<=1``)."""
    if jobs is None or jobs <= 1:
        return SerialPool(metrics=metrics, **kwargs)
    return ProcessPool(jobs, metrics=metrics, **kwargs)


def picklable(obj: object) -> bool:
    """Whether ``obj`` can cross a process boundary."""
    try:
        pickle.dumps(obj)
    except Exception:  # noqa: BLE001 -- any pickling failure disqualifies
        return False
    return True


# ----------------------------------------------------------------------
# Process-wide defaults (the experiments CLI's --jobs / --resume)
# ----------------------------------------------------------------------
_DEFAULT_JOBS: int | None = None
_DEFAULT_JOURNAL_DIR: pathlib.Path | None = None


def configure(
    jobs: int | None = None,
    journal_dir: str | pathlib.Path | None = None,
) -> None:
    """Install process-wide orchestration defaults.

    ``jobs`` makes every :meth:`Campaign.run`/:func:`refine` call
    without an explicit pool run on ``jobs`` workers; ``journal_dir``
    makes campaign generation checkpoint (and resume) under that
    directory.  ``configure()`` with no arguments resets both.
    """
    global _DEFAULT_JOBS, _DEFAULT_JOURNAL_DIR
    _DEFAULT_JOBS = jobs
    _DEFAULT_JOURNAL_DIR = (
        pathlib.Path(journal_dir) if journal_dir is not None else None
    )


def default_pool(metrics: RuntimeMetrics | None = None) -> WorkerPool | None:
    """A fresh pool per the configured default, or None when serial.

    The caller owns the returned pool and must :meth:`close` it.
    """
    if _DEFAULT_JOBS is None or _DEFAULT_JOBS <= 1:
        return None
    return ProcessPool(_DEFAULT_JOBS, metrics=metrics)


def default_journal_dir() -> pathlib.Path | None:
    return _DEFAULT_JOURNAL_DIR

"""Task model: stable identities, fingerprints and the task graph.

The expensive paths of the methodology -- thousands of independent
injection runs per campaign (Step 1), hundreds of independent
cross-validated trials per refinement grid (Step 4) -- decompose into
*tasks*: units of work that carry

* a stable ``task_id`` (``"campaign:00012"``, ``"trial:00040"``) that
  names the unit across runs of the same configuration;
* a content ``fingerprint`` over everything that determines the task's
  result, so a checkpoint journal can prove a stored result is still
  valid (a changed campaign config or refinement plan changes the
  fingerprint, a changed worker count does not);
* a module-level callable plus arguments, picklable into worker
  processes.

:class:`TaskGraph` executes an ordered set of tasks through a
:class:`~repro.orchestration.pool.WorkerPool`, skipping tasks whose
results a :class:`~repro.orchestration.journal.Journal` already holds
and checkpointing each fresh completion as it lands.  Results are
always collated in *task order*, never completion order, which is the
first half of the subsystem's determinism contract (the second half is
that each task derives any randomness from its own identity, not from
shared mutable state).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Task",
    "TaskGraph",
    "fingerprint_of",
    "derive_seed",
    "estimate_runs",
]


def fingerprint_of(payload: object) -> str:
    """Content fingerprint of a JSON-compatible payload.

    Canonical JSON (sorted keys, no whitespace) hashed with SHA-256;
    two payloads fingerprint equal iff they are structurally equal.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def derive_seed(seed: int, task_id: str) -> int:
    """Deterministic 63-bit per-task seed.

    Derived from the root seed and the task's *identity* rather than
    its position in any execution schedule, so the stream a task sees
    is the same serial or parallel, whatever the worker count.
    """
    digest = hashlib.sha256(f"{seed}:{task_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclasses.dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``fn`` must be a module-level callable (workers import it by
    reference); ``weight`` is the number of underlying work units
    (injection runs, CV folds) the task covers, reported to metrics.
    """

    task_id: str
    fingerprint: str
    fn: Callable
    args: tuple = ()
    weight: int = 1
    #: Content address in a :class:`repro.injection.store.CampaignStore`
    #: (the fingerprint of ``store_key``); ``None`` opts the task out of
    #: store resolution.  Unlike ``fingerprint`` (journal validity,
    #: config-scoped), the store address is keyed by module *source*
    #: fingerprints, so it survives across processes and editions.
    store_fingerprint: str | None = None
    #: The full store key (kept alongside the fingerprint so the store
    #: can classify a miss as cold vs invalidated and persist audit
    #: provenance with the records).
    store_key: object = None

    @property
    def kind(self) -> str:
        """Task family: the ``task_id`` prefix before the colon."""
        return self.task_id.split(":", 1)[0]


class TaskGraph:
    """An ordered set of independent tasks with optional checkpointing.

    ``encode``/``decode`` translate task results to/from the
    JSON-compatible payloads the journal stores; they default to the
    identity (results must then be JSON-compatible themselves).
    """

    def __init__(
        self,
        tasks: Iterable[Task],
        encode: Callable[[object], object] | None = None,
        decode: Callable[[object], object] | None = None,
    ) -> None:
        self.tasks = list(tasks)
        seen: set[str] = set()
        for task in self.tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)
        self._encode = encode if encode is not None else (lambda r: r)
        self._decode = decode if decode is not None else (lambda p: p)

    def __len__(self) -> int:
        return len(self.tasks)

    def run(self, pool, journal=None, store=None) -> dict[str, "TaskOutcome"]:
        """Execute every task, returning outcomes keyed by task id.

        Resolution order per task: the content-addressed ``store``
        (tasks carrying a ``store_fingerprint``) answers first with a
        ``"stored"`` outcome; then the journal's (id, fingerprint)
        entries answer ``"cached"``; everything else executes.  The
        two caches backfill each other -- a store hit is appended to
        the journal (so a later journal-only run resumes instantly)
        and a journal hit is written to the store (so a later store
        run hits) -- and each fresh completion checkpoints to both *as
        it finishes*, so a run killed mid-flight loses nothing
        completed.  The returned mapping is ordered by task order.
        """
        from repro.orchestration.pool import TaskOutcome

        entries: dict = journal.load() if journal is not None else {}
        resolved: dict[str, TaskOutcome] = {}
        for task in self.tasks:
            payload = None
            status = ""
            if store is not None and task.store_fingerprint is not None:
                payload = store.fetch(task.store_fingerprint, task.store_key)
                if payload is not None:
                    status = "stored"
                    if journal is not None:
                        entry = entries.get(task.task_id)
                        if (
                            entry is None
                            or entry.get("fingerprint") != task.fingerprint
                        ):
                            journal.append(
                                task.task_id, task.fingerprint, payload
                            )
            if payload is None:
                entry = entries.get(task.task_id)
                if entry is not None and entry.get("fingerprint") == task.fingerprint:
                    payload = entry.get("result")
                    status = "cached"
                    if store is not None and task.store_fingerprint is not None:
                        store.put(task.store_fingerprint, task.store_key, payload)
            if payload is not None:
                resolved[task.task_id] = TaskOutcome(
                    task_id=task.task_id,
                    status=status,
                    result=self._decode(payload),
                )
        to_run = [t for t in self.tasks if t.task_id not in resolved]

        def checkpoint(task: Task, outcome: TaskOutcome) -> None:
            if outcome.status != "done":
                return
            wants_store = store is not None and task.store_fingerprint is not None
            if journal is None and not wants_store:
                return
            payload = self._encode(outcome.result)
            if journal is not None:
                journal.append(task.task_id, task.fingerprint, payload)
            if wants_store:
                store.put(task.store_fingerprint, task.store_key, payload)

        fresh = pool.run(to_run, on_result=checkpoint)
        ordered: dict[str, TaskOutcome] = {}
        for task in self.tasks:
            outcome = resolved.get(task.task_id)
            ordered[task.task_id] = outcome if outcome is not None else fresh[task.task_id]
        return ordered


def estimate_runs(
    config,
    n_variables: int | None = None,
    default_bits: int = 64,
) -> int | None:
    """Estimated run count of a campaign configuration.

    ``runs = test_cases x injection_times x variables x bits``.  The
    variable count comes from ``config.variables`` when the config
    names its targets, else from ``n_variables`` (e.g. counted off an
    injection-surface report); ``None`` when neither is known.  Bit
    counts beyond a variable's width are clamped by the campaign, so
    this estimates from the configured positions (``default_bits``
    when the config flips every bit, the paper's float64 width).
    """
    if config.variables is not None:
        n_vars = len(config.variables)
    elif n_variables is not None:
        n_vars = n_variables
    else:
        return None
    bits = config.bits
    if bits is None:
        n_bits = default_bits
    elif isinstance(bits, Mapping):
        n_bits = max((len(b) for b in bits.values()), default=default_bits)
    else:
        n_bits = len(bits)
    return (
        len(config.test_cases) * len(config.injection_times) * n_vars * n_bits
    )


def _chunk(items: Sequence, size: int) -> list[tuple]:
    """Split ``items`` into consecutive tuples of at most ``size``."""
    if size < 1:
        raise ValueError(f"shard size must be >= 1, got {size}")
    return [
        tuple(items[start:start + size])
        for start in range(0, len(items), size)
    ]

"""Detector-evaluator workers: one StreamingEngine per shard.

A worker owns one ingest ring and one results ring.  Its loop is:

1. **deploy check** -- cheap epoch read on the ingest ring (the
   supervisor bumps it when it publishes a snapshot) plus a periodic
   mtime poll of the snapshot file (so deploys published by an
   external process are picked up too).  On change, the worker reloads
   the registry snapshot and swaps detector versions **between
   micro-batches** via :meth:`StreamingEngine.swap` -- buffered events
   are untouched, so a deploy never drops or re-evaluates anything;
2. **consume** -- peek a zero-copy view of up to ``batch_size`` packed
   events and run :meth:`StreamingEngine.evaluate_packed` directly on
   it, inheriting the engine's fault isolation and quarantine
   semantics unchanged;
3. **publish results** -- per-event ``(seq, flag-mask, deploy-serial)``
   rows into the results ring (blocking: results are never shed), then
   advance the ingest cursor, returning the slots to the router.

The ordering in step 3 matters: the ingest cursor only advances after
the results are out, so a worker killed mid-batch leaves the events
unconsumed rather than half-accounted -- ``processed + shed ==
submitted`` stays an invariant, not a hope.

The *epoch-before-data* ordering gives deploys a useful guarantee:
the supervisor bumps the epoch after the snapshot file is in place and
before any later event is pushed, so an event submitted after
``publish`` returns is always evaluated by the new detector versions.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro import observability as obs
from repro.observability.names import (
    SERVE_DEPLOY,
    SERVE_WORKER,
    SERVE_WORKER_BATCH,
)
from repro.runtime.engine import StreamingEngine
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.registry import DetectorRegistry
from repro.serving.config import ServeConfig
from repro.serving.ring import RingSpec, SharedRing

__all__ = ["ServeWorker", "worker_main"]

#: Results-ring metadata columns: sequence, flag mask, deploy serial.
RESULT_META = 3


def read_snapshot(path: str | pathlib.Path) -> tuple[DetectorRegistry, int]:
    """Load a registry snapshot and its deploy serial.

    The snapshot is ``DetectorRegistry.save`` output, optionally with
    a ``serial`` the deploy pipeline increments per publish; lint
    gating is off and self-checks skipped -- the artefact was gated
    when it was published.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    registry = DetectorRegistry.from_dict(payload, check=False)
    return registry, int(payload.get("serial", 0))


class ServeWorker:
    """The per-shard evaluator; single-threaded, ring-fed."""

    def __init__(
        self,
        shard: int,
        in_ring: SharedRing,
        out_ring: SharedRing,
        snapshot_path: str | pathlib.Path,
        index: dict[str, int],
        bit_of: dict[str, int],
        config: ServeConfig,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        self.shard = shard
        self.in_ring = in_ring
        self.out_ring = out_ring
        self.snapshot_path = pathlib.Path(snapshot_path)
        self.index = index
        self.bit_of = bit_of
        self.config = config
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.engine = StreamingEngine(
            batch_size=config.batch_size,
            max_faults=config.max_faults,
            metrics=self.metrics,
            check=False,
        )
        self.processed = 0
        self.deploys = 0
        self.deploy_skipped: list[str] = []
        self.serial = 0
        self._versions: dict[str, int] = {}
        self._epoch = in_ring.epoch
        self._stat: tuple[int, int, int] | None = None
        self._last_poll = 0.0
        self._load_snapshot(initial=True)

    # -- deploy --------------------------------------------------------
    def _snapshot_stat(self) -> tuple[int, int, int] | None:
        try:
            stat = os.stat(self.snapshot_path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_ino, stat.st_size)

    def _load_snapshot(self, initial: bool = False) -> None:
        self._stat = self._snapshot_stat()
        registry, serial = read_snapshot(self.snapshot_path)
        schema = set(self.index)
        swapped: list[str] = []
        skipped: list[str] = []
        current = set(self._versions)
        incoming = {entry.name: entry for entry in registry.latest()}
        for name in sorted(current - set(incoming)):
            self.engine.remove(name)
            del self._versions[name]
            swapped.append(f"-{name}")
        for name, entry in sorted(incoming.items()):
            needed = entry.compiled.lowered.variables()
            if not needed <= schema:
                # The ring's column layout is fixed for the topology's
                # lifetime; a detector reading outside it would see
                # every unknown variable as missing and silently never
                # fire.  Refuse the swap, keep the old version serving.
                skipped.append(
                    f"{name}@v{entry.version} needs "
                    f"{sorted(needed - schema)} outside the ring schema"
                )
                continue
            if name not in self._versions:
                self.engine.add(entry.detector, name, compiled=entry.compiled)
                self._versions[name] = entry.version
                if not initial:
                    swapped.append(f"+{name}@v{entry.version}")
            elif self._versions[name] != entry.version:
                self.engine.swap(entry.detector, name, compiled=entry.compiled)
                old, self._versions[name] = self._versions[name], entry.version
                swapped.append(f"{name}@v{old}->v{entry.version}")
        self.serial = serial
        self.deploy_skipped.extend(skipped)
        if not initial:
            self.deploys += 1
            with obs.span(
                SERVE_DEPLOY,
                shard=self.shard,
                serial=serial,
                swapped=",".join(swapped) or "(none)",
                skipped=len(skipped),
            ):
                pass

    def _maybe_deploy(self) -> None:
        epoch = self.in_ring.epoch
        if epoch != self._epoch:
            self._epoch = epoch
            self._load_snapshot()
            return
        now = time.monotonic()
        if now - self._last_poll < self.config.deploy_poll_s:
            return
        self._last_poll = now
        stat = self._snapshot_stat()
        if stat is not None and stat != self._stat:
            self._load_snapshot()

    # -- evaluation ----------------------------------------------------
    def _publish_results(self, meta: np.ndarray) -> None:
        offset = 0
        while offset < len(meta):
            pushed = self.out_ring.push(None, meta[offset:])
            offset += pushed
            if offset < len(meta) and pushed == 0:
                # Results are never shed; the supervisor drains this
                # ring continuously, so the wait is bounded in practice.
                time.sleep(self.config.poll_interval_s)

    def step(self, wait: bool = True) -> int:
        """One loop iteration; events processed, or -1 when done.

        ``wait=False`` (the in-process topology's stepping mode)
        returns immediately instead of idling on an empty ring.
        """
        rows, meta = self.in_ring.peek(self.config.batch_size)
        n = len(meta)
        if n == 0:
            self._maybe_deploy()  # stay current while idle
            if self.in_ring.stopped and self.in_ring.pending == 0:
                return -1
            if wait:
                time.sleep(self.config.poll_interval_s)
            return 0
        # Deploy barrier -- checked *after* the peek: the supervisor
        # bumps the epoch before pushing any post-publish event, so if
        # this peek saw such an event the epoch read below sees the
        # bump, and the batch is evaluated by the new versions.
        self._maybe_deploy()
        with obs.span(SERVE_WORKER_BATCH, shard=self.shard, size=n):
            result = self.engine.evaluate_packed(rows, self.index)
        out = np.zeros((n, RESULT_META), dtype=np.int64)
        out[:, 0] = meta[:, 0]
        for name, flagged in result.flags.items():
            bit = self.bit_of.get(name)
            if bit is not None:
                out[:, 1] |= flagged.astype(np.int64) << bit
        out[:, 2] = self.serial
        # Views into the ring must be dead before the slots recycle.
        del rows, meta
        self._publish_results(out)
        self.in_ring.advance(n)
        self.processed += n
        if self.config.worker_cost_s:
            # Modeled per-event downstream cost (external scorer,
            # RPC); see ServeConfig.worker_cost_s.
            time.sleep(self.config.worker_cost_s * n)
        return n

    def run(self) -> None:
        """Consume until the supervisor stops the topology."""
        with obs.span(SERVE_WORKER, shard=self.shard):
            while self.step() != -1:
                pass

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict:
        return {
            "shard": self.shard,
            "processed": self.processed,
            "deploys": self.deploys,
            "deploy_skipped": list(self.deploy_skipped),
            "serial": self.serial,
            "versions": dict(sorted(self._versions.items())),
            "metrics": self.metrics.to_dict(),
        }


def worker_main(
    shard: int,
    in_spec: RingSpec,
    out_spec: RingSpec,
    snapshot_path: str,
    index: dict[str, int],
    bit_of: dict[str, int],
    config: ServeConfig,
    summary_path: str,
    trace=None,
) -> None:
    """Process entry point: attach rings, serve, write the summary."""
    obs.ensure_worker(trace)
    in_ring = SharedRing.attach(in_spec)
    out_ring = SharedRing.attach(out_spec)
    try:
        worker = ServeWorker(
            shard, in_ring, out_ring, snapshot_path, index, bit_of, config
        )
        worker.run()
        pathlib.Path(summary_path).write_text(json.dumps(worker.summary()))
    finally:
        in_ring.close()
        out_ring.close()

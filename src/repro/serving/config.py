"""Serving topology configuration.

One :class:`ServeConfig` describes everything about a topology except
the detectors themselves (those come from a registry snapshot): worker
count, ring geometry, micro-batch size, the backpressure/shed policy,
sharding key, and deploy polling.  The document form (format
``repro.serving.config``) is what ``repro lint`` sniffs so the
``unbounded-serving-ring`` rule can flag a topology whose ingest ring
has no shed policy before it ever blocks a producer in production.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ServeConfig"]

_FORMAT = "repro.serving.config"
_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Static parameters of one serving topology.

    ``shed_after_s`` is the backpressure bound: when a shard's ingest
    ring stays full for that long, the pending events for the shard
    are **shed** -- counted, never silently dropped.  ``None`` means
    block forever (lint warns: an unbounded ring turns one stalled
    worker into a stalled producer fleet).

    ``worker_cost_s`` models a fixed **per-event** downstream cost in
    the evaluator loop (an external scorer, a downstream RPC); the
    load-generator benchmarks use it to make the workload wait-bound
    so worker scaling is measurable on any core count.  Charging per
    event rather than per micro-batch keeps the modeled time
    independent of how the ring happens to fragment batches.
    """

    workers: int = 2
    capacity: int = 1024
    batch_size: int = 64
    shed_after_s: float | None = 0.25
    key_field: str | None = None
    poll_interval_s: float = 0.0005
    deploy_poll_s: float = 0.05
    max_faults: int | None = 25
    worker_cost_s: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.shed_after_s is not None and self.shed_after_s < 0:
            raise ValueError(
                f"shed_after_s must be >= 0 or None, got {self.shed_after_s}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}"
            )
        if self.worker_cost_s < 0:
            raise ValueError(
                f"worker_cost_s must be >= 0, got {self.worker_cost_s}"
            )

    @property
    def bounded(self) -> bool:
        """Whether the ring has a shed policy (backpressure is bounded)."""
        return self.shed_after_s is not None

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["format"] = _FORMAT
        payload["version"] = _FORMAT_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeConfig":
        if payload.get("format") not in (None, _FORMAT):
            raise ValueError(f"not a {_FORMAT} document")
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

"""repro.serving -- the multi-process detector serving tier.

The production shape of the runtime: N evaluator worker processes
behind a deterministic shard-by-key router, fed through shared-memory
columnar ring buffers (zero-copy from router pack to compiled-predicate
evaluation), with hot deploy/rollback via a versioned registry
snapshot file, bounded backpressure with counted shedding, and
per-detector SLO tracking over a bucket-exact cross-worker metrics
merge.  See ``docs/serving.md`` for the topology walkthrough.
"""

from repro.serving.config import ServeConfig
from repro.serving.loadgen import LoadProfile, run_load, synthesize_states
from repro.serving.ring import RingSpec, SharedRing
from repro.serving.router import ShardRouter, shard_of
from repro.serving.slo import SLOPolicy, SLOReport, SLOViolation, evaluate_slo
from repro.serving.supervisor import (
    ServeReport,
    ServingTopology,
    publish_snapshot,
)
from repro.serving.worker import ServeWorker, read_snapshot, worker_main

__all__ = [
    "ServeConfig",
    "LoadProfile",
    "run_load",
    "synthesize_states",
    "RingSpec",
    "SharedRing",
    "ShardRouter",
    "shard_of",
    "SLOPolicy",
    "SLOReport",
    "SLOViolation",
    "evaluate_slo",
    "ServeReport",
    "ServingTopology",
    "publish_snapshot",
    "ServeWorker",
    "read_snapshot",
    "worker_main",
]

"""Self-driving load generation for the serving tier.

The generator reads the topology's own registry snapshot, collects
every comparison threshold the published predicates test, and
synthesises states that straddle those thresholds -- so a load run
exercises both branches of every detector (some events flag, most
don't) instead of streaming inert noise.  Everything is seeded: the
same ``(registry, seed, n)`` triple produces the same event stream,
which is what lets the differential tests replay a load run through a
single :class:`~repro.runtime.engine.StreamingEngine` and demand
bit-identical flags.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections.abc import Iterator

import numpy as np

from repro.core.predicate import And, Comparison, Or, Predicate
from repro.runtime.registry import DetectorRegistry

__all__ = ["LoadProfile", "synthesize_states", "run_load"]


@dataclasses.dataclass(frozen=True)
class LoadProfile:
    """Shape of a synthetic event stream."""

    #: events to generate.
    events: int = 1000
    #: deterministic stream seed.
    seed: int = 0
    #: fraction of events pushed past a random threshold (flag-prone).
    hot_fraction: float = 0.1
    #: fraction of events with one variable dropped (missing data).
    missing_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.events < 0:
            raise ValueError(f"events must be >= 0, got {self.events}")
        for field in ("hot_fraction", "missing_fraction"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {value}")


def _thresholds(predicate: Predicate) -> dict[str, list[float]]:
    out: dict[str, set[float]] = {v: set() for v in predicate.variables()}

    def collect(node: Predicate) -> None:
        if isinstance(node, Comparison):
            out.setdefault(node.variable, set()).add(node.value)
        elif isinstance(node, (And, Or)):
            for child in node.children:
                collect(child)

    collect(predicate)
    return {
        variable: sorted(v for v in values if math.isfinite(v)) or [0.0]
        for variable, values in out.items()
    }


def synthesize_states(
    registry: DetectorRegistry,
    profile: LoadProfile | None = None,
) -> Iterator[dict[str, float]]:
    """Yield ``profile.events`` states tuned to ``registry``'s detectors.

    Baseline events sit in the neighbourhood of the published
    thresholds (uniform within ±2 of each variable's threshold span);
    a ``hot_fraction`` of events push one variable decisively past a
    randomly chosen threshold, and a ``missing_fraction`` drop one
    variable entirely -- exercising the NaN/absence semantics the
    runtime documents.
    """
    profile = profile if profile is not None else LoadProfile()
    thresholds: dict[str, list[float]] = {}
    for entry in registry.latest():
        for variable, values in _thresholds(entry.compiled.lowered).items():
            thresholds.setdefault(variable, [])
            thresholds[variable] = sorted(set(thresholds[variable]) | set(values))
    if not thresholds:
        thresholds = {"x": [0.0]}
    variables = sorted(thresholds)
    rng = np.random.default_rng(profile.seed)
    lows = {v: min(thresholds[v]) - 2.0 for v in variables}
    highs = {v: max(thresholds[v]) + 2.0 for v in variables}
    for _ in range(profile.events):
        state = {
            v: float(rng.uniform(lows[v], highs[v])) for v in variables
        }
        if variables and rng.random() < profile.hot_fraction:
            victim = variables[int(rng.integers(len(variables)))]
            pivot = thresholds[victim][
                int(rng.integers(len(thresholds[victim])))
            ]
            state[victim] = float(pivot + rng.choice((-1.0, 1.0)) * 3.0)
        if variables and rng.random() < profile.missing_fraction:
            state.pop(variables[int(rng.integers(len(variables)))], None)
        yield state


def run_load(topology, profile: LoadProfile | None = None) -> dict:
    """Drive a started topology with a synthetic stream; return timing.

    Reads the registry back from the topology's own snapshot path so
    the stream matches whatever is currently deployed.
    """
    profile = profile if profile is not None else LoadProfile()
    registry = DetectorRegistry.load(topology.snapshot_path, check=False)
    started = time.perf_counter()
    submitted = topology.submit_many(synthesize_states(registry, profile))
    topology.drain()
    elapsed = time.perf_counter() - started
    return {
        "events": submitted,
        "seconds": elapsed,
        "events_per_second": submitted / elapsed if elapsed > 0 else 0.0,
    }

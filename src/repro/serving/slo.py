"""Per-detector SLO tracking over merged worker metrics.

DETOx's framing (PAPERS.md) is that a detector earns its deployment by
its coverage *per unit of overhead*; an SLO is the operational form of
the overhead half.  A :class:`SLOPolicy` states the budgets -- batch
latency quantiles per detector, fault ratio, and the topology-wide
shed ratio -- and :func:`evaluate_slo` checks them against a
:class:`~repro.runtime.metrics.RuntimeMetrics` aggregate, typically
the cross-worker merge the supervisor builds
(:meth:`RuntimeMetrics.merge` is bucket-exact, so the pooled p99 is
the true pooled-bucket p99, not an average of per-worker p99s --
averaging quantiles is the classic SLO-dashboard lie).

Detector names carrying an ``orchestration.`` prefix are pool-side
bookkeeping, not served detectors, and are excluded.
"""

from __future__ import annotations

import dataclasses

from repro.runtime.metrics import RuntimeMetrics

__all__ = ["SLOPolicy", "SLOViolation", "SLOReport", "evaluate_slo"]

_QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


@dataclasses.dataclass(frozen=True)
class SLOPolicy:
    """Budgets for a serving topology; ``None`` disables a clause."""

    #: per-detector batch-latency budgets, seconds.
    p50_s: float | None = None
    p95_s: float | None = None
    p99_s: float | None = None
    #: per-detector faults per evaluated batch.
    max_fault_ratio: float | None = 0.01
    #: topology-wide shed events per submitted event.
    max_shed_ratio: float | None = 0.0

    def quantile_budgets(self) -> dict[str, float]:
        budgets = {"p50": self.p50_s, "p95": self.p95_s, "p99": self.p99_s}
        return {k: v for k, v in budgets.items() if v is not None}


@dataclasses.dataclass(frozen=True)
class SLOViolation:
    """One exceeded budget."""

    subject: str
    clause: str
    measured: float
    budget: float

    def __str__(self) -> str:
        return (
            f"{self.subject}: {self.clause} {self.measured:.6g} "
            f"exceeds budget {self.budget:.6g}"
        )


@dataclasses.dataclass
class SLOReport:
    """Outcome of one SLO evaluation."""

    ok: bool
    violations: list[SLOViolation]
    detectors: dict[str, dict]
    submitted: int
    shed: int

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "violations": [
                {
                    "subject": v.subject,
                    "clause": v.clause,
                    "measured": v.measured,
                    "budget": v.budget,
                }
                for v in self.violations
            ],
            "detectors": self.detectors,
            "submitted": self.submitted,
            "shed": self.shed,
            "shed_ratio": self.shed_ratio,
        }


def evaluate_slo(
    metrics: RuntimeMetrics,
    policy: SLOPolicy,
    *,
    submitted: int = 0,
    shed: int = 0,
) -> SLOReport:
    """Check ``metrics`` (usually a cross-worker merge) against ``policy``."""
    violations: list[SLOViolation] = []
    detectors: dict[str, dict] = {}
    report = metrics.report()
    for name, snapshot in report["detectors"].items():
        if name.startswith("orchestration."):
            continue
        detectors[name] = snapshot
        stats = metrics.stats_for(name)
        for clause, budget in policy.quantile_budgets().items():
            measured = stats.latency.quantile(_QUANTILES[clause])
            if measured > budget:
                violations.append(
                    SLOViolation(name, f"latency {clause}", measured, budget)
                )
        if policy.max_fault_ratio is not None and stats.batches:
            ratio = stats.faults / (stats.batches + stats.faults)
            if ratio > policy.max_fault_ratio:
                violations.append(
                    SLOViolation(
                        name, "fault ratio", ratio, policy.max_fault_ratio
                    )
                )
    if policy.max_shed_ratio is not None and submitted:
        ratio = shed / submitted
        if ratio > policy.max_shed_ratio:
            violations.append(
                SLOViolation(
                    "topology", "shed ratio", ratio, policy.max_shed_ratio
                )
            )
    return SLOReport(
        ok=not violations,
        violations=violations,
        detectors=detectors,
        submitted=submitted,
        shed=shed,
    )

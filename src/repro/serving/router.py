"""Deterministic shard-by-key routing with bounded backpressure.

The router is the single writer in front of the per-worker ingest
rings.  Each submitted state gets a global sequence number, is mapped
to a shard by a *stable* key hash (CRC32 of the key's canonical form
-- Python's builtin ``hash`` is salted per process, which would make
the topology's sharding irreproducible), buffered per shard, and
flushed as a packed micro-batch:

* packing happens once, in the router, via
  :func:`repro.runtime.pack.pack_states` over the topology's fixed
  column schema -- workers evaluate the ring view directly;
* a full ring applies **backpressure**: the router waits up to
  ``shed_after_s`` (calling the topology's drain hook while it waits,
  so an in-process topology makes progress and a multi-process one
  keeps its result rings drained), then **sheds** the remainder of
  the batch -- counted per shard and surfaced in the serve report;
  shedding is never silent, which is what makes
  ``processed + shed == submitted`` checkable;
* ``shed_after_s=None`` waits forever (the ``unbounded-serving-ring``
  lint rule warns about configuring that).
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Callable, Mapping

import numpy as np

from repro import observability as obs
from repro.observability.names import COUNTER_SHED, SERVE_FLUSH
from repro.runtime.pack import pack_states
from repro.serving.config import ServeConfig
from repro.serving.ring import SharedRing

__all__ = ["shard_of", "ShardRouter"]


def shard_of(key: object, shards: int) -> int:
    """Deterministic shard for ``key``: stable across processes/runs.

    Integers shard by value (sequence numbers round-robin evenly);
    everything else hashes its ``repr`` with CRC32, which is seedless
    and stable, unlike the interpreter's salted ``hash``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        return int(key) % shards
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace")) % shards


class ShardRouter:
    """Pack and fan incoming states out across the shard rings."""

    def __init__(
        self,
        rings: list[SharedRing],
        index: Mapping[str, int],
        config: ServeConfig,
        drain_hook: Callable[[], None] | None = None,
    ) -> None:
        if not rings:
            raise ValueError("need at least one shard ring")
        self.rings = rings
        self.index = dict(index)
        self.config = config
        self.drain_hook = drain_hook
        self.submitted = 0
        self.shed = [0] * len(rings)
        self.pushed = [0] * len(rings)
        self._states: list[list[Mapping[str, object]]] = [
            [] for _ in rings
        ]
        self._seqs: list[list[int]] = [[] for _ in rings]

    @property
    def total_shed(self) -> int:
        return sum(self.shed)

    def submit(self, state: Mapping[str, object], key: object = None) -> int:
        """Route one state; returns its global sequence number."""
        seq = self.submitted
        self.submitted += 1
        if key is None:
            if self.config.key_field is not None:
                key = state.get(self.config.key_field, seq)
            else:
                key = seq
        shard = shard_of(key, len(self.rings))
        self._states[shard].append(state)
        self._seqs[shard].append(seq)
        if len(self._states[shard]) >= self.config.batch_size:
            self._flush_shard(shard)
        return seq

    def flush(self) -> None:
        """Flush every shard's partial micro-batch."""
        for shard in range(len(self.rings)):
            self._flush_shard(shard)

    def _flush_shard(self, shard: int) -> None:
        states = self._states[shard]
        if not states:
            return
        seqs = self._seqs[shard]
        self._states[shard] = []
        self._seqs[shard] = []
        rows = pack_states(states, self.index)
        meta = np.asarray(seqs, dtype=np.int64).reshape(-1, 1)
        ring = self.rings[shard]
        with obs.span(SERVE_FLUSH, shard=shard, size=len(states)) as span:
            offset = 0
            waited = 0.0
            budget = self.config.shed_after_s
            while offset < len(states):
                pushed = ring.push(rows[offset:], meta[offset:])
                if pushed:
                    offset += pushed
                    self.pushed[shard] += pushed
                    waited = 0.0  # progress resets the shed clock
                    continue
                if budget is not None and waited >= budget:
                    # Bounded wait exhausted: shed the remainder,
                    # counted -- never silent loss.
                    dropped = len(states) - offset
                    self.shed[shard] += dropped
                    span.count(COUNTER_SHED, dropped)
                    break
                if self.drain_hook is not None:
                    # Lets an in-process topology consume, and keeps a
                    # multi-process topology's result rings drained (a
                    # worker blocked on results cannot free ingest).
                    self.drain_hook()
                    if ring.free:
                        continue
                time.sleep(self.config.poll_interval_s)
                waited += self.config.poll_interval_s

"""Shared-memory columnar ring buffers: the serving tier's data plane.

One :class:`SharedRing` is a fixed-capacity, single-writer /
single-reader ring of *packed* events living in one
:class:`multiprocessing.shared_memory.SharedMemory` segment:

* a small int64 **header** (monotonic written/read cursors, a stop
  flag, a deploy epoch) -- cursors only ever grow, so ``written -
  read`` is always the number of undelivered events and wraparound is
  a modulo, never an ambiguity;
* a ``(capacity, width)`` float64 **payload** block holding events in
  the column layout :mod:`repro.runtime.pack` defines (one row per
  event, NaN for missing), so evaluator workers run compiled
  predicates **directly on a zero-copy NumPy view of the ring** --
  no per-event deserialisation anywhere on the hot path;
* a ``(capacity, meta)`` int64 **metadata** block (sequence numbers on
  the ingest side; sequence/flag-mask/deploy-serial on the results
  side).

Ownership protocol: the writer publishes a batch by filling slots and
*then* advancing the written cursor; the reader consumes by reading
the cursor, using the slots, and then advancing the read cursor.  A
slot is never overwritten until the reader has advanced past it, which
is what makes the reader's in-place view safe.  Cursor stores are
aligned 8-byte writes ordered after the slot data they publish -- the
ordering contract x86-64's total store order gives directly and that
CPython's memory model preserves for NumPy scalar stores.

The topology supervisor owns every segment's lifetime: workers attach
by :class:`RingSpec`, and under the ``spawn`` start method immediately
unregister the mapping from their ``resource_tracker`` (a spawned
child's tracker registers attachments as if they were creations;
letting that stand means the first worker to exit "cleans up" --
unlinks -- a segment the supervisor still serves).
"""

from __future__ import annotations

import dataclasses
import multiprocessing

import numpy as np
from multiprocessing import resource_tracker, shared_memory

__all__ = ["RingSpec", "SharedRing"]

# Header slots (int64 each).
_WRITTEN, _READ, _STOP, _EPOCH = range(4)
_HEADER_SLOTS = 4
_HEADER_BYTES = _HEADER_SLOTS * 8


@dataclasses.dataclass(frozen=True)
class RingSpec:
    """Picklable attachment instructions for one ring."""

    name: str
    capacity: int
    width: int
    meta: int


class SharedRing:
    """One shared-memory ring; see the module docstring for protocol."""

    def __init__(
        self, spec: RingSpec, shm: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self.spec = spec
        self._shm = shm
        self.owner = owner
        payload = spec.capacity * spec.width
        meta = spec.capacity * spec.meta
        self._header = np.frombuffer(
            shm.buf, dtype=np.int64, count=_HEADER_SLOTS
        )
        self._rows = np.frombuffer(
            shm.buf, dtype=np.float64, count=payload, offset=_HEADER_BYTES
        ).reshape(spec.capacity, spec.width)
        self._meta = np.frombuffer(
            shm.buf,
            dtype=np.int64,
            count=meta,
            offset=_HEADER_BYTES + payload * 8,
        ).reshape(spec.capacity, spec.meta)

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(cls, capacity: int, width: int, meta: int = 1) -> "SharedRing":
        """Allocate a fresh ring; the caller owns (and must unlink) it."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if width < 0 or meta < 1:
            raise ValueError(
                f"need width >= 0 and meta >= 1, got {width}/{meta}"
            )
        size = _HEADER_BYTES + capacity * width * 8 + capacity * meta * 8
        shm = shared_memory.SharedMemory(create=True, size=size)
        ring = cls(RingSpec(shm.name, capacity, width, meta), shm, owner=True)
        ring._header[:] = 0
        return ring

    @classmethod
    def attach(cls, spec: RingSpec) -> "SharedRing":
        """Attach to an existing ring (worker side)."""
        shm = shared_memory.SharedMemory(name=spec.name)
        if multiprocessing.get_start_method(allow_none=True) == "spawn":
            # Attaching registers with the resource tracker exactly like
            # creating does.  A spawned worker has its *own* tracker, so
            # letting the registration stand means worker exit unlinks a
            # segment the owning supervisor is still serving; unregister.
            # Forked workers share the supervisor's tracker (where the
            # registration is an idempotent no-op), and unregistering
            # there would strip the owner's entry instead.
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # noqa: BLE001 -- best-effort, varies by OS
                pass
        return cls(spec, shm, owner=False)

    def close(self) -> None:
        """Detach (and, for the owner, unlink) the segment."""
        if self._shm is None:
            return
        # The mmap refuses to close while NumPy views are exported.
        self._header = self._rows = self._meta = None
        self._shm.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __enter__(self) -> "SharedRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cursors -------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.spec.capacity

    @property
    def written(self) -> int:
        return int(self._header[_WRITTEN])

    @property
    def read(self) -> int:
        return int(self._header[_READ])

    @property
    def pending(self) -> int:
        """Events published but not yet consumed."""
        return int(self._header[_WRITTEN]) - int(self._header[_READ])

    @property
    def free(self) -> int:
        """Slots the writer may fill without overtaking the reader."""
        return self.spec.capacity - self.pending

    # -- control flags -------------------------------------------------
    def request_stop(self) -> None:
        self._header[_STOP] = 1

    @property
    def stopped(self) -> bool:
        return bool(self._header[_STOP])

    def bump_epoch(self) -> int:
        """Signal readers that the deploy snapshot changed."""
        epoch = int(self._header[_EPOCH]) + 1
        self._header[_EPOCH] = epoch
        return epoch

    @property
    def epoch(self) -> int:
        return int(self._header[_EPOCH])

    # -- data plane ----------------------------------------------------
    def push(self, rows: np.ndarray | None, meta: np.ndarray) -> int:
        """Publish up to ``len(meta)`` events; returns how many fit.

        ``rows`` is ``(n, width)`` float64 (ignored for width-0 rings),
        ``meta`` is ``(n, meta)`` int64.  Partial pushes are normal
        under backpressure -- the router retries (and eventually
        sheds) the remainder.
        """
        n = min(len(meta), self.free)
        if n <= 0:
            return 0
        written = self.written
        start = written % self.spec.capacity
        first = min(n, self.spec.capacity - start)
        if self.spec.width:
            self._rows[start:start + first] = rows[:first]
        self._meta[start:start + first] = meta[:first]
        if first < n:
            if self.spec.width:
                self._rows[: n - first] = rows[first:n]
            self._meta[: n - first] = meta[first:n]
        # Publish *after* the slot data: the cursor store is what makes
        # the batch visible to the reader.
        self._header[_WRITTEN] = written + n
        return n

    def peek(self, max_n: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of up to ``max_n`` consumable events.

        Returns the longest *contiguous* run from the read cursor (a
        wrapped tail shows up on the next peek), as in-place views of
        the ring.  The slots stay owned by the reader until
        :meth:`advance`; callers must drop the views before advancing
        past them.
        """
        pending = self.pending
        if pending <= 0 or max_n <= 0:
            return self._rows[:0], self._meta[:0]
        start = self.read % self.spec.capacity
        n = min(pending, max_n, self.spec.capacity - start)
        return (
            self._rows[start:start + n],
            self._meta[start:start + n],
        )

    def advance(self, n: int) -> None:
        """Return ``n`` consumed slots to the writer."""
        if n < 0 or n > self.pending:
            raise ValueError(
                f"cannot advance {n} with {self.pending} pending"
            )
        self._header[_READ] = self.read + n

"""The serving topology: router + rings + evaluator workers.

:class:`ServingTopology` assembles the tier the rest of this package
provides: it loads a versioned registry snapshot, fixes the ring
column schema (the union of every published version's variables, so a
rollback never needs a schema change), creates one ingest and one
results ring per worker, and runs N evaluator workers -- either as
real processes (``inline=False``, the production shape) or stepped
in-process (``inline=True``, the deterministic shape the differential
tests use; same rings, same router, same worker code, no scheduler).

Deploys go through :meth:`publish`: the snapshot file is replaced
atomically (write-temp + ``os.replace``, so a polling worker can never
read a torn document), then every ingest ring's deploy epoch is
bumped.  Because the epoch bump happens before any later event is
pushed, an event submitted after ``publish`` returns is guaranteed to
be evaluated by the new detector versions; events already in flight
are evaluated by whichever version owned the micro-batch, and every
result row carries the deploy serial that produced it, so the
hand-over is auditable, not just safe.  :meth:`rollback` is the one-
call form: re-point a detector at its prior version
(:meth:`~repro.runtime.registry.DetectorRegistry.rollback`) and
publish.

Accounting is closed: every submitted event is either processed (its
``(seq, mask, serial)`` row came back) or shed (counted per shard by
the router), and :meth:`stop` asserts ``processed + shed ==
submitted`` before reporting.  SLOs are evaluated over the
bucket-exact cross-worker metrics merge.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import pathlib
import tempfile
import time

import numpy as np

from repro import observability as obs
from repro.observability.names import (
    PORTFOLIO_APPLY,
    SERVE_DRAIN,
    SERVE_PUBLISH,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.registry import DetectorRegistry
from repro.runtime.pack import build_index
from repro.serving.config import ServeConfig
from repro.serving.ring import SharedRing
from repro.serving.router import ShardRouter
from repro.serving.slo import SLOPolicy, SLOReport, evaluate_slo
from repro.serving.worker import RESULT_META, ServeWorker, worker_main

__all__ = ["publish_snapshot", "ServeReport", "ServingTopology"]

#: Flag masks live in an int64 column; bit 63 is the sign bit.
MAX_DETECTORS = 63


def publish_snapshot(
    registry: DetectorRegistry,
    path: str | pathlib.Path,
    serial: int | None = None,
) -> int:
    """Atomically write ``registry`` as a versioned snapshot.

    ``serial`` defaults to one past the serial of the snapshot
    currently at ``path`` (1 for a fresh file); the write goes through
    a temp file + ``os.replace`` so a polling worker sees either the
    old document or the new one, never a torn mix.
    """
    path = pathlib.Path(path)
    if serial is None:
        serial = 1
        try:
            serial = int(json.loads(path.read_text()).get("serial", 0)) + 1
        except (OSError, ValueError):
            pass
    payload = registry.to_dict()
    payload["serial"] = serial
    handle, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, indent=2)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return serial


@dataclasses.dataclass
class ServeReport:
    """Everything one serving session produced.

    ``seqs``/``masks``/``serials`` are parallel arrays: one row per
    processed event, in drain order -- the mask's bit ``i`` is detector
    ``names[i]``'s flag, the serial names the deploy that evaluated it.
    """

    submitted: int
    processed: int
    shed: int
    shed_by_shard: list[int]
    names: list[str]
    seqs: np.ndarray
    masks: np.ndarray
    serials: np.ndarray
    metrics: RuntimeMetrics
    slo: SLOReport | None
    workers: list[dict]

    @property
    def accounted(self) -> bool:
        """The no-silent-loss invariant."""
        return self.processed + self.shed == self.submitted

    def flags_by_seq(self) -> dict[int, int]:
        """Per-event flag masks keyed by submission sequence."""
        return {
            int(seq): int(mask)
            for seq, mask in zip(self.seqs, self.masks)
        }

    def detections(self) -> dict[str, int]:
        """Events flagged, per detector, across every worker."""
        return {
            name: int(((self.masks >> bit) & 1).sum())
            for bit, name in enumerate(self.names)
        }

    def to_dict(self) -> dict:
        """JSON-ready summary (per-event arrays reduced to counts)."""
        return {
            "submitted": self.submitted,
            "processed": self.processed,
            "shed": self.shed,
            "shed_by_shard": list(self.shed_by_shard),
            "accounted": self.accounted,
            "detections": self.detections(),
            "serials": sorted(int(s) for s in np.unique(self.serials)),
            "metrics": self.metrics.report(),
            "slo": self.slo.to_dict() if self.slo is not None else None,
            "workers": self.workers,
        }


class ServingTopology:
    """N ring-fed evaluator workers behind a shard-by-key router."""

    def __init__(
        self,
        snapshot_path: str | pathlib.Path,
        config: ServeConfig | None = None,
        *,
        slo: SLOPolicy | None = None,
        inline: bool = False,
    ) -> None:
        self.snapshot_path = pathlib.Path(snapshot_path)
        self.config = config if config is not None else ServeConfig()
        self.slo_policy = slo
        self.inline = inline
        registry = DetectorRegistry.load(self.snapshot_path, check=False)
        self.names = sorted(registry.names())
        if len(self.names) > MAX_DETECTORS:
            raise ValueError(
                f"topology serves at most {MAX_DETECTORS} detectors "
                f"(flag masks are int64), got {len(self.names)}"
            )
        self.bit_of = {name: bit for bit, name in enumerate(self.names)}
        # Ring schema: every version's variables, so hot deploy to any
        # published version (including rollback) fits without resizing.
        variables: set[str] = set()
        for entry in registry:
            variables |= entry.compiled.lowered.variables()
        self.index = build_index(variables)
        self.router: ShardRouter | None = None
        self._in_rings: list[SharedRing] = []
        self._out_rings: list[SharedRing] = []
        self._workers: list[ServeWorker] = []
        self._procs: list[multiprocessing.Process] = []
        self._summary_dir: tempfile.TemporaryDirectory | None = None
        self._seqs: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._serials: list[np.ndarray] = []
        self._collected = 0
        self._report: ServeReport | None = None
        self._started = False

    @classmethod
    def from_registry(
        cls,
        registry: DetectorRegistry,
        snapshot_path: str | pathlib.Path,
        config: ServeConfig | None = None,
        **kwargs,
    ) -> "ServingTopology":
        """Publish ``registry`` to ``snapshot_path`` and build on it."""
        publish_snapshot(registry, snapshot_path)
        return cls(snapshot_path, config, **kwargs)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServingTopology":
        if self._started:
            raise RuntimeError("topology already started")
        self._started = True
        config = self.config
        for shard in range(config.workers):
            self._in_rings.append(
                SharedRing.create(config.capacity, len(self.index), 1)
            )
            self._out_rings.append(
                SharedRing.create(config.capacity, 0, RESULT_META)
            )
        self.router = ShardRouter(
            self._in_rings,
            self.index,
            config,
            drain_hook=self._pump if self.inline else self._drain_results,
        )
        if self.inline:
            for shard in range(config.workers):
                self._workers.append(
                    ServeWorker(
                        shard,
                        self._in_rings[shard],
                        self._out_rings[shard],
                        self.snapshot_path,
                        self.index,
                        self.bit_of,
                        config,
                    )
                )
            return self
        self._summary_dir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        trace = obs.export_spec()
        for shard in range(config.workers):
            proc = multiprocessing.Process(
                target=worker_main,
                args=(
                    shard,
                    self._in_rings[shard].spec,
                    self._out_rings[shard].spec,
                    str(self.snapshot_path),
                    self.index,
                    self.bit_of,
                    config,
                    self._summary_path(shard),
                    trace,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        return self

    def __enter__(self) -> "ServingTopology":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._report is None:
            try:
                self.stop()
            except Exception:
                if not any(exc):
                    raise

    def _summary_path(self, shard: int) -> str:
        assert self._summary_dir is not None
        return str(
            pathlib.Path(self._summary_dir.name) / f"worker-{shard}.json"
        )

    # -- ingest --------------------------------------------------------
    def submit(self, state, key: object = None) -> int:
        """Route one state into the topology; returns its sequence."""
        assert self.router is not None, "topology not started"
        return self.router.submit(state, key)

    def submit_many(self, states, keys=None) -> int:
        """Route an iterable of states; returns how many were submitted."""
        count = 0
        if keys is None:
            for state in states:
                self.submit(state)
                count += 1
        else:
            for state, key in zip(states, keys):
                self.submit(state, key)
                count += 1
        return count

    # -- deploy --------------------------------------------------------
    def publish(self, registry: DetectorRegistry) -> int:
        """Hot-deploy ``registry``: atomic snapshot, then epoch bump.

        Returns the new deploy serial.  Events submitted after this
        returns are evaluated by the new versions; in-flight events
        finish on whichever version owned their micro-batch.
        """
        with obs.span(SERVE_PUBLISH) as span:
            serial = publish_snapshot(registry, self.snapshot_path)
            span.set("serial", serial)
            for ring in self._in_rings:
                ring.bump_epoch()
        return serial

    def rollback(self, name: str) -> int:
        """One-call rollback: re-point ``name`` and hot-deploy."""
        registry = DetectorRegistry.load(self.snapshot_path, check=False)
        registry.rollback(name)
        return self.publish(registry)

    def apply_plan(self, plan, registry: DetectorRegistry | None = None) -> int:
        """Atomically deploy a portfolio plan; returns the new serial.

        ``plan`` is a :class:`repro.portfolio.DeploymentPlan`;
        ``registry`` the registry it was solved against (the current
        snapshot by default).  The plan is materialized as a pinned
        subset registry (plan attached, so the published snapshot is
        gated by and carries the plan) and hot-deployed through
        :meth:`publish` -- workers drop unselected detectors and pin
        the selected versions at the epoch bump, between micro-batches.
        Raises ``ValueError`` when the plan does not validate.
        """
        with obs.span(PORTFOLIO_APPLY, plan=plan.name,
                      detectors=len(plan.detectors)) as span:
            if registry is None:
                registry = DetectorRegistry.load(
                    self.snapshot_path, check=False
                )
            unknown = [
                planned.name
                for planned in plan.detectors
                if planned.name not in self.bit_of
            ]
            if unknown:
                raise ValueError(
                    f"plan {plan.name!r} selects detectors outside this "
                    f"topology: {', '.join(unknown)} (the flag-mask bit "
                    "layout is fixed at topology construction)"
                )
            subset = plan.build_registry(registry)
            serial = self.publish(subset)
            span.set("serial", serial)
            return serial

    # -- results -------------------------------------------------------
    def _drain_results(self) -> int:
        drained = 0
        for ring in self._out_rings:
            while True:
                _, meta = ring.peek(ring.capacity)
                n = len(meta)
                if n == 0:
                    break
                taken = meta.copy()
                del meta
                ring.advance(n)
                self._seqs.append(taken[:, 0])
                self._masks.append(taken[:, 1])
                self._serials.append(taken[:, 2])
                drained += n
        self._collected += drained
        return drained

    def _pump(self) -> None:
        """Inline mode: step every worker once, then drain results."""
        for worker in self._workers:
            worker.step(wait=False)
        self._drain_results()

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted event is processed or shed."""
        assert self.router is not None, "topology not started"
        router = self.router
        with obs.span(SERVE_DRAIN) as span:
            router.flush()
            deadline = time.monotonic() + timeout
            while self._collected + router.total_shed < router.submitted:
                if self.inline:
                    self._pump()
                else:
                    self._drain_results()
                    time.sleep(self.config.poll_interval_s)
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"drain timed out: {self._collected} processed + "
                        f"{router.total_shed} shed < {router.submitted} "
                        "submitted"
                    )
            span.count("drained", self._collected)

    # -- shutdown ------------------------------------------------------
    def stop(self, timeout: float = 60.0) -> ServeReport:
        """Drain, stop the workers, and assemble the serve report."""
        if self._report is not None:
            return self._report
        assert self.router is not None, "topology not started"
        self.drain(timeout)
        for ring in self._in_rings:
            ring.request_stop()
        summaries: list[dict] = []
        if self.inline:
            for worker in self._workers:
                summaries.append(worker.summary())
        else:
            for proc in self._procs:
                proc.join(timeout)
            for shard, proc in enumerate(self._procs):
                if proc.is_alive():
                    proc.terminate()
                    proc.join(5.0)
                    summaries.append(
                        {"shard": shard, "error": "worker did not stop"}
                    )
                else:
                    try:
                        summaries.append(
                            json.loads(
                                pathlib.Path(
                                    self._summary_path(shard)
                                ).read_text()
                            )
                        )
                    except (OSError, ValueError) as exc:
                        summaries.append(
                            {"shard": shard, "error": f"no summary: {exc}"}
                        )
        self._drain_results()
        merged = RuntimeMetrics()
        for summary in summaries:
            if "metrics" in summary:
                merged.merge(RuntimeMetrics.from_dict(summary["metrics"]))
        router = self.router
        processed = self._collected
        shed = router.total_shed
        if processed + shed != router.submitted:
            raise RuntimeError(
                f"accounting broken: {processed} processed + {shed} shed "
                f"!= {router.submitted} submitted"
            )
        slo = None
        if self.slo_policy is not None:
            slo = evaluate_slo(
                merged,
                self.slo_policy,
                submitted=router.submitted,
                shed=shed,
            )
        empty = np.zeros(0, dtype=np.int64)
        self._report = ServeReport(
            submitted=router.submitted,
            processed=processed,
            shed=shed,
            shed_by_shard=list(router.shed),
            names=list(self.names),
            seqs=np.concatenate(self._seqs) if self._seqs else empty,
            masks=np.concatenate(self._masks) if self._masks else empty,
            serials=np.concatenate(self._serials) if self._serials else empty,
            metrics=merged,
            slo=slo,
            workers=summaries,
        )
        for ring in self._in_rings + self._out_rings:
            ring.close()
        if self._summary_dir is not None:
            self._summary_dir.cleanup()
            self._summary_dir = None
        return self._report

"""Likely program invariants mined from golden runs (Daikon-style).

"The seminal work on discovering likely program invariants [22] shows
how invariants can be dynamically detected from program traces that
capture variable values at program points of interest" (Section II-D).
This module is that detector for the reproduction's probe traces:

* **range** invariants per numeric variable: ``lo <= v <= hi`` over
  every observed fault-free sample, optionally widened by a relative
  margin (Daikon's exact bounds are notoriously brittle; the margin is
  the standard mitigation);
* **constant** invariants (a variable that never changed);
* **sign** invariants (never negative / never positive);
* **boolean constancy** for bool variables;
* **pairwise ordering** invariants ``x <= y`` over numeric pairs that
  held in every sample (the classic Daikon binary invariant).

An :class:`InvariantSet` converts into a
:class:`repro.core.detector.Detector` whose predicate flags any state
*violating* an invariant -- the online-detector reading of Daikon that
Sahoo et al. applied to hardware errors [24].

The crucial semantic difference from the paper's methodology (and the
point of ablation A-5): an invariant violation marks *any* deviation
from fault-free behaviour, not a *failure-inducing* state, so on fault
injection data these detectors trade a much higher false positive rate
for their completeness.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.detector import Detector
from repro.core.predicate import (
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
)
from repro.injection.golden import capture_golden_run
from repro.injection.instrument import Probe

__all__ = [
    "Invariant",
    "InvariantSet",
    "mine_invariants",
    "invariants_from_golden_runs",
    "range_assertions",
]

#: Bound magnitude beyond which a range invariant is not emitted (a
#: variable this large carries no usable range information).
_MAX_BOUND = 1e200


@dataclasses.dataclass(frozen=True)
class Invariant:
    """One mined property: a description plus its violation predicate."""

    description: str
    violation: Predicate

    def holds(self, state: Mapping[str, object]) -> bool:
        return not self.violation.evaluate(state)


@dataclasses.dataclass
class InvariantSet:
    """All invariants mined at one program point."""

    probe: Probe | None
    invariants: list[Invariant]

    def __len__(self) -> int:
        return len(self.invariants)

    def violation_predicate(self) -> Predicate:
        """Flags states violating *any* invariant."""
        if not self.invariants:
            return FalsePredicate()
        return Or([inv.violation for inv in self.invariants]).simplify()

    def to_detector(self, name: str = "invariant_detector") -> Detector:
        return Detector(self.violation_predicate(), self.probe, name)

    def describe(self) -> str:
        return "\n".join(inv.description for inv in self.invariants)


def _is_bool(values: Sequence[object]) -> bool:
    return all(isinstance(v, bool) for v in values)


def _numeric(values: Sequence[object]) -> list[float] | None:
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return None
        f = float(v)
        if not math.isfinite(f):
            return None
        out.append(f)
    return out


def mine_invariants(
    samples: Iterable[Mapping[str, object]],
    probe: Probe | None = None,
    margin: float = 0.05,
    orderings: bool = True,
) -> InvariantSet:
    """Mine likely invariants from fault-free state samples.

    ``margin`` widens range bounds by that fraction of the observed
    span (of the magnitude, for constant variables), reducing the
    brittleness of exact extrema.
    """
    samples = list(samples)
    if not samples:
        return InvariantSet(probe, [])
    variables = sorted(samples[0].keys())
    columns: dict[str, list[object]] = {
        v: [s[v] for s in samples if v in s] for v in variables
    }

    invariants: list[Invariant] = []
    numeric_vars: list[str] = []
    for variable in variables:
        values = columns[variable]
        if not values:
            continue
        if _is_bool(values):
            distinct = set(values)
            if len(distinct) == 1:
                constant = next(iter(distinct))
                encoded = 1.0 if constant else 0.0
                invariants.append(
                    Invariant(
                        f"{variable} == {str(constant).lower()}",
                        Comparison(variable, "!=", encoded,
                                   label=str(constant).lower()),
                    )
                )
            continue
        numbers = _numeric(values)
        if numbers is None:
            continue
        numeric_vars.append(variable)
        lo, hi = min(numbers), max(numbers)
        if lo == hi:
            pad = abs(lo) * margin if lo != 0 else margin
            lo, hi = lo - pad, hi + pad
        else:
            pad = (hi - lo) * margin
            lo, hi = lo - pad, hi + pad
        if abs(lo) < _MAX_BOUND and abs(hi) < _MAX_BOUND:
            invariants.append(
                Invariant(
                    f"{lo:.6g} <= {variable} <= {hi:.6g}",
                    Or([
                        Comparison(variable, ">", hi),
                        # "not (v > lo')" encodes v < lo via <= with the
                        # next-lower representable bound.
                        Comparison(variable, "<=", _below(lo)),
                    ]),
                )
            )
        if all(n >= 0 for n in numbers) and lo < 0:
            # The padded range allowed negatives but the data never
            # was: keep the sharper sign invariant too.
            invariants.append(
                Invariant(
                    f"{variable} >= 0",
                    Comparison(variable, "<=", -_tiny(numbers)),
                )
            )

    if orderings:
        for a, b in itertools.combinations(numeric_vars, 2):
            pairs = [
                (s[a], s[b])
                for s in samples
                if a in s and b in s
            ]
            numeric_pairs = [
                (float(x), float(y))  # type: ignore[arg-type]
                for x, y in pairs
                if isinstance(x, (int, float)) and isinstance(y, (int, float))
                and not isinstance(x, bool) and not isinstance(y, bool)
            ]
            if not numeric_pairs:
                continue
            if all(x <= y for x, y in numeric_pairs) and any(
                x < y for x, y in numeric_pairs
            ):
                invariants.append(
                    Invariant(f"{a} <= {b}", _OrderingViolation(a, b))
                )
            elif all(x >= y for x, y in numeric_pairs) and any(
                x > y for x, y in numeric_pairs
            ):
                invariants.append(
                    Invariant(f"{b} <= {a}", _OrderingViolation(b, a))
                )
    return InvariantSet(probe, invariants)


def invariants_from_golden_runs(
    target,
    probe: Probe,
    test_cases: Iterable[int],
    margin: float = 0.05,
    orderings: bool = True,
) -> InvariantSet:
    """Mine invariants from the golden runs of the given test cases."""
    samples: list[Mapping[str, object]] = []
    for test_case in test_cases:
        golden = capture_golden_run(target, test_case)
        samples.extend(s.variables for s in golden.samples_at(probe))
    return mine_invariants(samples, probe, margin, orderings)


def range_assertions(
    samples: Iterable[Mapping[str, object]],
    probe: Probe | None = None,
    margin: float = 0.2,
) -> InvariantSet:
    """Hiller-style executable assertions: range constraints only.

    The simplest of the prior approaches (constraints on a signal's
    admissible values, Section II-A), with a generous default margin as
    an engineer allowing headroom would use.
    """
    return mine_invariants(samples, probe, margin=margin, orderings=False)


# ----------------------------------------------------------------------
# Ordering-invariant violation predicate
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _OrderingViolation(Predicate):
    """Violation of ``smaller <= larger``: true when smaller > larger."""

    smaller: str
    larger: str

    def evaluate(self, state: Mapping[str, object]) -> bool:
        try:
            a = float(state[self.smaller])  # type: ignore[arg-type]
            b = float(state[self.larger])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return False
        if math.isnan(a) or math.isnan(b):
            return False
        return a > b

    def evaluate_rows(self, x, attribute_index):
        x = np.atleast_2d(x)
        if self.smaller not in attribute_index or self.larger not in attribute_index:
            return np.zeros(len(x), dtype=bool)
        a = x[:, attribute_index[self.smaller]]
        b = x[:, attribute_index[self.larger]]
        with np.errstate(invalid="ignore"):
            return a > b

    def variables(self) -> frozenset[str]:
        return frozenset((self.smaller, self.larger))

    def simplify(self) -> Predicate:
        return self

    def complexity(self) -> int:
        return 1

    def _source(self, state_name: str) -> str:
        # NaN-defaulted reads keep the rendered assertion consistent
        # with evaluate(): missing/NaN operands never flag.
        return (
            f"{state_name}.get({self.smaller!r}, float('nan'))"
            f" > {state_name}.get({self.larger!r}, float('nan'))"
        )

    def __str__(self) -> str:
        return f"{self.smaller} > {self.larger}"


def _below(value: float) -> float:
    """A bound strictly below ``value`` for encoding v < value."""
    return math.nextafter(value, -math.inf)


def _tiny(numbers: Sequence[float]) -> float:
    positives = [n for n in numbers if n > 0]
    smallest = min(positives) if positives else 1.0
    return min(smallest * 1e-6, 1e-9)

"""Baseline detector generators the paper positions itself against.

Section II surveys two families of prior approaches that this package
implements as runnable baselines:

* :mod:`repro.baselines.invariants` -- Daikon-style *likely program
  invariants* (Ernst et al. [22], Section II-D): properties mined from
  fault-free traces (golden runs), whose violation flags an erroneous
  state.  The paper's key contrast is that invariants flag **any**
  deviation from fault-free behaviour, while the methodology's
  predicates flag **failure-inducing** states only -- the ablation
  experiment A-5 measures exactly that gap (invariant detectors catch
  the failures but pay a large false-positive price on benign
  corruptions).
* :func:`repro.baselines.invariants.range_assertions` -- the
  specification-/constraint-style executable assertions of Hiller [6]
  (min/max constraints on signals), the simplest member of the same
  family.
"""

from repro.baselines.invariants import (
    InvariantSet,
    mine_invariants,
    invariants_from_golden_runs,
    range_assertions,
)

__all__ = [
    "InvariantSet",
    "invariants_from_golden_runs",
    "mine_invariants",
    "range_assertions",
]

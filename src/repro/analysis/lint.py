"""Lint framework over detectors, registries and injection campaigns.

The static checks in this package (:mod:`repro.analysis.simplify`,
:mod:`repro.analysis.redundancy`, :mod:`repro.analysis.surface`) each
answer one question about one artefact.  This module packages them as
*lint rules* -- named, severity-graded, individually selectable -- over
a :class:`LintContext` holding everything there is to lint: predicates
by name, optionally a registry and an injection surface with campaign
configurations.  ``repro lint`` / ``repro analyze`` (see
:mod:`repro.cli`) are thin shells around :class:`Linter`.

Rules are pluggable: subclass :class:`LintRule` and decorate it with
:func:`register_rule`, and every :class:`Linter` constructed without an
explicit rule list picks it up.

Rule catalog (see ``docs/analysis.md`` for the full write-up):

========================  ========  =============================================
rule                      severity  fires when
========================  ========  =============================================
unsatisfiable-clause      ERROR     a conjunctive clause can never fire
constant-predicate        ERROR     the whole predicate simplifies to TRUE/FALSE
tautological-clause       WARNING   an atom is implied by its clause context
subsumed-branch           WARNING   a disjunct is implied by a weaker sibling
vacuous-disjunction       WARNING   sibling branches jointly cover a variable's
                                    whole range (predicate is a definedness test)
interpreted-fallback      WARNING   a node outside the core algebra forces the
                                    runtime onto the interpreted path
redundant-atoms           INFO      a clause carries more atoms than needed
excessive-complexity      INFO      simplified predicate exceeds the atom budget
duplicate-detector        ERROR/    a registry pair is provably equivalent
                          WARNING   (ERROR) or one-way implied (WARNING), or
                          /INFO     shows battery overlap (INFO)
dead-injection            WARNING   a campaign injects into a variable the
                                    target never reads back
unbounded-serving-ring    WARNING   a serving topology's ingest ring has no
                                    shed policy (``shed_after_s`` null)
unjournaled-campaign      WARNING   a campaign estimated above the run budget
                                    has no checkpoint journal configured
overbudget-deployment     ERROR     a deployment plan's predicted per-event
                                    cost exceeds its own budget
redundant-deployment      WARNING   a deployment plan selects a detector
                                    proven implied by another selected one
unpruned-exhaustive-      WARNING   a campaign estimated above the prune budget
campaign                            runs exhaustively (``prune`` unset) though
                                    static pruning could skip proven-dead points
prune-without-audit       WARNING   a statically pruned campaign disables the
                                    re-injection audit (``audit_fraction`` 0)
low-sample-stratum        WARNING   a sampled campaign's stratum stopped under
                          /ERROR    the sample floor or wider than its target
                                    half-width (WARNING); ERROR when a mining
                                    step consumed an estimate whose interval
                                    straddles the outcome-class boundary
stale-campaign-store      WARNING   a campaign document references a campaign
                                    store that is missing on disk, or one
                                    holding shard generations superseded by
                                    module edits (``repro store gc`` reclaims
                                    them)
========================  ========  =============================================
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections.abc import Iterable, Iterator

from repro.analysis.redundancy import analyze_registry, compare_predicates
from repro.analysis.simplify import SimplificationResult, simplify_predicate
from repro.analysis.surface import SurfaceReport, check_campaign
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = [
    "Severity",
    "Finding",
    "LintContext",
    "LintRule",
    "Linter",
    "register_rule",
    "default_rules",
    "render_text",
    "render_json",
    "exit_code",
]


class Severity(enum.IntEnum):
    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding against one subject."""

    rule: str
    severity: Severity
    subject: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.subject}: {self.message} [{self.rule}]"


@dataclasses.dataclass
class LintContext:
    """Everything a lint run can look at.

    ``predicates`` maps subject names to predicates; ``registry``,
    ``surface`` and ``campaigns`` are optional -- rules that need an
    absent piece simply produce nothing.
    """

    predicates: dict[str, Predicate] = dataclasses.field(default_factory=dict)
    registry: object | None = None  # duck-typed DetectorRegistry
    surface: SurfaceReport | None = None
    campaigns: dict[str, object] = dataclasses.field(default_factory=dict)
    #: subjects in ``campaigns`` whose document declares a checkpoint
    #: journal (see repro.orchestration.Journal)
    journaled: set[str] = dataclasses.field(default_factory=set)
    #: serving-topology configurations (duck-typed
    #: repro.serving.ServeConfig), by subject
    serving: dict[str, object] = dataclasses.field(default_factory=dict)
    #: deployment plans (duck-typed repro.portfolio.DeploymentPlan),
    #: by subject
    plans: dict[str, object] = dataclasses.field(default_factory=dict)
    #: sampling reports of sampled campaigns (duck-typed
    #: repro.injection.sampling.SamplingReport, or its dict payload),
    #: by subject
    sampling: dict[str, object] = dataclasses.field(default_factory=dict)
    #: campaign-store roots referenced by campaign documents (path
    #: strings, or duck-typed repro.injection.store.CampaignStore),
    #: by subject
    stores: dict[str, object] = dataclasses.field(default_factory=dict)
    _simplified: dict[str, SimplificationResult] = dataclasses.field(
        default_factory=dict, repr=False
    )

    def simplification(self, subject: str) -> SimplificationResult:
        """Memoised :func:`simplify_predicate` for one subject."""
        result = self._simplified.get(subject)
        if result is None:
            result = simplify_predicate(self.predicates[subject])
            self._simplified[subject] = result
        return result


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`name` and implement :meth:`check`, yielding
    :class:`Finding` objects.  Rules must not mutate the context beyond
    its memoisation cache.
    """

    name: str = ""

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def _verdict_findings(
        self, context: LintContext, status: str, severity: Severity
    ) -> Iterator[Finding]:
        """Findings for every clause verdict of ``status``."""
        for subject in context.predicates:
            for verdict in context.simplification(subject).verdicts_with(status):
                yield Finding(self.name, severity, subject, verdict.detail)


_RULES: dict[str, type[LintRule]] = {}


def register_rule(rule: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the default rule set."""
    if not rule.name:
        raise ValueError(f"{rule.__name__} has no name")
    _RULES[rule.name] = rule
    return rule


def default_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, stable order."""
    return [_RULES[name]() for name in sorted(_RULES)]


@register_rule
class UnsatisfiableClauseRule(LintRule):
    """A conjunctive clause that no state can satisfy: the branch is
    dead weight and usually evidence of a mining or editing mistake."""

    name = "unsatisfiable-clause"

    def check(self, context: LintContext) -> Iterator[Finding]:
        yield from self._verdict_findings(context, "unsatisfiable", Severity.ERROR)


@register_rule
class ConstantPredicateRule(LintRule):
    """The predicate as a whole is provably TRUE or FALSE: it either
    flags every state (all false positives) or can never detect."""

    name = "constant-predicate"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject in context.predicates:
            result = context.simplification(subject)
            simplified = result.simplified
            if isinstance(simplified, TruePredicate) and not isinstance(
                result.original, TruePredicate
            ):
                yield Finding(
                    self.name, Severity.ERROR, subject,
                    "predicate is provably TRUE: it fires on every state",
                )
            elif isinstance(simplified, FalsePredicate) and not isinstance(
                result.original, FalsePredicate
            ):
                yield Finding(
                    self.name, Severity.ERROR, subject,
                    "predicate is provably FALSE: it can never fire",
                )


@register_rule
class TautologicalClauseRule(LintRule):
    """An atom already implied by the rest of its clause."""

    name = "tautological-clause"

    def check(self, context: LintContext) -> Iterator[Finding]:
        yield from self._verdict_findings(context, "tautological", Severity.WARNING)


@register_rule
class SubsumedBranchRule(LintRule):
    """A disjunct implied by a weaker sibling: it never changes the
    verdict and slows every evaluation."""

    name = "subsumed-branch"

    def check(self, context: LintContext) -> Iterator[Finding]:
        yield from self._verdict_findings(context, "subsumed", Severity.WARNING)


@register_rule
class VacuousDisjunctionRule(LintRule):
    """Sibling branches jointly cover a variable's whole range, so the
    disjunction only tests that the variable is defined and non-NaN --
    rarely what a detector means."""

    name = "vacuous-disjunction"

    def check(self, context: LintContext) -> Iterator[Finding]:
        yield from self._verdict_findings(context, "vacuous", Severity.WARNING)


@register_rule
class RedundantAtomsRule(LintRule):
    """Clauses carrying more atoms than the canonical form needs, and
    sibling branches that merge into one interval."""

    name = "redundant-atoms"

    def check(self, context: LintContext) -> Iterator[Finding]:
        yield from self._verdict_findings(context, "redundant", Severity.INFO)
        yield from self._verdict_findings(context, "merged", Severity.INFO)


def _core_algebra(predicate: Predicate) -> bool:
    """Mirror of the compiler's lowering checks: True when every node
    is one the batch/scalar lowerers accept."""
    if isinstance(predicate, (TruePredicate, FalsePredicate, Comparison)):
        return True
    if isinstance(predicate, (And, Or)):
        return all(_core_algebra(child) for child in predicate.children)
    return False


@register_rule
class InterpretedFallbackRule(LintRule):
    """A node outside the core algebra forces
    :func:`repro.runtime.compile.compile_predicate` onto the
    interpreted path -- correct, but an order of magnitude slower."""

    name = "interpreted-fallback"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject, predicate in context.predicates.items():
            if not _core_algebra(predicate):
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    f"{type(predicate).__name__} contains nodes outside the "
                    "core algebra; the runtime will serve it interpreted",
                )


@register_rule
class ExcessiveComplexityRule(LintRule):
    """Simplified predicate still larger than the atom budget."""

    name = "excessive-complexity"
    budget = 128

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject in context.predicates:
            result = context.simplification(subject)
            if result.atoms_after > self.budget:
                yield Finding(
                    self.name, Severity.INFO, subject,
                    f"{result.atoms_after} atoms after simplification "
                    f"(budget {self.budget}); consider splitting the detector",
                )


@register_rule
class DuplicateDetectorRule(LintRule):
    """Registry pairs that are provably equivalent (ERROR), one-way
    implied (WARNING) or overlapping on the evidence battery (INFO)."""

    name = "duplicate-detector"

    _SEVERITIES = {
        "equivalent": Severity.ERROR,
        "implies": Severity.WARNING,
        "implied_by": Severity.WARNING,
        "overlap": Severity.INFO,
    }

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.registry is None:
            return
        for finding in analyze_registry(context.registry):
            severity = self._SEVERITIES.get(finding.relation.relation)
            if severity is None:
                continue
            yield Finding(
                self.name, severity, f"{finding.left} / {finding.right}",
                f"{finding.relation.relation}: {finding.relation.detail}",
            )


@register_rule
class DeadInjectionRule(LintRule):
    """Campaign configurations spending runs on variables the analysed
    injection surface shows are never read back."""

    name = "dead-injection"

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.surface is None:
            return
        for subject, config in context.campaigns.items():
            for problem in check_campaign(config, context.surface):
                yield Finding(self.name, Severity.WARNING, subject, problem)


@register_rule
class UnjournaledCampaignRule(LintRule):
    """Campaign configurations whose estimated run count exceeds the
    budget but have no checkpoint journal configured: a crash near the
    end loses hours of injection work that
    :class:`repro.orchestration.Journal` would have made resumable."""

    name = "unjournaled-campaign"
    budget = 5000

    def check(self, context: LintContext) -> Iterator[Finding]:
        from repro.orchestration.tasks import estimate_runs

        for subject, config in context.campaigns.items():
            if subject in context.journaled:
                continue
            surface = context.surface
            n_variables = None
            if surface is not None and hasattr(config, "injection_probe"):
                probe = config.injection_probe
                n_variables = len(
                    surface.variables_at(probe.module, probe.location)
                )
            runs = estimate_runs(config, n_variables=n_variables)
            if runs is not None and runs > self.budget:
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    f"campaign estimates {runs} runs (budget {self.budget}) "
                    "with no checkpoint journal; a crash re-runs everything "
                    "-- configure a journal (repro.orchestration.Journal)",
                )


@register_rule
class UnprunedExhaustiveCampaignRule(LintRule):
    """Large campaign configurations that run exhaustively although
    :mod:`repro.analysis.prune` could prove part of the injection space
    dead or equivalent before any run executes.  Fires only above a
    run budget -- small campaigns finish before the analysis pays for
    itself."""

    name = "unpruned-exhaustive-campaign"
    budget = 10_000

    def check(self, context: LintContext) -> Iterator[Finding]:
        from repro.orchestration.tasks import estimate_runs

        for subject, config in context.campaigns.items():
            prune = getattr(config, "prune", None)
            if prune not in (None, "none"):
                continue
            surface = context.surface
            n_variables = None
            if surface is not None and hasattr(config, "injection_probe"):
                probe = config.injection_probe
                n_variables = len(
                    surface.variables_at(probe.module, probe.location)
                )
            runs = estimate_runs(config, n_variables=n_variables)
            if runs is not None and runs > self.budget:
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    f"campaign estimates {runs} exhaustive runs (budget "
                    f"{self.budget}) with prune unset; static pruning "
                    "(prune=\"static\") skips points the dataflow analysis "
                    "proves dead or equivalent, with an audit guarding the "
                    "verdicts",
                )


@register_rule
class PruneWithoutAuditRule(LintRule):
    """Statically pruned campaigns running with the audit disabled:
    the audit's seeded re-injection of pruned points is the empirical
    check on the analyzer's soundness, and ``audit_fraction=0`` trades
    it away for a marginal saving."""

    name = "prune-without-audit"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject, config in context.campaigns.items():
            if getattr(config, "prune", None) != "static":
                continue
            if getattr(config, "audit_fraction", 0.0) <= 0.0:
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    "campaign prunes statically with audit_fraction=0: no "
                    "pruned point is ever re-injected, so an unsound "
                    "verdict would go undetected -- keep the default 5% "
                    "audit sample",
                )


@register_rule
class LowSampleStratumRule(LintRule):
    """Sampled campaigns whose per-stratum estimates are too weak to
    trust.  A stratum that stopped under the sample floor, or whose
    widest class interval never reached the configured stop target,
    only narrows with more draws (WARNING).  When a detector-mining
    step consumed the campaign's dataset (``mined``) and a class
    interval straddles the outcome-class decision boundary, the mined
    labels could flip inside the interval: ERROR."""

    name = "low-sample-stratum"

    @staticmethod
    def _report(document):
        if isinstance(document, dict):
            from repro.injection.sampling import SamplingReport

            return SamplingReport.from_dict(document)
        return document

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject in sorted(context.sampling):
            report = self._report(context.sampling[subject])
            spec = report.spec
            for stratum in report.strata:
                exhausted = (
                    stratum.population == 0
                    or stratum.sampled >= stratum.population
                )
                if exhausted:
                    # The whole frame executed: the estimate is exact,
                    # no interval can improve it.
                    continue
                prefix = f"stratum {stratum.stratum!r}"
                if stratum.sampled < spec.min_cells:
                    yield Finding(
                        self.name, Severity.WARNING, subject,
                        f"{prefix} stopped at {stratum.sampled} sampled "
                        f"cell(s), under the {spec.min_cells}-cell floor "
                        f"({stratum.stopped}); its intervals are too wide "
                        "to act on -- raise max_cells or the budget",
                    )
                elif stratum.halfwidth > stratum.target_halfwidth:
                    yield Finding(
                        self.name, Severity.WARNING, subject,
                        f"{prefix} stopped ({stratum.stopped}) with "
                        f"interval half-width {stratum.halfwidth:.3f} above "
                        f"the {stratum.target_halfwidth:.3f} target; the "
                        "estimate did not converge -- sample more cells or "
                        "relax the target",
                    )
                if not report.mined:
                    continue
                for class_name in stratum.straddles(spec.boundary):
                    estimate = stratum.classes[class_name]
                    yield Finding(
                        self.name, Severity.ERROR, subject,
                        f"{prefix} class {class_name!r} interval "
                        f"[{estimate.low:.3f}, {estimate.high:.3f}] "
                        f"straddles the {spec.boundary:.2f} decision "
                        "boundary and the campaign's dataset was mined: "
                        "the dominant outcome of the stratum is "
                        "statistically undecided -- sample it tighter or "
                        "run it exhaustively before mining",
                    )


@register_rule
class StaleCampaignStoreRule(LintRule):
    """Campaign documents referencing a store that has drifted: the
    store directory is gone (delta re-runs silently degrade to full
    re-execution), or it carries shard generations superseded by
    module edits (dead disk that ``repro store gc`` reclaims)."""

    name = "stale-campaign-store"

    def check(self, context: LintContext) -> Iterator[Finding]:
        import pathlib

        from repro.injection.store import CampaignStore

        for subject in sorted(context.stores):
            ref = context.stores[subject]
            store = (
                ref
                if hasattr(ref, "stale_entries")
                else CampaignStore(str(ref))
            )
            if not pathlib.Path(store.root).is_dir():
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    f"campaign references store {str(store.root)!r} which "
                    "does not exist: the next run(store=...) re-executes "
                    "every shard instead of loading them",
                )
                continue
            stale = store.stale_entries()
            if stale:
                records = sum(entry.records for entry in stale)
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    f"store {str(store.root)!r} holds {len(stale)} stale "
                    f"shard generation(s) ({records} record(s)) superseded "
                    "by module edits; run `repro store gc` to reclaim them",
                )


@register_rule
class UnboundedServingRingRule(LintRule):
    """Serving configurations whose ingest rings have no shed policy:
    with ``shed_after_s`` unset, one stalled evaluator worker holds its
    ring full forever and the router blocks every producer behind it.
    Bounded topologies shed overflow *counted* (the serve report keeps
    ``processed + shed == submitted``); unbounded ones just stop."""

    name = "unbounded-serving-ring"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject, config in context.serving.items():
            if isinstance(config, dict):
                bounded = config.get("shed_after_s") is not None
            else:
                bounded = getattr(config, "shed_after_s", 0) is not None
            if not bounded:
                yield Finding(
                    self.name, Severity.WARNING, subject,
                    "serving ring has no shed policy (shed_after_s is "
                    "null): a stalled worker blocks producers "
                    "indefinitely -- set a bounded wait so overflow is "
                    "shed and counted instead",
                )


@register_rule
class OverbudgetDeploymentRule(LintRule):
    """A deployment plan whose predicted per-event cost exceeds the
    budget it was supposedly solved under: either the plan was edited
    by hand or the candidate costs changed after the solve.  Either
    way, publishing it breaks the overhead contract the budget
    encodes."""

    name = "overbudget-deployment"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject in sorted(context.plans):
            plan = context.plans[subject]
            budget = float(getattr(plan, "budget_s", 0.0))
            declared = float(getattr(plan, "cost_s", 0.0))
            recomputed = sum(
                float(d.cost_s) for d in getattr(plan, "detectors", ())
            )
            cost = max(declared, recomputed)
            if budget > 0.0 and cost > budget:
                yield Finding(
                    self.name, Severity.ERROR, subject,
                    f"plan predicts {cost:.3e} s/event against a budget of "
                    f"{budget:.3e} s/event ({cost / budget:.2f}x); re-solve "
                    "under the real budget before deploying",
                )


@register_rule
class RedundantDeploymentRule(LintRule):
    """A deployment plan selecting a detector provably implied by (or
    equivalent to) another selected detector: the implied one adds
    zero marginal coverage while its full per-event cost still counts
    against the budget.  The optimizer never produces such a pair, so
    one in a plan means the plan was edited or the proofs postdate the
    solve."""

    name = "redundant-deployment"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for subject in sorted(context.plans):
            plan = context.plans[subject]
            predicates = {}
            for planned in getattr(plan, "detectors", ()):
                predicate = None
                if context.registry is not None:
                    try:
                        predicate = context.registry.lookup(
                            planned.name, planned.version
                        ).detector.predicate
                    except KeyError:
                        predicate = None
                if predicate is None:
                    predicate = context.predicates.get(planned.name)
                if predicate is not None:
                    predicates[planned.name] = predicate
            names = sorted(predicates)
            for i, left in enumerate(names):
                for right in names[i + 1:]:
                    relation = compare_predicates(
                        predicates[left], predicates[right]
                    )
                    if not relation.proven or not relation.is_redundant:
                        continue
                    yield Finding(
                        self.name, Severity.WARNING, subject,
                        f"{left} is provably "
                        f"{relation.relation.replace('_', ' ')} {right} "
                        f"({relation.detail}): the absorbed detector adds "
                        "no coverage but still costs its full per-event "
                        "budget",
                    )


class Linter:
    """Run a rule set over a context.

    ``rules`` defaults to every registered rule; ``select``/``ignore``
    filter by rule name.
    """

    def __init__(
        self,
        rules: Iterable[LintRule] | None = None,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> None:
        chosen = list(rules) if rules is not None else default_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.name for rule in chosen}
            if unknown:
                raise ValueError(f"unknown rules: {', '.join(sorted(unknown))}")
            chosen = [rule for rule in chosen if rule.name in wanted]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [rule for rule in chosen if rule.name not in dropped]
        self.rules = chosen

    def run(self, context: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(context))
        findings.sort(key=lambda f: (-f.severity, f.subject, f.rule, f.message))
        return findings


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(findings: list[Finding]) -> str:
    """One line per finding plus a severity tally."""
    lines = [str(finding) for finding in findings]
    if findings:
        tally = {}
        for finding in findings:
            tally[finding.severity] = tally.get(finding.severity, 0) + 1
        summary = ", ".join(
            f"{tally[severity]} {severity}"
            for severity in sorted(tally, reverse=True)
        )
        lines.append(f"{len(findings)} finding(s): {summary}")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "rule": finding.rule,
                    "severity": str(finding.severity),
                    "subject": finding.subject,
                    "message": finding.message,
                }
                for finding in findings
            ],
            "count": len(findings),
        },
        indent=2,
    )


def exit_code(findings: list[Finding], fail_on: str = "error") -> int:
    """CLI exit status: 1 when any finding reaches ``fail_on``.

    ``fail_on`` is a severity name or ``"never"``.
    """
    if fail_on == "never":
        return 0
    threshold = Severity.parse(fail_on)
    return 1 if any(f.severity >= threshold for f in findings) else 0

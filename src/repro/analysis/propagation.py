"""Per-variable error permeability from campaign records.

Hiller et al.'s propagation analysis [14] estimates, for each signal
of a module, how permeable it is to errors: the probability that a
corruption of that signal propagates to an observable failure.  The
reproduction computes the same statistic directly from fault injection
records, broken down three ways:

* per **variable** -- the headline permeability (failures / runs);
* per **bit region** of the flipped position (low / middle / high
  third of the representation) -- data value faults in high-order bits
  propagate differently from low-order noise, and the profile shows
  which;
* per **injection time** -- a variable may only be live during part of
  the run (the FlightGear gear module matters during the ground roll
  and not after), which the time profile exposes.

:func:`analyse_propagation` accepts a
:class:`repro.injection.campaign.CampaignResult` or a parsed log
(anything with ``records``, ``config`` and ``target_name``), so cached
campaign logs can be analysed without re-running Step 1.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.injection.bitflip import bit_width

__all__ = ["VariablePropagation", "PropagationReport", "analyse_propagation"]

_REGIONS = ("low", "mid", "high")


def _region(bit: int, width: int) -> str:
    if width <= 1:
        return "low"
    third = max(width // 3, 1)
    if bit < third:
        return "low"
    if bit < 2 * third:
        return "mid"
    return "high"


@dataclasses.dataclass
class VariablePropagation:
    """Permeability statistics for one instrumented variable."""

    variable: str
    kind: str
    runs: int
    failures: int
    crashes: int
    by_region: dict[str, tuple[int, int]]  # region -> (failures, runs)
    by_time: dict[int, tuple[int, int]]    # injection time -> (failures, runs)

    @property
    def permeability(self) -> float:
        """P(failure | corruption of this variable)."""
        return self.failures / self.runs if self.runs else 0.0

    def region_permeability(self, region: str) -> float:
        failures, runs = self.by_region.get(region, (0, 0))
        return failures / runs if runs else 0.0

    def time_permeability(self, time: int) -> float:
        failures, runs = self.by_time.get(time, (0, 0))
        return failures / runs if runs else 0.0


@dataclasses.dataclass
class PropagationReport:
    """Module-level propagation profile."""

    target: str
    module: str
    injection_location: str
    variables: list[VariablePropagation]

    @property
    def total_runs(self) -> int:
        return sum(v.runs for v in self.variables)

    @property
    def total_failures(self) -> int:
        return sum(v.failures for v in self.variables)

    @property
    def module_permeability(self) -> float:
        """P(failure | corruption anywhere in the module)."""
        return self.total_failures / self.total_runs if self.total_runs else 0.0

    def ranked(self) -> list[VariablePropagation]:
        """Variables by descending permeability: the placement order.

        A detector guarding the most permeable variables intercepts the
        largest share of failure-inducing corruptions; resilient
        variables (permeability ~ 0) need no guarding.
        """
        return sorted(
            self.variables, key=lambda v: (v.permeability, v.runs), reverse=True
        )

    def critical_variables(self, threshold: float = 0.5) -> list[str]:
        return [
            v.variable for v in self.ranked() if v.permeability >= threshold
        ]

    def resilient_variables(self, threshold: float = 0.02) -> list[str]:
        return [
            v.variable for v in self.variables if v.permeability <= threshold
        ]


def analyse_propagation(result) -> PropagationReport:
    """Compute the propagation profile of a campaign's records."""
    per_variable: dict[str, dict] = defaultdict(
        lambda: {
            "kind": "float64",
            "runs": 0,
            "failures": 0,
            "crashes": 0,
            "by_region": defaultdict(lambda: [0, 0]),
            "by_time": defaultdict(lambda: [0, 0]),
        }
    )
    for record in result.records:
        flip = record.flip
        stats = per_variable[flip.variable]
        stats["kind"] = flip.kind
        stats["runs"] += 1
        width = bit_width(flip.kind)
        region = stats["by_region"][_region(flip.bit, width)]
        region[1] += 1
        time_bucket = stats["by_time"][record.injection_time]
        time_bucket[1] += 1
        if record.failed:
            stats["failures"] += 1
            region[0] += 1
            time_bucket[0] += 1
        if record.crashed:
            stats["crashes"] += 1

    variables = [
        VariablePropagation(
            variable=name,
            kind=stats["kind"],
            runs=stats["runs"],
            failures=stats["failures"],
            crashes=stats["crashes"],
            by_region={k: tuple(v) for k, v in stats["by_region"].items()},
            by_time={k: tuple(v) for k, v in stats["by_time"].items()},
        )
        for name, stats in sorted(per_variable.items())
    ]
    return PropagationReport(
        target=result.target_name,
        module=result.config.module,
        injection_location=str(result.config.injection_location),
        variables=variables,
    )

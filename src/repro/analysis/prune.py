"""Static injection-space pruning: prove injections dead or equivalent.

The exhaustive campaign loop runs variable x bit x time x test-case.
:func:`plan_prune` classifies every ``(variable, bit)`` injection
point *before the campaign runs*, using the dataflow verdicts of
:mod:`repro.analysis.dataflow` plus the golden runs' recorded values:

* **dead** -- the variable is never observed (dataflow ``dead``), or
  every observation channel maps the flipped value to the same output
  as the golden value (*observation-masked*): the run's outcome is
  the golden outcome by construction, so its record is synthesized
  from the golden run without executing anything;
* **equivalent** -- two or more bits of the same variable produce
  identical channel signatures across every (test case, injection
  time): one *representative* (the lowest bit) is injected for real
  and the *members'* records are synthesized from its outcomes;
* **live** -- everything else: injected exactly as before.

Soundness contract (the bit-identity contract of PRs 4-6, one layer
up): a pruned campaign's record list is **bit-identical** to the
exhaustive campaign's -- same canonical order, same ``to_dict()``
encoding of every record, including the raw corrupted value embedded
in same-probe samples (synthesis re-applies each member's own flip to
the golden value, never copies the representative's).  The **audit**
re-injects a seeded random sample of pruned cells for real and raises
:class:`PruneContradiction` on any mismatch, so a soundness bug in
the static analysis fails the campaign loudly instead of skewing the
mined detectors quietly.
"""

from __future__ import annotations

import dataclasses
import importlib
import math
import random
from collections.abc import Mapping

from repro.analysis.dataflow import ModuleDataflow, analyze_dataflow
from repro.analysis.dataflow.analyzer import analyze_dataflow_package
from repro.analysis.dataflow.lattice import signature
from repro.injection.bitflip import BitFlip, flip_bits_batch
from repro.injection.campaign import Campaign, CampaignConfig, ExperimentRecord
from repro.injection.golden import GoldenRun, golden_runs_for
from repro.injection.instrument import Probe, StateSample

__all__ = [
    "PointPlan",
    "PrunePlan",
    "PruneContradiction",
    "plan_prune",
    "prune_campaign",
    "assemble_records",
    "audit_records",
]

#: Verdicts that still execute for real.
EXECUTED_VERDICTS = ("live", "representative")
#: Verdicts whose records are synthesized.
PRUNED_VERDICTS = ("dead", "member")


class PruneContradiction(RuntimeError):
    """An audited pruned point's real outcome contradicted the plan."""


@dataclasses.dataclass(frozen=True)
class PointPlan:
    """Verdict and provenance for one (variable, bit) injection point."""

    variable: str
    kind: str
    bit: int
    verdict: str  # "live" | "dead" | "representative" | "member"
    reason: str
    class_id: str | None = None
    representative_bit: int | None = None

    def to_dict(self) -> dict:
        payload = {
            "variable": self.variable,
            "kind": self.kind,
            "bit": self.bit,
            "verdict": self.verdict,
            "reason": self.reason,
        }
        if self.class_id is not None:
            payload["class_id"] = self.class_id
        if self.representative_bit is not None:
            payload["representative_bit"] = self.representative_bit
        return payload


@dataclasses.dataclass
class PrunePlan:
    """Per-point verdicts for one campaign, in canonical pair order."""

    target_name: str
    config: CampaignConfig
    points: list[PointPlan]
    variable_reasons: dict[str, str]
    golden_runs: dict[int, GoldenRun] = dataclasses.field(
        default_factory=dict, repr=False
    )

    @property
    def runs_per_point(self) -> int:
        return len(self.config.injection_times) * len(self.config.test_cases)

    @property
    def counts(self) -> dict[str, int]:
        counts = {"live": 0, "dead": 0, "representative": 0, "member": 0}
        for point in self.points:
            counts[point.verdict] += 1
        return counts

    @property
    def pruned_fraction(self) -> float:
        if not self.points:
            return 0.0
        pruned = sum(1 for p in self.points if p.verdict in PRUNED_VERDICTS)
        return pruned / len(self.points)

    @property
    def runs_planned(self) -> int:
        return len(self.points) * self.runs_per_point

    @property
    def runs_executed(self) -> int:
        executed = sum(1 for p in self.points if p.verdict in EXECUTED_VERDICTS)
        return executed * self.runs_per_point

    @property
    def runs_pruned(self) -> int:
        return self.runs_planned - self.runs_executed

    def executed_pairs(self) -> list[tuple[str, str, int]]:
        """The (variable, kind, bit) pairs that still inject for real,
        in canonical order -- the exact shard-planner input."""
        return [
            (p.variable, p.kind, p.bit)
            for p in self.points
            if p.verdict in EXECUTED_VERDICTS
        ]

    def point(self, variable: str, bit: int) -> PointPlan | None:
        for p in self.points:
            if p.variable == variable and p.bit == bit:
                return p
        return None

    def to_dict(self) -> dict:
        return {
            "format": "repro.analysis.prune",
            "target": self.target_name,
            "config": self.config.to_dict(),
            "variables": dict(self.variable_reasons),
            "points": [p.to_dict() for p in self.points],
            "summary": {
                **self.counts,
                "runs_planned": self.runs_planned,
                "runs_executed": self.runs_executed,
                "runs_pruned": self.runs_pruned,
                "pruned_fraction": self.pruned_fraction,
            },
        }


def _dataflow_for_target(target) -> ModuleDataflow:
    """Dataflow report for the package defining ``target``'s class."""
    module = importlib.import_module(type(target).__module__)
    package = module.__package__ or module.__name__
    return analyze_dataflow_package(package)


def _golden_value(
    golden: GoldenRun, probe: Probe, occurrence: int, name: str
):
    """``(found, value)`` of one variable at one golden probe occurrence."""
    sample = golden.sample_at(probe, occurrence)
    if sample is not None and name in sample.variables:
        return True, sample.variables[name]
    return False, None


def _classify_variable(
    campaign: Campaign,
    spec,
    bits: tuple[int, ...],
    flow,
    golden_runs: dict[int, GoldenRun],
) -> tuple[list[PointPlan], str]:
    """PointPlans for one variable's bits, plus a provenance line."""
    config = campaign.config
    probe = config.injection_probe

    def all_live(reason: str) -> tuple[list[PointPlan], str]:
        points = [
            PointPlan(spec.name, spec.kind, bit, "live", reason) for bit in bits
        ]
        return points, f"live: {reason}"

    if flow is None:
        return all_live("no dataflow evidence for this probe")
    if flow.status == "live":
        return all_live(flow.reason or "raw value escapes")

    # Both dead and observed verdicts synthesize records, which is only
    # valid when the injection itself succeeds: the variable must be
    # present in the golden state at every injectable occurrence.
    cells: list[tuple[int, int]] = []  # (test_case, time) with injection
    for tc in config.test_cases:
        golden = golden_runs[tc]
        occurrences = len(golden.samples_at(probe))
        for t in config.injection_times:
            if t >= occurrences:
                continue
            found, _ = _golden_value(golden, probe, t, spec.name)
            if not found:
                return all_live(
                    f"absent from golden state at occurrence {t} "
                    f"(test case {tc})"
                )
            cells.append((tc, t))

    if flow.status == "dead":
        reason = flow.reason or "never observed"
        points = [
            PointPlan(spec.name, spec.kind, bit, "dead", reason) for bit in bits
        ]
        return points, f"dead: {reason}"

    # Observed: group bits by channel signature over every injected cell.
    channels = flow.channels
    signatures: dict[int, list[tuple]] = {bit: [] for bit in bits}
    golden_sig: list[tuple] = []
    for tc, t in cells:
        _, value = _golden_value(golden_runs[tc], probe, t, spec.name)
        base = signature(channels, value)
        if base is None:
            return all_live("channel evaluation failed on golden value")
        golden_sig.append(base)
        # One packed XOR flips the value across every bit position at
        # once (bit-identical to per-bit flip_bit; see bitflip.py).
        for bit, flipped in zip(bits, flip_bits_batch(value, spec.kind, bits)):
            sig = signature(channels, flipped)
            if sig is None:
                return all_live(
                    f"channel evaluation failed on bit {bit} flip"
                )
            signatures[bit].append(sig)
    frozen = {bit: tuple(signatures[bit]) for bit in bits}
    golden_key = tuple(golden_sig)

    groups: dict[tuple, list[int]] = {}
    for bit in bits:
        groups.setdefault(frozen[bit], []).append(bit)

    described = ", ".join(str(c) for c in channels[:3])
    if len(channels) > 3:
        described += f", ... ({len(channels)} total)"
    points_by_bit: dict[int, PointPlan] = {}
    class_index = 0
    n_dead = n_classes = 0
    for sig_key, group in sorted(
        groups.items(), key=lambda item: min(item[1])
    ):
        if sig_key == golden_key:
            n_dead += len(group)
            for bit in group:
                points_by_bit[bit] = PointPlan(
                    spec.name,
                    spec.kind,
                    bit,
                    "dead",
                    f"observation-masked on channels [{described}]",
                )
        elif len(group) >= 2:
            class_id = f"{config.module}@{config.injection_location}/{spec.name}/c{class_index}"
            class_index += 1
            n_classes += 1
            representative = min(group)
            points_by_bit[representative] = PointPlan(
                spec.name,
                spec.kind,
                representative,
                "representative",
                f"represents {len(group) - 1} equal-signature bit(s)",
                class_id=class_id,
            )
            for bit in group:
                if bit == representative:
                    continue
                points_by_bit[bit] = PointPlan(
                    spec.name,
                    spec.kind,
                    bit,
                    "member",
                    f"signature equal to bit {representative} on channels "
                    f"[{described}]",
                    class_id=class_id,
                    representative_bit=representative,
                )
        else:
            points_by_bit[group[0]] = PointPlan(
                spec.name,
                spec.kind,
                group[0],
                "live",
                "unique observation signature",
            )
    points = [points_by_bit[bit] for bit in bits]
    return points, (
        f"observed via {len(channels)} channel(s): {n_dead} masked bit(s), "
        f"{n_classes} equivalence class(es)"
    )


def plan_prune(
    campaign: Campaign,
    *,
    dataflow: ModuleDataflow | None = None,
    source: str | None = None,
    golden_runs: dict[int, GoldenRun] | None = None,
) -> PrunePlan:
    """Classify every injection point of ``campaign``.

    ``dataflow``/``source`` override how the target's code is found
    (defaults to analysing the package defining the target's class);
    ``golden_runs`` reuses already-captured golden runs.
    """
    config = campaign.config
    if dataflow is None:
        if source is not None:
            dataflow = analyze_dataflow(source, "<target>")
        else:
            dataflow = _dataflow_for_target(campaign.target)
    if golden_runs is None:
        golden_runs = golden_runs_for(campaign.target, config.test_cases)
    points: list[PointPlan] = []
    variable_reasons: dict[str, str] = {}
    for spec in campaign._targeted_specs():
        bits = campaign._bits_for(spec)
        flow = dataflow.flow(
            config.module, str(config.injection_location), spec.name
        )
        spec_points, reason = _classify_variable(
            campaign, spec, bits, flow, golden_runs
        )
        points.extend(spec_points)
        variable_reasons[spec.name] = reason
    return PrunePlan(
        target_name=campaign.target.name,
        config=config,
        points=points,
        variable_reasons=variable_reasons,
        golden_runs=golden_runs,
    )


def prune_campaign(
    config: CampaignConfig | Campaign,
    target=None,
    **kwargs,
) -> PrunePlan:
    """Public entry point: a :class:`PrunePlan` for one campaign.

    Accepts either a ready :class:`Campaign` or a
    :class:`CampaignConfig` plus the target system to run it against.
    Keyword arguments are forwarded to :func:`plan_prune`.
    """
    if isinstance(config, Campaign):
        return plan_prune(config, **kwargs)
    if target is None:
        raise TypeError("prune_campaign(config, target): target is required")
    return plan_prune(Campaign(target, config), **kwargs)


def _synthesize_dead(
    campaign: Campaign, flip: BitFlip, injection_time: int, test_case: int,
    golden: GoldenRun,
) -> ExperimentRecord:
    """Record of a dead injection, from the golden run alone.

    A dead flip leaves control flow and every downstream value exactly
    golden; the only divergence is the corrupted value itself inside a
    same-probe sample taken at the injection occurrence.
    """
    config = campaign.config
    injection_samples = golden.samples_at(config.injection_probe)
    injected = injection_time < len(injection_samples)
    chosen = next(
        (
            s
            for s in golden.samples_at(config.sample_probe)
            if s.occurrence >= injection_time
        ),
        None,
    )
    sample_state: StateSample | None = None
    sample: Mapping | None = None
    if chosen is not None:
        variables = dict(chosen.variables)
        if (
            injected
            and config.sample_probe == config.injection_probe
            and chosen.occurrence == injection_time
        ):
            variables[flip.variable] = flip.apply(variables[flip.variable])
        sample_state = StateSample(chosen.probe, chosen.occurrence, variables)
        sample = variables
    return ExperimentRecord(
        test_case=test_case,
        flip=flip,
        injection_time=injection_time,
        sample=sample,
        failed=campaign.target.is_failure(golden.output, golden.output),
        crashed=False,
        temporal_impact=max(0, len(injection_samples) - injection_time),
        deviated=campaign._deviated(golden, sample_state),
    )


def _synthesize_member(
    campaign: Campaign,
    flip: BitFlip,
    injection_time: int,
    golden: GoldenRun,
    representative: ExperimentRecord,
) -> ExperimentRecord:
    """Record of an equivalence-class member from its representative.

    Equal channel signatures make the runs byte-for-byte identical
    except for the raw corrupted value inside a same-probe sample at
    the injection occurrence, which is re-derived by applying the
    member's own flip to the golden value.
    """
    config = campaign.config
    injection_samples = golden.samples_at(config.injection_probe)
    injected = injection_time < len(injection_samples)
    sample = representative.sample
    deviated = representative.deviated
    if (
        sample is not None
        and injected
        and config.sample_probe == config.injection_probe
    ):
        # The first sample at/after the injection time of the injection
        # probe is the injection occurrence itself (pre-injection flow
        # is fault-free, so the run reaches it exactly as golden did).
        found, golden_value = _golden_value(
            golden, config.injection_probe, injection_time, flip.variable
        )
        variables = dict(sample)
        if found:
            variables[flip.variable] = flip.apply(golden_value)
        sample = variables
        sample_state = StateSample(
            config.sample_probe, injection_time, variables
        )
        deviated = campaign._deviated(golden, sample_state)
    return ExperimentRecord(
        test_case=representative.test_case,
        flip=flip,
        injection_time=injection_time,
        sample=sample,
        failed=representative.failed,
        crashed=representative.crashed,
        temporal_impact=representative.temporal_impact,
        deviated=deviated,
    )


def assemble_records(
    campaign: Campaign,
    plan: PrunePlan,
    executed: dict[tuple[str, int], list[ExperimentRecord]],
) -> list[ExperimentRecord]:
    """Merge executed and synthesized records in canonical order.

    ``executed`` maps ``(variable, bit)`` of every live/representative
    point to its records in (injection time, test case) order -- the
    shard execution order, so pruned and exhaustive campaigns emit
    their record lists in the identical canonical order.
    """
    config = campaign.config
    records: list[ExperimentRecord] = []
    for point in plan.points:
        flip = BitFlip(point.variable, point.kind, point.bit)
        if point.verdict in EXECUTED_VERDICTS:
            records.extend(executed[(point.variable, point.bit)])
            continue
        if point.verdict == "dead":
            for injection_time in config.injection_times:
                for tc in config.test_cases:
                    records.append(
                        _synthesize_dead(
                            campaign, flip, injection_time, tc,
                            plan.golden_runs[tc],
                        )
                    )
            continue
        rep_records = executed[(point.variable, point.representative_bit)]
        index = 0
        for injection_time in config.injection_times:
            for tc in config.test_cases:
                records.append(
                    _synthesize_member(
                        campaign,
                        flip,
                        injection_time,
                        plan.golden_runs[tc],
                        rep_records[index],
                    )
                )
                index += 1
    return records


def audit_records(
    campaign: Campaign,
    plan: PrunePlan,
    records: list[ExperimentRecord],
    fraction: float,
    seed: int = 0,
) -> dict:
    """Re-inject a seeded random sample of pruned cells for real.

    ``records`` is the assembled record list (aligned with
    ``plan.points`` x times x test cases).  Every audited cell's real
    record must match the synthesized one exactly (``to_dict()``
    equality -- float bits included); any mismatch raises
    :class:`PruneContradiction` naming the offending points.
    """
    config = campaign.config
    times = config.injection_times
    test_cases = config.test_cases
    runs_per_point = len(times) * len(test_cases)
    cells = [
        (point_index, time_index, case_index)
        for point_index, point in enumerate(plan.points)
        if point.verdict in PRUNED_VERDICTS
        for time_index in range(len(times))
        for case_index in range(len(test_cases))
    ]
    sample_size = 0
    if cells and fraction > 0:
        sample_size = min(len(cells), max(1, math.ceil(fraction * len(cells))))
    rng = random.Random(seed)
    chosen = sorted(rng.sample(cells, sample_size))
    contradictions: list[str] = []
    for point_index, time_index, case_index in chosen:
        point = plan.points[point_index]
        injection_time = times[time_index]
        tc = test_cases[case_index]
        flip = BitFlip(point.variable, point.kind, point.bit)
        actual = campaign._run_one(
            flip, injection_time, tc, plan.golden_runs[tc]
        )
        synthesized = records[
            point_index * runs_per_point
            + time_index * len(test_cases)
            + case_index
        ]
        if actual.to_dict() != synthesized.to_dict():
            contradictions.append(
                f"{point.variable}[bit {point.bit}] t={injection_time} "
                f"tc={tc} ({point.verdict}: {point.reason})"
            )
    if contradictions:
        raise PruneContradiction(
            "static prune verdicts contradicted by re-injection: "
            + "; ".join(contradictions)
        )
    return {
        "population": len(cells),
        "audited": len(chosen),
        "fraction": fraction,
        "seed": seed,
        "contradictions": 0,
    }

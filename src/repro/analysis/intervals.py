"""Interval abstract domain for the predicate algebra.

Every atom of the core algebra constrains one variable to a set of
*defined, non-NaN* values of a fixed shape:

* ``x <= c``  ->  ``[-inf, c]``
* ``x > c``   ->  ``(c, +inf]``
* ``x == c``  ->  ``{c}``
* ``x != c``  ->  everything except ``{c}``

Intersections of these stay of the form *(open lower bound, closed
upper bound] minus a finite set of excluded points, or a single point*,
so :class:`Constraint` represents exactly that and is closed under
:meth:`Constraint.intersect`.  Definedness is implicit: a constraint
describes the values a variable may take **given that every atom that
produced it evaluated true**, which in this algebra already implies the
variable is present and not NaN.  The checker in
:mod:`repro.analysis.simplify` leans on that: a rewrite justified by
``a ⊆ b`` is sound for missing/NaN states too, because the subset
relation is only ever used where the stronger side's atoms are known to
have fired.

Infinite bounds are inclusive of their infinity (``x <= c`` admits
``-inf``; ``x > c`` admits ``+inf``), matching IEEE comparison results
on state values, while comparison constants themselves are always
finite (enforced by :class:`repro.core.predicate.Comparison`).
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.predicate import Comparison

__all__ = ["Constraint", "atom_constraint"]

_INF = math.inf


@dataclasses.dataclass(frozen=True)
class Constraint:
    """A representable set of defined values for one variable.

    Exactly one of three shapes:

    * ``empty=True`` -- the empty set (an unsatisfiable conjunction);
    * ``eq`` set -- the single point ``{eq}``;
    * otherwise -- the interval ``(lo, hi]`` minus ``excluded`` (with
      ``lo=-inf`` meaning unbounded below *inclusive* of ``-inf`` and
      ``hi=+inf`` unbounded above inclusive of ``+inf``).
    """

    lo: float = -_INF
    hi: float = _INF
    eq: float | None = None
    excluded: frozenset[float] = frozenset()
    empty: bool = False

    # -- constructors --------------------------------------------------
    @classmethod
    def full(cls) -> "Constraint":
        return cls()

    @classmethod
    def none(cls) -> "Constraint":
        return cls(empty=True)

    @classmethod
    def point(cls, value: float) -> "Constraint":
        return cls(eq=value)

    # -- predicates ----------------------------------------------------
    @property
    def is_full(self) -> bool:
        return (
            not self.empty
            and self.eq is None
            and self.lo == -_INF
            and self.hi == _INF
            and not self.excluded
        )

    def contains_value(self, value: float) -> bool:
        """Membership of one defined, non-NaN value."""
        if self.empty or math.isnan(value):
            return False
        if self.eq is not None:
            return value == self.eq
        if self.lo != -_INF and not value > self.lo:
            return False
        if not value <= self.hi:
            return False
        return value not in self.excluded

    def subset_of(self, other: "Constraint") -> bool:
        """Provable ``self ⊆ other`` (sound, and complete for this
        representation)."""
        if self.empty:
            return True
        if other.empty:
            return False
        if self.eq is not None:
            return other.contains_value(self.eq)
        if other.eq is not None:
            return False  # a non-degenerate interval is never a point
        if other.lo != -_INF and (self.lo == -_INF or self.lo < other.lo):
            return False
        if self.hi > other.hi:
            return False
        # Every point other excludes must be absent from self too.
        return all(not self.contains_value(e) for e in other.excluded)

    # -- operations ----------------------------------------------------
    def intersect(self, other: "Constraint") -> "Constraint":
        if self.empty or other.empty:
            return Constraint.none()
        if self.eq is not None:
            return self if other.contains_value(self.eq) else Constraint.none()
        if other.eq is not None:
            return other if self.contains_value(other.eq) else Constraint.none()
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo != -_INF and lo >= hi:
            return Constraint.none()
        excluded = frozenset(
            e
            for e in self.excluded | other.excluded
            if (lo == -_INF or e > lo) and e <= hi
        )
        return Constraint(lo=lo, hi=hi, excluded=excluded)

    def union(self, other: "Constraint") -> "Constraint | None":
        """The union, when it is representable -- else ``None``.

        Only plain intervals (no point, no exclusions) that overlap or
        touch merge; and a full-range union is deliberately reported as
        unrepresentable: ``x <= c  OR  x > c`` is *not* TRUE (it is a
        definedness test -- false for missing/NaN ``x``), and the
        algebra cannot express "x is defined" without a bound.
        """
        if self.empty:
            return other
        if other.empty:
            return self
        if self.eq is not None or other.eq is not None:
            return None
        if self.excluded or other.excluded:
            return None
        if max(self.lo, other.lo) > min(self.hi, other.hi):
            return None  # disjoint with a gap
        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        if lo == -_INF and hi == _INF:
            return None  # full range: not expressible (definedness)
        return Constraint(lo=lo, hi=hi)

    # -- rendering -----------------------------------------------------
    def atoms(self, variable: str) -> list[Comparison]:
        """A minimal atom conjunction denoting this constraint.

        Undefined for the empty constraint (the caller should have
        rewritten the clause to FALSE) and for the full constraint
        (no atoms needed -- but note a variable with *no* atoms also
        drops the implicit definedness requirement, so callers only
        reach this for constraints produced by at least one atom,
        which are never full).
        """
        if self.empty:
            raise ValueError("empty constraint has no atom form")
        if self.eq is not None:
            return [Comparison(variable, "==", self.eq)]
        out: list[Comparison] = []
        if self.lo != -_INF:
            out.append(Comparison(variable, ">", self.lo))
        if self.hi != _INF:
            out.append(Comparison(variable, "<=", self.hi))
        for e in sorted(self.excluded):
            out.append(Comparison(variable, "!=", e))
        if not out:
            raise ValueError(
                "full constraint has no atom form (definedness is implicit)"
            )
        return out

    def __str__(self) -> str:
        if self.empty:
            return "{}"
        if self.eq is not None:
            return f"{{{self.eq:g}}}"
        lo = "-inf" if self.lo == -_INF else f"{self.lo:g}"
        hi = "+inf" if self.hi == _INF else f"{self.hi:g}"
        body = f"({lo}, {hi}]"
        if self.excluded:
            pts = ", ".join(f"{e:g}" for e in sorted(self.excluded))
            body += f" \\ {{{pts}}}"
        return body


def atom_constraint(atom: Comparison) -> Constraint:
    """The constraint one atom places on its variable when it fires."""
    if atom.op == "<=":
        return Constraint(hi=atom.value)
    if atom.op == ">":
        return Constraint(lo=atom.value)
    if atom.op == "==":
        return Constraint.point(atom.value)
    return Constraint(excluded=frozenset((atom.value,)))

"""Abstract-interpretation checker and simplifier for predicates.

The mining pipeline reads detectors off decision trees and rule sets;
the resulting predicates routinely carry atoms that interval reasoning
can discharge: conjunctions whose bounds contradict each other
(unsatisfiable clauses), atoms implied by an enclosing conjunction
(context tautologies), disjunction branches implied by a sibling
(subsumed), and pairs of branches whose intervals abut and merge.  This
module walks the algebra with an interval environment per variable
(:mod:`repro.analysis.intervals`) and emits a canonical, provably
equivalent predicate with fewer atoms, plus a verdict trail saying what
was discharged and why -- the raw material for the lint rules in
:mod:`repro.analysis.lint`.

Equivalence is over *all* states, including states where variables are
missing or NaN: every rewrite is justified by an implication between
atoms on the same variables, so the algebra's "comparisons on missing
variables are false" semantics are preserved (see the hypothesis
property test in ``tests/analysis/test_simplify.py``, and the compiler
self-check, which re-verifies each simplified predicate against the
original at lowering time).

Atoms outside the core algebra (ordering invariants, majority votes,
user subclasses) are treated as opaque: they are kept in place and
never reasoned about.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping

from repro.analysis.intervals import Constraint, atom_constraint
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = [
    "ClauseVerdict",
    "SimplificationResult",
    "simplify_predicate",
    "check_predicate",
]

_Env = Mapping[str, Constraint]


@dataclasses.dataclass(frozen=True)
class ClauseVerdict:
    """One discharged (or diagnosed) clause.

    ``status`` is one of:

    * ``"unsatisfiable"`` -- a conjunction whose constraints have empty
      intersection; rewritten to FALSE;
    * ``"tautological"`` -- an atom or branch implied by its context;
      rewritten to TRUE (and absorbed);
    * ``"subsumed"`` -- a disjunction branch implied by a sibling
      branch; dropped;
    * ``"merged"`` -- two branches whose intervals abut; fused;
    * ``"redundant"`` -- atoms on one variable collapsed to a tighter,
      smaller set;
    * ``"vacuous"`` -- a disjunction that covers every *defined* value
      of a variable (e.g. ``x <= 5 OR x > 5``): not rewritten (it is a
      definedness test, not TRUE), but worth a lint warning.
    """

    status: str
    clause: str
    detail: str = ""


@dataclasses.dataclass
class SimplificationResult:
    """Outcome of one simplification pass."""

    original: Predicate
    simplified: Predicate
    verdicts: list[ClauseVerdict]

    @property
    def atoms_before(self) -> int:
        return self.original.complexity()

    @property
    def atoms_after(self) -> int:
        return self.simplified.complexity()

    @property
    def changed(self) -> bool:
        return self.atoms_after < self.atoms_before

    def verdicts_with(self, status: str) -> list[ClauseVerdict]:
        return [v for v in self.verdicts if v.status == status]


_CORE = (Comparison, And, Or, TruePredicate, FalsePredicate)

# Canonical atom ordering inside a conjunction: lower bound, upper
# bound, equality, exclusions -- reads like an interval.
_OP_ORDER = {">": 0, "<=": 1, "==": 2, "!=": 3}


class _Simplifier:
    def __init__(self) -> None:
        self.verdicts: list[ClauseVerdict] = []

    def _note(self, status: str, clause: object, detail: str = "") -> None:
        self.verdicts.append(ClauseVerdict(status, str(clause), detail))

    # ------------------------------------------------------------------
    def simplify(self, predicate: Predicate, env: _Env) -> Predicate:
        if isinstance(predicate, (TruePredicate, FalsePredicate)):
            return predicate
        if isinstance(predicate, Comparison):
            return self._atom(predicate, env)
        if isinstance(predicate, And):
            return self._conjunction(predicate, env)
        if isinstance(predicate, Or):
            return self._disjunction(predicate, env)
        # Opaque atom: its own simplify() is equivalence-preserving by
        # the Predicate contract; interval reasoning does not apply.
        return predicate.simplify()

    # -- atoms ---------------------------------------------------------
    def _atom(self, atom: Comparison, env: _Env) -> Predicate:
        context = env.get(atom.variable)
        if context is None:
            return atom
        constraint = atom_constraint(atom)
        if context.subset_of(constraint):
            # Context atoms fired => variable defined and inside a set
            # this atom accepts: the atom is true whenever it matters.
            self._note("tautological", atom, "implied by enclosing conjunction")
            return TruePredicate()
        if context.intersect(constraint).empty:
            self._note(
                "unsatisfiable", atom, "contradicts enclosing conjunction"
            )
            return FalsePredicate()
        return atom

    # -- conjunctions --------------------------------------------------
    def _conjunction(self, conj: And, env: _Env) -> Predicate:
        atoms: list[Comparison] = []
        opaque: list[Predicate] = []
        compounds: list[Predicate] = []
        pending = list(conj.children)
        while pending:
            raw = pending.pop(0)
            if isinstance(raw, Or):
                # Deferred: disjunction children are simplified once,
                # below, under the conjunction's full environment.
                compounds.append(raw)
                continue
            child = self.simplify(raw, env)
            if isinstance(child, FalsePredicate):
                return FalsePredicate()
            if isinstance(child, TruePredicate):
                continue
            if isinstance(child, And):
                pending = list(child.children) + pending
            elif isinstance(child, Comparison):
                atoms.append(child)
            elif isinstance(child, Or):
                compounds.append(child)
            else:
                opaque.append(child)

        # Fold this conjunction's atoms into per-variable constraints.
        local: dict[str, Constraint] = {}
        order: list[str] = []
        for atom in atoms:
            if atom.variable not in local:
                local[atom.variable] = Constraint.full()
                order.append(atom.variable)
            local[atom.variable] = local[atom.variable].intersect(
                atom_constraint(atom)
            )
        labels = {
            (a.variable, a.op, a.value): a.label
            for a in atoms
            if a.label is not None
        }
        for variable in order:
            combined = local[variable].intersect(
                env.get(variable, Constraint.full())
            )
            if combined.empty:
                self._note(
                    "unsatisfiable",
                    conj,
                    f"no value of {variable!r} satisfies the clause",
                )
                return FalsePredicate()

        emitted: list[Comparison] = []
        for variable in sorted(order):
            for atom in local[variable].atoms(variable):
                label = labels.get((atom.variable, atom.op, atom.value))
                if label is not None:
                    atom = dataclasses.replace(atom, label=label)
                emitted.append(atom)
        if len(emitted) < len(atoms):
            self._note(
                "redundant",
                conj,
                f"{len(atoms)} atoms collapse to {len(emitted)}",
            )

        # Re-simplify compound children under the tightened environment
        # so branches contradicting (or implied by) the siblings fold.
        inner_env = dict(env)
        for variable in order:
            inner_env[variable] = local[variable].intersect(
                env.get(variable, Constraint.full())
            )
        children: list[Predicate] = list(emitted)
        for compound in compounds:
            again = self.simplify(compound, inner_env)
            if isinstance(again, FalsePredicate):
                return FalsePredicate()
            if isinstance(again, TruePredicate):
                continue
            if isinstance(again, And):
                # A disjunction may collapse to a conjunction (single
                # branch); splice its atoms in without re-deriving the
                # environment -- correctness does not need a fixpoint.
                children.extend(again.children)
            else:
                children.append(again)
        children.extend(opaque)
        if not children:
            return TruePredicate()
        if len(children) == 1:
            return children[0]
        return And(children)

    # -- disjunctions --------------------------------------------------
    def _disjunction(self, disj: Or, env: _Env) -> Predicate:
        branches: list[Predicate] = []
        pending = list(disj.children)
        while pending:
            child = self.simplify(pending.pop(0), env)
            if isinstance(child, TruePredicate):
                self._note("tautological", disj, "a branch is always true")
                return TruePredicate()
            if isinstance(child, FalsePredicate):
                continue
            if isinstance(child, Or):
                pending = list(child.children) + pending
            else:
                branches.append(child)
        if not branches:
            return FalsePredicate()

        branches = self._prune_branches(branches)
        self._diagnose_vacuous(branches)
        if len(branches) == 1:
            return branches[0]
        return Or(sorted(branches, key=str))

    def _prune_branches(self, branches: list[Predicate]) -> list[Predicate]:
        """Drop duplicate/subsumed branches; merge abutting intervals."""
        tables = [_branch_table(b) for b in branches]
        changed = True
        while changed:
            changed = False
            # Subsumption (covers exact duplicates too): drop branch i
            # when some sibling j is implied by it.
            for i in range(len(branches)):
                for j in range(len(branches)):
                    if i == j or branches[i] is None or branches[j] is None:
                        continue
                    if _implies(tables[i], tables[j]):
                        self._note(
                            "subsumed",
                            branches[i],
                            f"implied by sibling branch {branches[j]}",
                        )
                        branches[i] = None
                        changed = True
                        break
            # Interval merging: two branches equal on every variable
            # but one, whose constraints union into a representable
            # interval, fuse into a single branch.
            for i in range(len(branches)):
                for j in range(i + 1, len(branches)):
                    if branches[i] is None or branches[j] is None:
                        continue
                    merged = _merge_tables(tables[i], tables[j])
                    if merged is None:
                        continue
                    fused = _table_predicate(merged)
                    self._note(
                        "merged",
                        Or([branches[i], branches[j]]),
                        f"fused into {fused}",
                    )
                    branches[i] = fused
                    tables[i] = merged
                    branches[j] = None
                    changed = True
        return [b for b in branches if b is not None]

    def _diagnose_vacuous(self, branches: list[Predicate]) -> None:
        """Warn when sibling branches cover every defined value."""
        by_variable: dict[str, list[Constraint]] = {}
        for branch in branches:
            table = _branch_table(branch)
            if table is not None and len(table) == 1:
                ((variable, constraint),) = table.items()
                by_variable.setdefault(variable, []).append(constraint)
        for variable, constraints in by_variable.items():
            for i in range(len(constraints)):
                for j in range(i + 1, len(constraints)):
                    if _covers_full(constraints[i], constraints[j]):
                        self._note(
                            "vacuous",
                            Or(branches),
                            f"branches cover every defined value of "
                            f"{variable!r}; the disjunction only tests "
                            "definedness",
                        )
                        return


def _covers_full(a: Constraint, b: Constraint) -> bool:
    """Two interval constraints whose union is the whole real line."""
    if a.empty or b.empty or a.eq is not None or b.eq is not None:
        return False
    if a.excluded or b.excluded:
        return False
    return (
        min(a.lo, b.lo) == -math.inf
        and max(a.hi, b.hi) == math.inf
        and max(a.lo, b.lo) <= min(a.hi, b.hi)
    )


def _branch_table(branch: Predicate) -> dict[str, Constraint] | None:
    """Per-variable constraints of a pure conjunctive branch.

    ``None`` when the branch contains anything but core atoms (opaque
    atoms, nested disjunctions) -- such branches are kept verbatim.
    """
    if isinstance(branch, Comparison):
        return {branch.variable: atom_constraint(branch)}
    if not isinstance(branch, And):
        return None
    table: dict[str, Constraint] = {}
    for child in branch.children:
        if not isinstance(child, Comparison):
            return None
        table[child.variable] = table.get(
            child.variable, Constraint.full()
        ).intersect(atom_constraint(child))
    return table


def _implies(
    stronger: dict[str, Constraint] | None,
    weaker: dict[str, Constraint] | None,
) -> bool:
    """Branch implication: every state satisfying ``stronger`` satisfies
    ``weaker`` (definedness included: weaker's variables must all be
    constrained -- hence defined -- under stronger)."""
    if stronger is None or weaker is None:
        return False
    for variable, constraint in weaker.items():
        mine = stronger.get(variable)
        if mine is None or not mine.subset_of(constraint):
            return False
    return True


def _merge_tables(
    a: dict[str, Constraint] | None, b: dict[str, Constraint] | None
) -> dict[str, Constraint] | None:
    """Fuse two branch tables differing on exactly one variable."""
    if a is None or b is None or set(a) != set(b) or not a:
        return None
    differing = [v for v in a if a[v] != b[v]]
    if len(differing) != 1:
        return None
    variable = differing[0]
    union = a[variable].union(b[variable])
    if union is None:
        return None
    merged = dict(a)
    merged[variable] = union
    return merged


def _table_predicate(table: dict[str, Constraint]) -> Predicate:
    atoms: list[Comparison] = []
    for variable in sorted(table):
        atoms.extend(table[variable].atoms(variable))
    if len(atoms) == 1:
        return atoms[0]
    return And(atoms)


def simplify_predicate(predicate: Predicate) -> SimplificationResult:
    """Run the checker and return the canonical simplified predicate.

    The result is provably equivalent to the input on every state
    (missing and NaN variables included), never has more atoms, and is
    a fixed point of the checker (simplifying it again is a no-op).
    """
    worker = _Simplifier()
    simplified = worker.simplify(predicate, {})
    # Splicing a collapsed disjunction into its parent conjunction can
    # leave atoms a later walk would fold, so iterate to the fixed
    # point; the atom count is non-increasing, the walk deterministic,
    # and real predicates settle in one or two passes (the cap only
    # guards against a rewrite cycle ever being introduced).
    for _ in range(8):
        again = worker.simplify(simplified, {})
        if again == simplified:
            break
        simplified = again
    verdicts: list[ClauseVerdict] = []
    seen: set[ClauseVerdict] = set()
    for verdict in worker.verdicts:
        if verdict not in seen:
            seen.add(verdict)
            verdicts.append(verdict)
    return SimplificationResult(predicate, simplified, verdicts)


def check_predicate(predicate: Predicate) -> list[ClauseVerdict]:
    """The verdict trail alone (see :class:`ClauseVerdict`)."""
    return simplify_predicate(predicate).verdicts

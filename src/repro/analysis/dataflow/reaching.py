"""Reaching definitions, def-use chains and liveness over a CFG.

Classic forward/backward worklist fixpoints, tuned for soundness in
the pruning direction: kills are applied *strongly* only where the
CFG guarantees the assignment executes whenever the node is passed
(``CFGNode.weak`` is clear); everywhere else definitions merely
accumulate.  Over-approximated reaching sets attribute extra uses to
a definition, which can only ever make the downstream analysis
*refuse* to prune -- never prune wrongly.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.analysis.dataflow.cfg import CFG

__all__ = [
    "Definition",
    "definitions_of",
    "uses_of",
    "reaching_definitions",
    "def_use_chains",
    "live_variables",
]


@dataclasses.dataclass(frozen=True)
class Definition:
    """One binding of a local name at one CFG node.

    ``value`` is the bound expression when the binding is a simple
    single-target assignment (``name = expr`` / walrus), else ``None``
    (AST nodes hash and compare by identity, which is exactly right:
    each definition is created once per analysis).
    """

    name: str
    node: int
    line: int
    value: ast.expr | None = None


def _target_names(target: ast.expr) -> list[ast.Name]:
    """Plain-name binding targets within an assignment target."""
    names: list[ast.Name] = []
    if isinstance(target, ast.Name):
        names.append(target)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.extend(_target_names(target.value))
    # Attribute/Subscript stores bind no local.
    return names


def definitions_of(cfg: CFG) -> dict[int, tuple[Definition, ...]]:
    """Definitions generated at each CFG node."""
    out: dict[int, tuple[Definition, ...]] = {}
    for node in cfg.nodes:
        defs: list[Definition] = []
        if node.kind == "entry":
            args = cfg.function.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *([args.vararg] if args.vararg else []),
                *args.kwonlyargs,
                *([args.kwarg] if args.kwarg else []),
            ):
                defs.append(Definition(arg.arg, node.index, arg.lineno))
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            simple = len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name)
            for target in stmt.targets:
                for name in _target_names(target):
                    defs.append(
                        Definition(
                            name.id,
                            node.index,
                            name.lineno,
                            stmt.value if simple else None,
                        )
                    )
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                defs.append(
                    Definition(
                        stmt.target.id, node.index, stmt.target.lineno, stmt.value
                    )
                )
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                defs.append(
                    Definition(stmt.target.id, node.index, stmt.target.lineno)
                )
        elif isinstance(stmt, ast.For):
            for name in _target_names(stmt.target):
                defs.append(Definition(name.id, node.index, name.lineno))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        defs.append(Definition(name.id, node.index, name.lineno))
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                defs.append(Definition(stmt.name, node.index, stmt.lineno))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs.append(Definition(stmt.name, node.index, stmt.lineno))
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                defs.append(Definition(bound, node.index, stmt.lineno))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in _target_names(target):
                    defs.append(Definition(name.id, node.index, name.lineno))
        # Walrus bindings anywhere in the node's evaluated parts.
        for part in node.parts:
            for sub in ast.walk(part):
                if isinstance(sub, ast.NamedExpr) and isinstance(
                    sub.target, ast.Name
                ):
                    defs.append(
                        Definition(
                            sub.target.id, node.index, sub.target.lineno, sub.value
                        )
                    )
        out[node.index] = tuple(defs)
    return out


def uses_of(cfg: CFG) -> dict[int, tuple[ast.Name, ...]]:
    """Name loads evaluated at each CFG node.

    Augmented-assignment targets read their old value, so they count
    as uses even though their AST context is ``Store``.
    """
    out: dict[int, tuple[ast.Name, ...]] = {}
    for node in cfg.nodes:
        loads: list[ast.Name] = []
        for part in node.parts:
            for sub in ast.walk(part):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    loads.append(sub)
        stmt = node.stmt
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            loads.append(stmt.target)
        out[node.index] = tuple(loads)
    return out


def reaching_definitions(
    cfg: CFG, defs: dict[int, tuple[Definition, ...]] | None = None
) -> dict[int, frozenset[Definition]]:
    """IN set of each node: definitions that may reach its evaluation."""
    if defs is None:
        defs = definitions_of(cfg)
    strong_kills: dict[int, frozenset[str]] = {}
    for node in cfg.nodes:
        if node.weak or node.kind in ("loop", "except"):
            strong_kills[node.index] = frozenset()
        else:
            strong_kills[node.index] = frozenset(d.name for d in defs[node.index])
    ins: dict[int, set[Definition]] = {n.index: set() for n in cfg.nodes}
    outs: dict[int, set[Definition]] = {n.index: set() for n in cfg.nodes}
    worklist = [n.index for n in cfg.nodes]
    while worklist:
        index = worklist.pop()
        node = cfg.nodes[index]
        new_in: set[Definition] = set()
        for pred in node.pred:
            new_in |= outs[pred]
        ins[index] = new_in
        killed = strong_kills[index]
        new_out = {d for d in new_in if d.name not in killed}
        new_out.update(defs[index])
        if new_out != outs[index]:
            outs[index] = new_out
            worklist.extend(node.succ)
    return {index: frozenset(values) for index, values in ins.items()}


def def_use_chains(
    cfg: CFG,
    defs: dict[int, tuple[Definition, ...]] | None = None,
    reaching: dict[int, frozenset[Definition]] | None = None,
) -> dict[Definition, tuple[tuple[int, ast.Name], ...]]:
    """Uses attributed to each definition.

    A use is attributed to every same-named definition in the node's
    IN set *and* to same-named definitions generated at the node
    itself (walrus/self-referencing statements evaluate their loads in
    the same node).  Over-attribution is the sound direction: it adds
    observations, never hides them.
    """
    if defs is None:
        defs = definitions_of(cfg)
    if reaching is None:
        reaching = reaching_definitions(cfg, defs)
    uses = uses_of(cfg)
    chains: dict[Definition, list[tuple[int, ast.Name]]] = {
        d: [] for per_node in defs.values() for d in per_node
    }
    for node in cfg.nodes:
        candidates = reaching[node.index] | set(defs[node.index])
        by_name: dict[str, list[Definition]] = {}
        for definition in candidates:
            by_name.setdefault(definition.name, []).append(definition)
        for name_node in uses[node.index]:
            for definition in by_name.get(name_node.id, ()):
                chains[definition].append((node.index, name_node))
    return {d: tuple(items) for d, items in chains.items()}


def live_variables(cfg: CFG) -> dict[int, frozenset[str]]:
    """Live-in set of each node (names whose value may still be read)."""
    defs = definitions_of(cfg)
    uses = uses_of(cfg)
    live_in: dict[int, set[str]] = {n.index: set() for n in cfg.nodes}
    live_out: dict[int, set[str]] = {n.index: set() for n in cfg.nodes}
    worklist = [n.index for n in cfg.nodes]
    while worklist:
        index = worklist.pop()
        node = cfg.nodes[index]
        out = set()
        for succ in node.succ:
            out |= live_in[succ]
        live_out[index] = out
        strong = (
            frozenset()
            if node.weak or node.kind in ("loop", "except")
            else {d.name for d in defs[index]}
        )
        new_in = {u.id for u in uses[index]} | (out - strong)
        if new_in != live_in[index]:
            live_in[index] = new_in
            worklist.extend(node.pred)
    return {index: frozenset(values) for index, values in live_in.items()}

"""Shared probe-site discovery for surface and dataflow analysis.

Both :mod:`repro.analysis.surface` and
:mod:`repro.analysis.dataflow.analyzer` need the same AST walk: find
every ``harness.probe("Module", Location.X, {...})`` call site inside
a target function, recover the (module, location) key, the dict
literal's variable names, and the local the returned state dict is
bound to.  This module is that walk, extracted so the two analyses
cannot drift apart.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
import inspect
import pkgutil
import types
from collections.abc import Iterator

__all__ = [
    "ProbeSite",
    "FunctionProbe",
    "probe_parts",
    "dict_keys",
    "function_probes",
    "module_functions",
    "iter_target_sources",
]


@dataclasses.dataclass(frozen=True)
class ProbeSite:
    """One ``harness.probe(module, location, {...})`` call site."""

    module: str
    location: str  # "entry" | "exit"
    line: int
    state_name: str | None  # name the returned dict is bound to
    variables: tuple[str, ...]

    @property
    def result_discarded(self) -> bool:
        """The returned (possibly corrupted) state is never bound, so
        injections at this probe cannot reach the module."""
        return self.state_name is None

    def __str__(self) -> str:
        return f"{self.module}@{self.location} (line {self.line})"


@dataclasses.dataclass(frozen=True)
class FunctionProbe:
    """A probe site paired with the function AST that contains it.

    ``assign`` is the ``ast.Assign`` statement binding the returned
    state (``None`` when the result is discarded) -- the dataflow
    analyzer uses it to identify the state dict's defining node in the
    function's CFG.
    """

    site: ProbeSite
    function: ast.FunctionDef | ast.AsyncFunctionDef
    assign: ast.stmt | None


def probe_parts(call: ast.Call) -> tuple[str, str, ast.expr] | None:
    """Match ``<anything>.probe("Module", Location.X, state_expr)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "probe"):
        return None
    if len(call.args) != 3:
        return None
    module_arg, location_arg, state_arg = call.args
    if not (isinstance(module_arg, ast.Constant) and isinstance(module_arg.value, str)):
        return None
    if isinstance(location_arg, ast.Attribute):
        location = location_arg.attr.lower()
    elif isinstance(location_arg, ast.Constant) and isinstance(location_arg.value, str):
        location = location_arg.value.lower()
    else:
        return None
    if location not in ("entry", "exit"):
        return None
    return module_arg.value, location, state_arg


def dict_keys(expression: ast.expr) -> tuple[str, ...] | None:
    """String keys of a dict literal, or ``None`` for any other shape."""
    if not isinstance(expression, ast.Dict):
        return None
    keys: list[str] = []
    for key in expression.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return tuple(keys)


def function_probes(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[FunctionProbe]:
    """Probe call sites directly inside one function body."""
    probes: list[FunctionProbe] = []
    for node in ast.walk(function):
        call: ast.Call | None = None
        state_name: str | None = None
        assign: ast.stmt | None = None
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                state_name = node.targets[0].id
                assign = node
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
        if call is None:
            continue
        parts = probe_parts(call)
        if parts is None:
            continue
        module, location, state_arg = parts
        variables = dict_keys(state_arg) or ()
        probes.append(
            FunctionProbe(
                ProbeSite(
                    module=module,
                    location=location,
                    line=call.lineno,
                    state_name=state_name,
                    variables=variables,
                ),
                function,
                assign,
            )
        )
    return probes


def module_functions(
    tree: ast.AST,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in a parsed module, outer-first."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def iter_target_sources(
    package: str | types.ModuleType,
) -> Iterator[tuple[str, str]]:
    """Yield ``(module_name, source)`` for a target package or module.

    ``package`` is a dotted name (``"repro.targets.flightgear"``, or
    the shorthand ``"flightgear"``) or an imported module object;
    packages yield each submodule in sorted order.
    """
    if isinstance(package, str):
        name = package if "." in package else f"repro.targets.{package}"
        package = importlib.import_module(name)
    if hasattr(package, "__path__"):
        for info in sorted(
            pkgutil.iter_modules(package.__path__), key=lambda i: i.name
        ):
            submodule = importlib.import_module(f"{package.__name__}.{info.name}")
            yield submodule.__name__, inspect.getsource(submodule)
    else:
        yield package.__name__, inspect.getsource(package)

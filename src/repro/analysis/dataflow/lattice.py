"""The observation lattice: conservative bit-relevance for locals.

The dataflow analyzer reduces every way a target observes an injected
variable to an *observation channel*: a pure, closed expression over
the single placeholder ``__v__`` (the injected value), built only
from compositions the analyzer proved side-effect free -- arithmetic
and comparisons against constants, boolean tests, and a whitelist of
pure builtins.  The lattice ordering is by observational power:

* **bottom** -- no channels: the module never observes the value, so
  any injection into it is dead;
* **channels** -- a finite set of pure expressions: the module's
  behavior is a function of the channel outputs only, so two injected
  values with equal outputs on every channel are indistinguishable;
* **TOP** -- the raw value escapes (identity channel) or the analyzer
  cannot bound the observation: every bit may matter.

Channel *signatures* (the tuple of canonicalized channel outputs over
all golden values) drive pruning: a flipped value whose signature
equals the golden value's is observation-masked (dead); flips with
equal signatures form an equivalence class.  Canonicalization is
exact -- floats compare by IEEE-754 bit pattern, bools and ints by
type and value -- so signature equality is never a rounding claim.
Any evaluation error makes the caller bail to TOP (live).
"""

from __future__ import annotations

import ast
import dataclasses
import functools
import math
import struct

__all__ = [
    "Channel",
    "IDENTITY",
    "canonical_value",
    "is_constant_expr",
    "constant_value",
    "pure_call_name",
    "signature",
]

#: The placeholder name channels are expressed over.
PLACEHOLDER = "__v__"

#: Source text of the identity channel (the raw value escapes).
IDENTITY = PLACEHOLDER

#: Builtins that are pure for scalar arguments and may appear as the
#: outermost call of a channel composition.
_PURE_BUILTINS = {
    "bool": bool,
    "int": int,
    "float": float,
    "abs": abs,
    "round": round,
    "min": min,
    "max": max,
    "len": len,
}

#: Pure ``math.*`` predicates/functions allowed in channels.
_PURE_MATH = {"isnan", "isinf", "isfinite", "floor", "ceil", "trunc", "sqrt"}

_EVAL_GLOBALS = {"__builtins__": {}, "math": math, **_PURE_BUILTINS}


@functools.lru_cache(maxsize=4096)
def _compile(expr: str):
    return compile(expr, "<channel>", "eval")


@dataclasses.dataclass(frozen=True)
class Channel:
    """One pure observation of an injected value.

    ``expr`` is a closed expression over ``__v__``; ``line`` is the
    source line of the observation site (provenance only -- channels
    compare and deduplicate by expression).
    """

    expr: str
    line: int

    @property
    def is_identity(self) -> bool:
        return self.expr == IDENTITY

    def observe(self, value: float | int | bool):
        """Evaluate the channel on one injected value.

        May raise whatever the expression raises (division by zero,
        domain errors); callers treat any exception as TOP.
        """
        return eval(  # noqa: S307 - expression built from whitelisted AST
            _compile(self.expr), _EVAL_GLOBALS, {PLACEHOLDER: value}
        )

    def __str__(self) -> str:
        return f"{self.expr} @L{self.line}"


def canonical_value(value: object) -> tuple:
    """Exact comparison token for a channel output.

    Floats canonicalize to their IEEE-754 bit pattern (distinct NaN
    payloads stay distinct -- conservative), bools before ints so
    ``True`` and ``1`` never merge.  Anything outside the closed
    bool/int/float/str/None/tuple universe raises ``TypeError`` and
    the caller bails to TOP.
    """
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, float):
        (bits,) = struct.unpack("<Q", struct.pack("<d", value))
        return ("f", bits)
    if isinstance(value, str):
        return ("s", value)
    if value is None:
        return ("n",)
    if isinstance(value, tuple):
        return ("t", tuple(canonical_value(item) for item in value))
    raise TypeError(f"unorderable channel output {type(value).__name__}")


def signature(
    channels: tuple[Channel, ...], value: float | int | bool
) -> tuple | None:
    """Canonical outputs of every channel on ``value``.

    ``None`` means some channel could not be evaluated (raised, or
    produced an output outside the canonical universe): the caller
    must treat the variable as live.
    """
    tokens = []
    for channel in channels:
        try:
            tokens.append(canonical_value(channel.observe(value)))
        except Exception:
            return None
    return tuple(tokens)


def constant_value(node: ast.expr) -> tuple[bool, object]:
    """``(True, value)`` when ``node`` is a compile-time constant."""
    try:
        return True, ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError, RecursionError):
        return False, None


def is_constant_expr(node: ast.expr) -> bool:
    return constant_value(node)[0]


def pure_call_name(func: ast.expr) -> str | None:
    """Channel-safe callable name for a call's func expression.

    Returns the source form (``"abs"``, ``"math.isnan"``) when the
    callable is whitelisted pure, else ``None``.
    """
    if isinstance(func, ast.Name) and func.id in _PURE_BUILTINS:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "math"
        and func.attr in _PURE_MATH
    ):
        return f"math.{func.attr}"
    return None

"""Intraprocedural dataflow analysis of instrumented target modules.

The injection tier enumerates variable x bit x time x test-case
exhaustively, yet a large fraction of those injections is provably
uninteresting before a single fault is injected: the target overwrites
the variable before reading it (masked by construction), or two
injection points sit in the same propagation class and produce
identical outcomes.  This package proves those facts *statically*,
from the target module's AST:

* :mod:`repro.analysis.dataflow.probes` -- the shared probe-site
  walker (``harness.probe(module, location, {...})`` discovery), also
  used by :mod:`repro.analysis.surface`;
* :mod:`repro.analysis.dataflow.cfg` -- statement-level control-flow
  graphs of target functions, conservative by construction (edges
  over-approximate real flow; anything unsupported aborts the whole
  function's analysis);
* :mod:`repro.analysis.dataflow.reaching` -- reaching definitions,
  def-use chains and live-variable analysis over those CFGs;
* :mod:`repro.analysis.dataflow.lattice` -- the observation lattice: a
  conservative bit-relevance abstraction describing *how* the module
  observes each probed variable (pure observation channels, or TOP);
* :mod:`repro.analysis.dataflow.analyzer` -- the per-variable verdicts
  (``dead`` / ``observed`` / ``live``) with provenance, consumed by
  :mod:`repro.analysis.prune` and :mod:`repro.analysis.surface`.

The soundness direction is uniform: imprecision may only ever *lose*
pruning opportunities (extra edges, extra uses, TOP verdicts), never
invent them.  See ``docs/analysis.md`` for the lattice write-up and
the audit contract that backs the static claims empirically.
"""

from repro.analysis.dataflow.analyzer import (
    ModuleDataflow,
    VariableFlow,
    analyze_dataflow,
    analyze_dataflow_module,
    analyze_dataflow_package,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode, UnsupportedConstruct, build_cfg
from repro.analysis.dataflow.lattice import Channel, canonical_value
from repro.analysis.dataflow.probes import (
    FunctionProbe,
    ProbeSite,
    function_probes,
    iter_target_sources,
)
from repro.analysis.dataflow.reaching import (
    Definition,
    def_use_chains,
    definitions_of,
    live_variables,
    reaching_definitions,
)

__all__ = [
    "CFG",
    "CFGNode",
    "Channel",
    "Definition",
    "FunctionProbe",
    "ModuleDataflow",
    "ProbeSite",
    "UnsupportedConstruct",
    "VariableFlow",
    "analyze_dataflow",
    "analyze_dataflow_module",
    "analyze_dataflow_package",
    "build_cfg",
    "canonical_value",
    "def_use_chains",
    "definitions_of",
    "function_probes",
    "iter_target_sources",
    "live_variables",
    "reaching_definitions",
]

"""Statement-level control-flow graphs of target functions.

One CFG node per executable statement (branch and loop headers anchor
their test/iterator expression only; body statements get their own
nodes).  The graph is *conservative by construction*: edges
over-approximate real control flow, so any path the program can take
exists in the graph -- imprecision only ever adds paths.  Constructs
whose flow this builder cannot over-approximate cheaply (``match``,
``async for``/``async with``, ``try``/``finally``, ``global``/
``nonlocal`` rebinding) raise :class:`UnsupportedConstruct`; callers
treat the whole function as unanalyzable (TOP) rather than guess.

Exception flow: while statements inside a ``try`` body are being
built, every node gets an edge to each handler entry, so definitions
made (or merely reached) inside the body reach uses in the handlers.
Nodes with such edges -- and all nodes inside ``with`` bodies, whose
context managers may suppress exceptions mid-body -- are flagged
``weak``: the reaching-definitions pass must not apply strong kills
there, because the node's own assignments may not have happened on the
exceptional path.
"""

from __future__ import annotations

import ast
import dataclasses

__all__ = ["CFG", "CFGNode", "UnsupportedConstruct", "build_cfg"]


class UnsupportedConstruct(Exception):
    """A construct whose control flow this builder does not model."""


@dataclasses.dataclass
class CFGNode:
    """One CFG node: an anchoring statement plus what executes there."""

    index: int
    stmt: ast.AST | None  # anchoring statement (function for entry)
    parts: tuple[ast.AST, ...]  # sub-trees evaluated at this node
    kind: str  # entry | exit | stmt | branch | loop | except
    succ: set[int] = dataclasses.field(default_factory=set)
    pred: set[int] = dataclasses.field(default_factory=set)
    #: Strong kills are unsound here (exception/suppression may skip
    #: this node's assignments, or the assignment may not execute at
    #: all, e.g. a ``for`` target over an empty iterable).
    weak: bool = False


@dataclasses.dataclass
class CFG:
    """Control-flow graph of one function."""

    function: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[CFGNode]
    entry: int
    exit: int
    _stmt_nodes: dict[int, int]  # id(stmt) -> node index

    def node_of(self, stmt: ast.AST) -> int | None:
        """CFG node anchored at ``stmt`` (by identity), if any."""
        return self._stmt_nodes.get(id(stmt))


_UNSUPPORTED = (
    ast.AsyncFor,
    ast.AsyncWith,
    ast.Global,
    ast.Nonlocal,
    ast.Match,
)

_SIMPLE = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Pass,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


class _Builder:
    def __init__(self, function: ast.FunctionDef | ast.AsyncFunctionDef):
        self.function = function
        self.nodes: list[CFGNode] = []
        self.stmt_nodes: dict[int, int] = {}
        # Stack of handler-entry lists for enclosing try bodies.
        self.handler_stack: list[list[int]] = []
        # Stacks managed per enclosing loop.
        self.break_stack: list[list[int]] = []
        self.continue_stack: list[int] = []
        self.with_depth = 0

    def new(
        self,
        stmt: ast.AST | None,
        parts: tuple[ast.AST, ...],
        kind: str = "stmt",
        reachable_by_raise: bool = True,
    ) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, parts=parts, kind=kind)
        self.nodes.append(node)
        if stmt is not None:
            self.stmt_nodes[id(stmt)] = node.index
        if reachable_by_raise and kind not in ("entry", "exit"):
            for handlers in self.handler_stack:
                for handler in handlers:
                    self.edge(node.index, handler)
                    node.weak = True
            if self.with_depth:
                node.weak = True
        return node.index

    def edge(self, src: int, dst: int) -> None:
        self.nodes[src].succ.add(dst)
        self.nodes[dst].pred.add(src)

    def link(self, frontier: list[int], dst: int) -> None:
        for src in frontier:
            self.edge(src, dst)

    def body(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, _UNSUPPORTED):
            raise UnsupportedConstruct(
                f"{type(stmt).__name__} at line {stmt.lineno}"
            )
        if type(stmt).__name__ == "TryStar":
            raise UnsupportedConstruct(f"try* at line {stmt.lineno}")
        if isinstance(stmt, _SIMPLE):
            node = self.new(stmt, (stmt,))
            self.link(frontier, node)
            return [node]
        if isinstance(stmt, ast.Return):
            parts = (stmt,) if stmt.value is not None else ()
            node = self.new(stmt, parts)
            self.link(frontier, node)
            self.edge(node, self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            parts = tuple(p for p in (stmt.exc, stmt.cause) if p is not None)
            node = self.new(stmt, parts)
            self.link(frontier, node)
            self.edge(node, self.exit)
            return []
        if isinstance(stmt, ast.Assert):
            parts = tuple(p for p in (stmt.test, stmt.msg) if p is not None)
            node = self.new(stmt, parts)
            self.link(frontier, node)
            return [node]
        if isinstance(stmt, ast.Break):
            if not self.break_stack:
                raise UnsupportedConstruct(f"break outside loop at {stmt.lineno}")
            node = self.new(stmt, ())
            self.link(frontier, node)
            self.break_stack[-1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if not self.continue_stack:
                raise UnsupportedConstruct(
                    f"continue outside loop at {stmt.lineno}"
                )
            node = self.new(stmt, ())
            self.link(frontier, node)
            self.edge(node, self.continue_stack[-1])
            return []
        if isinstance(stmt, ast.If):
            node = self.new(stmt, (stmt.test,), kind="branch")
            self.link(frontier, node)
            then_frontier = self.body(stmt.body, [node])
            else_frontier = self.body(stmt.orelse, [node]) if stmt.orelse else [node]
            return then_frontier + else_frontier
        if isinstance(stmt, ast.While):
            node = self.new(stmt, (stmt.test,), kind="branch")
            self.link(frontier, node)
            self.break_stack.append([])
            self.continue_stack.append(node)
            body_frontier = self.body(stmt.body, [node])
            self.link(body_frontier, node)
            self.continue_stack.pop()
            breaks = self.break_stack.pop()
            else_frontier = self.body(stmt.orelse, [node]) if stmt.orelse else [node]
            return else_frontier + breaks
        if isinstance(stmt, ast.For):
            # The loop header evaluates the iterator and (weakly, since
            # the iterable may be empty) binds the target.
            node = self.new(stmt, (stmt.iter,), kind="loop")
            self.nodes[node].weak = True
            self.link(frontier, node)
            self.break_stack.append([])
            self.continue_stack.append(node)
            body_frontier = self.body(stmt.body, [node])
            self.link(body_frontier, node)
            self.continue_stack.pop()
            breaks = self.break_stack.pop()
            else_frontier = self.body(stmt.orelse, [node]) if stmt.orelse else [node]
            return else_frontier + breaks
        if isinstance(stmt, ast.With):
            parts = tuple(item.context_expr for item in stmt.items)
            node = self.new(stmt, parts)
            self.link(frontier, node)
            self.with_depth += 1
            try:
                return self.body(stmt.body, [node])
            finally:
                self.with_depth -= 1
        if isinstance(stmt, ast.Try):
            if stmt.finalbody:
                raise UnsupportedConstruct(f"try/finally at line {stmt.lineno}")
            handler_entries: list[int] = []
            for handler in stmt.handlers:
                parts = (handler.type,) if handler.type is not None else ()
                entry = self.new(handler, parts, kind="except")
                self.nodes[entry].weak = True
                handler_entries.append(entry)
            self.handler_stack.append(handler_entries)
            try:
                body_frontier = self.body(stmt.body, frontier)
            finally:
                self.handler_stack.pop()
            else_frontier = (
                self.body(stmt.orelse, body_frontier)
                if stmt.orelse
                else body_frontier
            )
            out = list(else_frontier)
            for handler, entry in zip(stmt.handlers, handler_entries):
                out.extend(self.body(handler.body, [entry]))
            return out
        raise UnsupportedConstruct(
            f"{type(stmt).__name__} at line {getattr(stmt, 'lineno', 0)}"
        )


def build_cfg(function: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function, or raise UnsupportedConstruct."""
    builder = _Builder(function)
    entry = builder.new(function, (), kind="entry", reachable_by_raise=False)
    builder.exit = builder.new(None, (), kind="exit", reachable_by_raise=False)
    frontier = builder.body(function.body, [entry])
    builder.link(frontier, builder.exit)
    return CFG(
        function=function,
        nodes=builder.nodes,
        entry=entry,
        exit=builder.exit,
        _stmt_nodes=builder.stmt_nodes,
    )

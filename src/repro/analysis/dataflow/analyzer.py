"""Per-variable observation verdicts for instrumented modules.

For every probe site ``state = harness.probe(module, location, {...})``
the analyzer asks, per exposed variable: *how does the rest of the
function observe the value the probe returned?*  It answers with a
:class:`VariableFlow` in one of three states:

* ``dead`` -- the returned state's entry for the variable is never
  read on any path (never subscripted, or the state binding is
  overwritten before any use, or the probe result is discarded): an
  injection cannot propagate, so the run's outcome is the golden
  outcome by construction;
* ``observed`` -- every read of the variable terminates in a pure
  *observation channel* (see :mod:`repro.analysis.dataflow.lattice`):
  the execution's outcome is a function of the channel outputs only;
* ``live`` -- the raw value escapes (identity channel), the state
  dict itself escapes, a key is computed dynamically, or the function
  uses constructs the CFG cannot model: every bit may matter.

Soundness invariant: channels must cover *every* observation of the
value.  The climb from each read site therefore terminates in a
channel at the first composition it cannot prove pure -- the escaping
composed value is itself a sound channel (two injected values with
equal composed results hand identical values to whatever consumes
them).  Reaching definitions attribute reads to the right probe and
follow the value through local aliases, with cycles and depth capped
by falling back to the composed-so-far channel.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import types

from repro.analysis.dataflow.cfg import CFG, UnsupportedConstruct, build_cfg
from repro.analysis.dataflow.lattice import (
    IDENTITY,
    Channel,
    constant_value,
    pure_call_name,
)
from repro.analysis.dataflow.probes import (
    FunctionProbe,
    ProbeSite,
    function_probes,
    iter_target_sources,
    module_functions,
)
from repro.analysis.dataflow.reaching import (
    Definition,
    def_use_chains,
    definitions_of,
    reaching_definitions,
)

__all__ = [
    "VariableFlow",
    "ModuleDataflow",
    "analyze_dataflow",
    "analyze_dataflow_module",
    "analyze_dataflow_package",
]

_MAX_FLOW_DEPTH = 24


@dataclasses.dataclass(frozen=True)
class VariableFlow:
    """How one probe site's variable is observed downstream."""

    module: str
    location: str
    name: str
    defined_line: int
    status: str  # "dead" | "observed" | "live"
    channels: tuple[Channel, ...] = ()
    read_lines: tuple[int, ...] = ()
    reason: str = ""

    @property
    def is_dead(self) -> bool:
        return self.status == "dead"


@dataclasses.dataclass
class ModuleDataflow:
    """Dataflow verdicts for one or more analysed sources."""

    source_name: str
    probes: list[ProbeSite]
    site_flows: list[VariableFlow]  # one per (probe site, variable)

    def merged_with(self, other: "ModuleDataflow") -> "ModuleDataflow":
        return ModuleDataflow(
            source_name=f"{self.source_name}, {other.source_name}",
            probes=self.probes + other.probes,
            site_flows=self.site_flows + other.site_flows,
        )

    def sites_at(self, module: str, location: str) -> list[ProbeSite]:
        return [
            p
            for p in self.probes
            if p.module == module and p.location == str(location)
        ]

    def flows_at(self, module: str, location: str) -> list[VariableFlow]:
        return [
            f
            for f in self.site_flows
            if f.module == module and f.location == str(location)
        ]

    def flow(self, module: str, location: str, name: str) -> VariableFlow | None:
        """Joined verdict for one variable across all its probe sites.

        The join runs toward TOP: any live site wins, channels union
        across observed sites, and a variable missing from any site of
        the key is live (an injection at that site's occurrences would
        violate the instrumentation contract rather than be masked).
        """
        location = str(location)
        sites = self.sites_at(module, location)
        if not sites:
            return None
        if any(name not in site.variables for site in sites):
            return VariableFlow(
                module=module,
                location=location,
                name=name,
                defined_line=sites[0].line,
                status="live",
                reason="not exposed at every probe site of this key",
            )
        flows = [
            f
            for f in self.flows_at(module, location)
            if f.name == name
        ]
        if not flows:
            return None
        if len(flows) == 1:
            return flows[0]
        if any(f.status == "live" for f in flows):
            live = next(f for f in flows if f.status == "live")
            return dataclasses.replace(
                live, reason=f"live at one of {len(flows)} sites: {live.reason}"
            )
        channels: dict[str, Channel] = {}
        read_lines: list[int] = []
        for f in flows:
            for channel in f.channels:
                channels.setdefault(channel.expr, channel)
            read_lines.extend(f.read_lines)
        status = "observed" if channels else "dead"
        return VariableFlow(
            module=module,
            location=location,
            name=name,
            defined_line=flows[0].defined_line,
            status=status,
            channels=tuple(channels.values()),
            read_lines=tuple(sorted(set(read_lines))),
            reason="; ".join(sorted({f.reason for f in flows if f.reason})),
        )


def _parent_map(function: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(function):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


class _FunctionAnalysis:
    """Shared per-function machinery for climbing observations."""

    def __init__(self, function: ast.FunctionDef | ast.AsyncFunctionDef):
        self.function = function
        self.cfg: CFG = build_cfg(function)
        self.defs = definitions_of(self.cfg)
        self.reaching = reaching_definitions(self.cfg, self.defs)
        self.chains = def_use_chains(self.cfg, self.defs, self.reaching)
        self.parents = _parent_map(function)
        # Locally bound names shadow builtins/math: calls to them are
        # never channel-pure.
        self.bound_names = {
            d.name for per_node in self.defs.values() for d in per_node
        }

    def pure_callable(self, func: ast.expr) -> str | None:
        name = pure_call_name(func)
        if name is None:
            return None
        root = name.split(".")[0]
        if root in self.bound_names:
            return None
        return name

    def defs_at(self, node_index: int, name: str) -> list[Definition]:
        return [d for d in self.defs[node_index] if d.name == name]

    def climb(
        self,
        current: ast.expr,
        node_index: int,
        composed: ast.expr,
        visited: frozenset[Definition],
        depth: int,
    ) -> list[Channel]:
        """Observation channels reachable from one read expression.

        ``current`` starts at the read (the ``state["x"]`` subscript);
        ``composed`` is the pure expression describing the value
        ``current`` evaluates to, over the ``__v__`` placeholder.
        Every return path yields channels that cover all observations
        downstream of this read.
        """
        while True:
            if depth > _MAX_FLOW_DEPTH:
                return [self._escape(composed, current)]
            parent = self.parents.get(id(current))
            if parent is None:
                return [self._escape(composed, current)]
            if isinstance(parent, (ast.If, ast.While)) and current is parent.test:
                return [self._bool_channel(composed, current)]
            if isinstance(parent, ast.IfExp) and current is parent.test:
                return [self._bool_channel(composed, current)]
            if isinstance(parent, ast.Assert) and current is parent.test:
                return [self._bool_channel(composed, current)]
            if isinstance(parent, ast.UnaryOp):
                composed = ast.UnaryOp(op=parent.op, operand=composed)
                current = parent
                depth += 1
                continue
            if isinstance(parent, ast.BinOp):
                other = parent.right if current is parent.left else parent.left
                if not constant_value(other)[0]:
                    return [self._escape(composed, current)]
                if current is parent.left:
                    composed = ast.BinOp(left=composed, op=parent.op, right=other)
                else:
                    composed = ast.BinOp(left=other, op=parent.op, right=composed)
                current = parent
                depth += 1
                continue
            if isinstance(parent, ast.Compare) and len(parent.ops) == 1:
                comparator = parent.comparators[0]
                if current is parent.left and constant_value(comparator)[0]:
                    composed = ast.Compare(
                        left=composed, ops=parent.ops, comparators=[comparator]
                    )
                    current = parent
                    depth += 1
                    continue
                if current is comparator and constant_value(parent.left)[0]:
                    composed = ast.Compare(
                        left=parent.left, ops=parent.ops, comparators=[composed]
                    )
                    current = parent
                    depth += 1
                    continue
                return [self._escape(composed, current)]
            if isinstance(parent, ast.Call) and current in parent.args:
                name = self.pure_callable(parent.func)
                others_constant = all(
                    arg is current or constant_value(arg)[0]
                    for arg in parent.args
                )
                if name is not None and others_constant and not parent.keywords:
                    args = [
                        composed if arg is current else arg
                        for arg in parent.args
                    ]
                    composed = ast.Call(
                        func=ast.parse(name, mode="eval").body,
                        args=args,
                        keywords=[],
                    )
                    current = parent
                    depth += 1
                    continue
                return [self._escape(composed, current)]
            if isinstance(parent, ast.Expr):
                # Statement expression: the value is discarded.
                return []
            if isinstance(parent, ast.Assign) and current is parent.value:
                if len(parent.targets) == 1 and isinstance(
                    parent.targets[0], ast.Name
                ):
                    return self._flow_into(
                        parent, parent.targets[0].id, composed, visited, depth
                    )
                return [self._escape(composed, current)]
            if isinstance(parent, ast.NamedExpr) and current is parent.value:
                into = self._flow_into(
                    None,
                    parent.target.id,
                    composed,
                    visited,
                    depth,
                    walrus=parent,
                )
                onward = self.climb(parent, node_index, composed, visited, depth + 1)
                return into + onward
            if isinstance(parent, ast.AugAssign) and current is parent.value:
                # x <op>= composed: the old x is independent state; the
                # stored result is observed as an opaque escape.
                return [self._escape(composed, current)]
            return [self._escape(composed, current)]

    def climb_use(
        self,
        use_node: int,
        name_node: ast.Name,
        composed: ast.expr,
        visited: frozenset[Definition],
        depth: int,
    ) -> list[Channel]:
        parent = self.parents.get(id(name_node))
        if isinstance(parent, ast.AugAssign) and name_node is parent.target:
            # x <op>= rhs reads x; with a constant rhs the stored value
            # stays a pure composition and flows into the new binding.
            if constant_value(parent.value)[0]:
                rebound = ast.BinOp(
                    left=composed, op=parent.op, right=parent.value
                )
                new_defs = self.defs_at(use_node, name_node.id)
                return self._flow_defs(new_defs, rebound, visited, depth)
            return [self._escape(composed, name_node)]
        return self.climb(name_node, use_node, composed, visited, depth)

    def _flow_into(
        self,
        assign: ast.stmt | None,
        name: str,
        composed: ast.expr,
        visited: frozenset[Definition],
        depth: int,
        walrus: ast.expr | None = None,
    ) -> list[Channel]:
        """The composed value is bound to a local: follow its uses."""
        if assign is not None:
            node_index = self.cfg.node_of(assign)
        else:
            node_index = self._node_containing(walrus)
        if node_index is None:
            return [self._escape(composed, walrus or assign)]
        new_defs = [
            d
            for d in self.defs_at(node_index, name)
            if d.value is (assign.value if assign is not None else walrus.value)
        ] or self.defs_at(node_index, name)
        return self._flow_defs(new_defs, composed, visited, depth)

    def _flow_defs(
        self,
        new_defs: list[Definition],
        composed: ast.expr,
        visited: frozenset[Definition],
        depth: int,
    ) -> list[Channel]:
        channels: list[Channel] = []
        for definition in new_defs:
            if definition in visited:
                # Cycle (loop-carried recomposition): treat the value
                # entering the cycle as fully observed.
                channels.append(self._escape(composed, None, definition.line))
                continue
            sub_visited = visited | {definition}
            for use_node, name_node in self.chains.get(definition, ()):
                channels.extend(
                    self.climb_use(
                        use_node, name_node, composed, sub_visited, depth + 1
                    )
                )
        return channels

    def _node_containing(self, expr: ast.expr | None) -> int | None:
        node = expr
        while node is not None:
            index = self.cfg.node_of(node)
            if index is not None:
                return index
            node = self.parents.get(id(node))
        return None

    def _bool_channel(self, composed: ast.expr, site: ast.AST) -> Channel:
        call = ast.Call(
            func=ast.Name(id="bool", ctx=ast.Load()), args=[composed], keywords=[]
        )
        return Channel(_unparse(call), getattr(site, "lineno", 0))

    def _escape(
        self, composed: ast.expr, site: ast.AST | None, line: int | None = None
    ) -> Channel:
        return Channel(
            _unparse(composed),
            line if line is not None else getattr(site, "lineno", 0),
        )


def _unparse(expr: ast.expr) -> str:
    return ast.unparse(ast.fix_missing_locations(expr))


def _placeholder() -> ast.expr:
    return ast.Name(id="__v__", ctx=ast.Load())


def _live_flows(site: ProbeSite, reason: str) -> list[VariableFlow]:
    return [
        VariableFlow(
            module=site.module,
            location=site.location,
            name=name,
            defined_line=site.line,
            status="live",
            reason=reason,
        )
        for name in site.variables
    ]


def _analyze_probe(
    analysis: _FunctionAnalysis, probe: FunctionProbe
) -> list[VariableFlow]:
    site = probe.site
    if site.result_discarded:
        return [
            VariableFlow(
                module=site.module,
                location=site.location,
                name=name,
                defined_line=site.line,
                status="dead",
                reason="probe result discarded: injections cannot reach "
                "the module",
            )
            for name in site.variables
        ]
    node_index = analysis.cfg.node_of(probe.assign)
    if node_index is None:
        return _live_flows(site, "probe assignment not anchored in the CFG")
    state_defs = [
        d
        for d in analysis.defs_at(node_index, site.state_name)
        if isinstance(d.value, ast.Call)
    ]
    if len(state_defs) != 1:
        return _live_flows(site, "ambiguous state binding")
    state_def = state_defs[0]

    # Classify every use of the state dict reached by this probe's
    # binding: a constant-key read, or an escape of the whole dict.
    reads: dict[str, list[tuple[ast.expr, int]]] = {}
    for use_node, name_node in analysis.chains.get(state_def, ()):
        parent = analysis.parents.get(id(name_node))
        if (
            isinstance(parent, ast.Subscript)
            and parent.value is name_node
            and isinstance(parent.ctx, ast.Load)
        ):
            ok, key = constant_value(parent.slice)
            if ok and isinstance(key, str):
                reads.setdefault(key, []).append((parent, use_node))
                continue
            return _live_flows(
                site, f"dynamic state key at line {parent.lineno}"
            )
        grand = analysis.parents.get(id(parent))
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is name_node
            and parent.attr == "get"
            and isinstance(grand, ast.Call)
            and grand.func is parent
            and not grand.keywords
            and 1 <= len(grand.args) <= 2
        ):
            ok, key = constant_value(grand.args[0])
            default_ok = len(grand.args) == 1 or constant_value(grand.args[1])[0]
            if ok and isinstance(key, str) and default_ok:
                reads.setdefault(key, []).append((grand, use_node))
                continue
            return _live_flows(
                site, f"dynamic state key at line {parent.lineno}"
            )
        line = getattr(name_node, "lineno", site.line)
        return _live_flows(
            site, f"state dict escapes at line {line}"
        )

    flows: list[VariableFlow] = []
    for name in site.variables:
        sites_read = reads.get(name, ())
        if not sites_read:
            if analysis.chains.get(state_def):
                reason = f"key {name!r} never read after probe"
            elif _binding_overwritten(analysis, state_def):
                reason = "state binding overwritten before any use"
            else:
                reason = "state never read after probe"
            flows.append(
                VariableFlow(
                    module=site.module,
                    location=site.location,
                    name=name,
                    defined_line=site.line,
                    status="dead",
                    reason=f"{reason} (line {site.line})",
                )
            )
            continue
        channels: dict[str, Channel] = {}
        for read_expr, use_node in sites_read:
            for channel in analysis.climb(
                read_expr,
                use_node,
                _placeholder(),
                frozenset({state_def}),
                0,
            ):
                channels.setdefault(channel.expr, channel)
        read_lines = tuple(
            sorted({expr.lineno for expr, _ in sites_read})
        )
        if not channels:
            flows.append(
                VariableFlow(
                    module=site.module,
                    location=site.location,
                    name=name,
                    defined_line=site.line,
                    status="dead",
                    read_lines=(),
                    reason="all reads discard the value "
                    f"(lines {', '.join(map(str, read_lines))})",
                )
            )
            continue
        identity = next(
            (c for c in channels.values() if c.is_identity), None
        )
        if identity is not None:
            flows.append(
                VariableFlow(
                    module=site.module,
                    location=site.location,
                    name=name,
                    defined_line=site.line,
                    status="live",
                    channels=(identity,),
                    read_lines=read_lines,
                    reason=f"raw value escapes at line {identity.line}",
                )
            )
            continue
        flows.append(
            VariableFlow(
                module=site.module,
                location=site.location,
                name=name,
                defined_line=site.line,
                status="observed",
                channels=tuple(channels.values()),
                read_lines=read_lines,
                reason=f"observed through {len(channels)} pure channel(s)",
            )
        )
    return flows


def _binding_overwritten(
    analysis: _FunctionAnalysis, state_def: Definition
) -> bool:
    """Whether another definition of the state name exists (provenance
    for the 'overwritten before use' reason)."""
    for per_node in analysis.defs.values():
        for definition in per_node:
            if definition.name == state_def.name and definition is not state_def:
                return True
    return False


def analyze_dataflow(source: str, name: str = "<module>") -> ModuleDataflow:
    """Analyse one module's source text."""
    tree = ast.parse(source, filename=name)
    probes: list[ProbeSite] = []
    site_flows: list[VariableFlow] = []
    for function in module_functions(tree):
        found = function_probes(function)
        if not found:
            continue
        try:
            analysis: _FunctionAnalysis | None = _FunctionAnalysis(function)
        except UnsupportedConstruct as exc:
            analysis = None
            unsupported = str(exc)
        for probe in found:
            probes.append(probe.site)
            if analysis is None:
                site_flows.extend(
                    _live_flows(
                        probe.site, f"unsupported construct: {unsupported}"
                    )
                )
            else:
                site_flows.extend(_analyze_probe(analysis, probe))
    return ModuleDataflow(source_name=name, probes=probes, site_flows=site_flows)


def analyze_dataflow_module(module: types.ModuleType) -> ModuleDataflow:
    """Analyse an imported Python module."""
    return analyze_dataflow(inspect.getsource(module), module.__name__)


def analyze_dataflow_package(package: str | types.ModuleType) -> ModuleDataflow:
    """Analyse every submodule of a target package (see
    :func:`repro.analysis.dataflow.probes.iter_target_sources`)."""
    report: ModuleDataflow | None = None
    source_name = package if isinstance(package, str) else package.__name__
    for module_name, source in iter_target_sources(package):
        analysed = analyze_dataflow(source, module_name)
        report = analysed if report is None else report.merged_with(analysed)
    if report is None:
        return ModuleDataflow(source_name=str(source_name), probes=[], site_flows=[])
    return report

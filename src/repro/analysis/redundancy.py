"""Cross-detector redundancy analysis.

A registry serving many detectors pays for every one of them on every
state, so two detectors that are equivalent -- or where one implies the
other -- are wasted work (and a publishing mistake: a team re-deriving
a detector from the same campaign should bump a version, not add a
name).  This module diffs predicate *pairs*:

* **proof**: both predicates are simplified to canonical form; when
  each is a disjunction of conjunctive interval branches, implication
  is decided branch-wise in the interval domain (sound: a proven
  relation holds on every state, missing/NaN included; incomplete:
  opaque atoms and non-DNF shapes fall through);
* **evidence**: when no proof applies, both predicates are evaluated
  over a deterministic battery of states probing every threshold, NaN
  and absence (the same construction the compiler's self-check uses),
  and the observed agreement is reported as evidence, never as proof.

:func:`analyze_registry` applies the pairwise diff to the newest
version of every published name --
:meth:`repro.runtime.registry.DetectorRegistry.publish` runs it at
publish time to warn about (or reject) duplicates.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np

from repro.analysis.intervals import Constraint
from repro.analysis.simplify import _branch_table, _implies, simplify_predicate
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = [
    "PredicateRelation",
    "RedundancyFinding",
    "compare_predicates",
    "analyze_registry",
]

#: Relations, strongest first.  ``equivalent``/``implies``/
#: ``implied_by``/``disjoint`` are interval-domain *proofs*;
#: ``overlap``/``independent`` summarise battery evidence only.
RELATIONS = (
    "equivalent",
    "implies",
    "implied_by",
    "disjoint",
    "overlap",
    "independent",
)


@dataclasses.dataclass(frozen=True)
class PredicateRelation:
    """Outcome of diffing one predicate pair."""

    relation: str
    proven: bool
    detail: str
    #: Battery agreement counts (both fired, only left, only right).
    both: int = 0
    only_left: int = 0
    only_right: int = 0

    @property
    def is_redundant(self) -> bool:
        """One of the pair adds no detection capability."""
        return self.relation in ("equivalent", "implies", "implied_by")


@dataclasses.dataclass(frozen=True)
class RedundancyFinding:
    """One redundant (or overlapping) registry pair."""

    left: str
    right: str
    relation: PredicateRelation

    def __str__(self) -> str:
        return f"{self.left} {self.relation.relation} {self.right}"


def _branches(predicate: Predicate) -> list[dict[str, Constraint]] | None:
    """Branch tables of a DNF-shaped predicate; None when opaque."""
    if isinstance(predicate, TruePredicate):
        return [{}]  # one empty branch: satisfied by every state
    if isinstance(predicate, FalsePredicate):
        return []
    if isinstance(predicate, (Comparison, And)):
        table = _branch_table(predicate)
        return None if table is None else [table]
    if isinstance(predicate, Or):
        tables = []
        for child in predicate.children:
            table = _branch_table(child)
            if table is None:
                return None
            tables.append(table)
        return tables
    return None


def _dnf_implies(
    left: list[dict[str, Constraint]], right: list[dict[str, Constraint]]
) -> bool:
    """Every left branch is implied by some right branch (sound)."""
    return all(
        any(_implies(branch, other) for other in right) for branch in left
    )


def _dnf_disjoint(
    left: list[dict[str, Constraint]], right: list[dict[str, Constraint]]
) -> bool:
    """No state satisfies a left branch and a right branch (sound)."""
    for a, b in itertools.product(left, right):
        conflict = any(
            a[v].intersect(b[v]).empty for v in set(a) & set(b)
        )
        if not conflict:
            return False
    return True


def _battery(left: Predicate, right: Predicate) -> list[dict[str, object]]:
    """Deterministic states probing both predicates' thresholds."""
    thresholds: dict[str, set[float]] = {}

    def collect(node: Predicate) -> None:
        if isinstance(node, Comparison):
            thresholds.setdefault(node.variable, set()).add(node.value)
        elif isinstance(node, (And, Or)):
            for child in node.children:
                collect(child)
        else:
            for variable in node.variables():
                thresholds.setdefault(variable, set())

    collect(left)
    collect(right)
    nan = float("nan")
    candidates: dict[str, list[object]] = {}
    for variable, values in thresholds.items():
        pool = {0.0}
        for value in values:
            pool.update((value - 1.0, value, value + 1.0))
        candidates[variable] = sorted(pool) + [nan, None]
    variables = sorted(candidates)
    states: list[dict[str, object]] = [{}]
    pools = [candidates[v] for v in variables]
    total = 1
    for pool in pools:
        total *= len(pool)
    if total <= 1024:
        combos = itertools.product(*pools)
    else:
        rng = np.random.default_rng(0)
        combos = (
            tuple(pool[rng.integers(len(pool))] for pool in pools)
            for _ in range(1024)
        )
    for combo in combos:
        states.append(
            {
                variable: value
                for variable, value in zip(variables, combo)
                if value is not None
            }
        )
    return states


def compare_predicates(
    left: Predicate, right: Predicate
) -> PredicateRelation:
    """Diff two predicates: an interval-domain proof when both are
    DNF-shaped, battery evidence otherwise."""
    simple_left = simplify_predicate(left).simplified
    simple_right = simplify_predicate(right).simplified
    left_branches = _branches(simple_left)
    right_branches = _branches(simple_right)
    if left_branches is not None and right_branches is not None:
        forward = _dnf_implies(left_branches, right_branches)
        backward = _dnf_implies(right_branches, left_branches)
        if forward and backward:
            return PredicateRelation(
                "equivalent", True, "identical interval coverage"
            )
        if forward:
            return PredicateRelation(
                "implies", True, "left never fires without right"
            )
        if backward:
            return PredicateRelation(
                "implied_by", True, "right never fires without left"
            )
        if _dnf_disjoint(left_branches, right_branches):
            return PredicateRelation(
                "disjoint", True, "no state can fire both"
            )
    states = _battery(simple_left, simple_right)
    both = only_left = only_right = 0
    for state in states:
        fired_left = bool(simple_left.evaluate(state))
        fired_right = bool(simple_right.evaluate(state))
        both += fired_left and fired_right
        only_left += fired_left and not fired_right
        only_right += fired_right and not fired_left
    relation = "overlap" if both else "independent"
    return PredicateRelation(
        relation,
        False,
        f"battery of {len(states)} states: {both} fired both, "
        f"{only_left} only left, {only_right} only right",
        both=both,
        only_left=only_left,
        only_right=only_right,
    )


def analyze_registry(registry) -> list[RedundancyFinding]:
    """Diff the newest version of every published detector pairwise.

    Returns findings for every pair whose relation is a proven
    implication/equivalence, or whose battery evidence shows overlap --
    sorted redundant-first so callers can slice off the severe ones.
    """
    entries = registry.latest()
    findings: list[RedundancyFinding] = []
    for a, b in itertools.combinations(entries, 2):
        relation = compare_predicates(a.detector.predicate, b.detector.predicate)
        if relation.is_redundant or relation.relation == "overlap":
            findings.append(RedundancyFinding(str(a), str(b), relation))
    findings.sort(key=lambda f: RELATIONS.index(f.relation.relation))
    return findings

"""Error propagation analysis (the placement substrate).

The paper separates detector *design* (its contribution) from detector
*placement*, which it delegates to error propagation analysis --
"program locations are known, e.g., through techniques such as [14]"
(Hiller, Jhumka, Suri: "An approach for analysing the propagation of
data errors in software", DSN 2001).  This package implements that
substrate over the reproduction's campaign records:

* :mod:`repro.analysis.propagation` -- per-variable error permeability
  (how often a corruption of the variable propagates to failure),
  bit-region and injection-time profiles, and a ranking of variables /
  locations that detector placement would prioritise;
* :mod:`repro.analysis.coverage` -- Powell-style coverage estimation
  (binomial point estimate with Wilson and Clopper-Pearson intervals)
  and detection latency statistics for validated detectors;
* :mod:`repro.analysis.significance` -- paired and Nadeau-Bengio
  corrected t-tests over matched cross-validation folds, for claims of
  the form "model A beats model B on this dataset".
"""

from repro.analysis.propagation import (
    PropagationReport,
    VariablePropagation,
    analyse_propagation,
)
from repro.analysis.coverage import (
    CoverageEstimate,
    EfficiencyReport,
    LatencyStatistics,
    coverage_estimate,
    detector_efficiency_report,
    latency_statistics,
)
from repro.analysis.significance import (
    TTestResult,
    compare_fold_metrics,
    corrected_paired_t_test,
    paired_t_test,
)

__all__ = [
    "CoverageEstimate",
    "EfficiencyReport",
    "LatencyStatistics",
    "PropagationReport",
    "TTestResult",
    "VariablePropagation",
    "analyse_propagation",
    "compare_fold_metrics",
    "corrected_paired_t_test",
    "coverage_estimate",
    "detector_efficiency_report",
    "latency_statistics",
    "paired_t_test",
]

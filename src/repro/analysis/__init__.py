"""Error propagation analysis (the placement substrate).

The paper separates detector *design* (its contribution) from detector
*placement*, which it delegates to error propagation analysis --
"program locations are known, e.g., through techniques such as [14]"
(Hiller, Jhumka, Suri: "An approach for analysing the propagation of
data errors in software", DSN 2001).  This package implements that
substrate over the reproduction's campaign records:

* :mod:`repro.analysis.propagation` -- per-variable error permeability
  (how often a corruption of the variable propagates to failure),
  bit-region and injection-time profiles, and a ranking of variables /
  locations that detector placement would prioritise;
* :mod:`repro.analysis.coverage` -- Powell-style coverage estimation
  (binomial point estimate with Wilson and Clopper-Pearson intervals)
  and detection latency statistics for validated detectors;
* :mod:`repro.analysis.significance` -- paired and Nadeau-Bengio
  corrected t-tests over matched cross-validation folds, for claims of
  the form "model A beats model B on this dataset".

The static-verification half of the package reasons about detectors
without running them:

* :mod:`repro.analysis.intervals` -- the interval abstract domain the
  checker interprets the predicate algebra in;
* :mod:`repro.analysis.simplify` -- the abstract-interpretation checker
  and canonical simplifier (unsatisfiable / tautological / subsumed /
  vacuous clause verdicts, provably equivalent smaller predicates);
* :mod:`repro.analysis.redundancy` -- cross-detector diffing
  (equivalence / implication proofs, battery-evidence overlap);
* :mod:`repro.analysis.dataflow` -- intraprocedural CFG / reaching
  definitions / observation-channel analysis of target module ASTs,
  the evidence base for surface and prune verdicts;
* :mod:`repro.analysis.surface` -- AST injection-surface analysis of
  target modules (instrumentable variables, def-use, dead injections);
* :mod:`repro.analysis.prune` -- static injection-space pruning: per
  ``(variable, bit)`` dead / equivalent / live verdicts with record
  synthesis and a seeded re-injection audit;
* :mod:`repro.analysis.lint` -- the pluggable lint framework tying the
  above together behind ``repro lint`` / ``repro analyze``.
"""

from repro.analysis.propagation import (
    PropagationReport,
    VariablePropagation,
    analyse_propagation,
)
from repro.analysis.coverage import (
    CoverageEstimate,
    EfficiencyReport,
    LatencyStatistics,
    coverage_estimate,
    detector_efficiency_report,
    latency_statistics,
)
from repro.analysis.significance import (
    TTestResult,
    compare_fold_metrics,
    corrected_paired_t_test,
    paired_t_test,
)
from repro.analysis.intervals import Constraint, atom_constraint
from repro.analysis.simplify import (
    ClauseVerdict,
    SimplificationResult,
    check_predicate,
    simplify_predicate,
)
from repro.analysis.redundancy import (
    PredicateRelation,
    RedundancyFinding,
    analyze_registry,
    compare_predicates,
)
from repro.analysis.dataflow import (
    ModuleDataflow,
    VariableFlow,
    analyze_dataflow,
    analyze_dataflow_module,
    analyze_dataflow_package,
)
from repro.analysis.prune import (
    PointPlan,
    PruneContradiction,
    PrunePlan,
    plan_prune,
    prune_campaign,
)
from repro.analysis.surface import (
    ProbeSite,
    SurfaceReport,
    SurfaceVariable,
    analyze_module,
    analyze_source,
    analyze_target_package,
    check_campaign,
)
from repro.analysis.lint import (
    Finding,
    LintContext,
    LintRule,
    Linter,
    Severity,
    default_rules,
    exit_code,
    register_rule,
    render_json,
    render_text,
)

__all__ = [
    "ClauseVerdict",
    "Constraint",
    "CoverageEstimate",
    "EfficiencyReport",
    "Finding",
    "LatencyStatistics",
    "LintContext",
    "LintRule",
    "Linter",
    "ModuleDataflow",
    "PointPlan",
    "PredicateRelation",
    "ProbeSite",
    "PropagationReport",
    "PruneContradiction",
    "PrunePlan",
    "RedundancyFinding",
    "Severity",
    "SimplificationResult",
    "SurfaceReport",
    "SurfaceVariable",
    "TTestResult",
    "VariableFlow",
    "VariablePropagation",
    "analyse_propagation",
    "analyze_dataflow",
    "analyze_dataflow_module",
    "analyze_dataflow_package",
    "analyze_module",
    "analyze_registry",
    "analyze_source",
    "analyze_target_package",
    "atom_constraint",
    "check_campaign",
    "check_predicate",
    "compare_fold_metrics",
    "compare_predicates",
    "corrected_paired_t_test",
    "coverage_estimate",
    "default_rules",
    "detector_efficiency_report",
    "exit_code",
    "latency_statistics",
    "paired_t_test",
    "plan_prune",
    "prune_campaign",
    "register_rule",
    "render_json",
    "render_text",
    "simplify_predicate",
]

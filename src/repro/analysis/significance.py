"""Statistical comparison of cross-validated models.

Claims like "the refined predicate is better than the baseline" or
"C4.5 beats Naive Bayes here" rest on differences between
cross-validation estimates, which are themselves noisy.  This module
provides the standard machinery for such claims over *matched folds*:

* :func:`paired_t_test` -- the classic paired Student t-test over
  per-fold metric differences;
* :func:`corrected_paired_t_test` -- Nadeau & Bengio's variance
  correction for resampled/cross-validated estimates (the default in
  Weka's Experimenter), which widens the variance by ``1/k + n2/n1``
  to account for overlapping training sets;
* a p-value from the t distribution, computed via the regularised
  incomplete beta function already used by the coverage module.

Both tests require the two models to have been evaluated on the *same
folds* (same dataset, same fold RNG) -- the cross-validation harness's
determinism makes that easy to arrange.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.analysis.coverage import _beta_cdf

__all__ = [
    "TTestResult",
    "paired_t_test",
    "corrected_paired_t_test",
    "compare_fold_metrics",
]


@dataclasses.dataclass(frozen=True)
class TTestResult:
    """Outcome of a paired comparison of per-fold metrics."""

    mean_difference: float   # mean(a - b)
    t_statistic: float
    degrees_of_freedom: int
    p_value: float           # two-sided

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"diff={self.mean_difference:+.5f} t={self.t_statistic:.3f} "
            f"df={self.degrees_of_freedom} p={self.p_value:.4f}"
        )


def _t_sf(t: float, df: int) -> float:
    """Two-sided p-value for a t statistic via the incomplete beta."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if math.isnan(t):
        return 1.0
    if math.isinf(t):
        return 0.0
    x = df / (df + t * t)
    # P(|T| >= |t|) = I_x(df/2, 1/2)
    return _beta_cdf(x, df / 2.0, 0.5)


def paired_t_test(a, b) -> TTestResult:
    """Paired Student t-test over matched per-fold metrics."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("need two equal-length 1-D metric vectors")
    if len(a) < 2:
        raise ValueError("need at least two folds")
    d = a - b
    mean = float(d.mean())
    sd = float(d.std(ddof=1))
    df = len(d) - 1
    if sd == 0.0:
        t = 0.0 if mean == 0.0 else math.copysign(math.inf, mean)
        return TTestResult(mean, t, df, 0.0 if t != 0.0 else 1.0)
    t = mean / (sd / math.sqrt(len(d)))
    return TTestResult(mean, t, df, _t_sf(t, df))


def corrected_paired_t_test(
    a, b, test_fraction: float | None = None
) -> TTestResult:
    """Nadeau-Bengio corrected paired t-test for k-fold estimates.

    ``test_fraction`` is n2/n1, the test-to-train size ratio; for
    k-fold cross-validation it is ``1/(k-1)`` (the default when not
    given).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("need two equal-length 1-D metric vectors")
    k = len(a)
    if k < 2:
        raise ValueError("need at least two folds")
    if test_fraction is None:
        test_fraction = 1.0 / (k - 1)
    if test_fraction <= 0:
        raise ValueError("test_fraction must be positive")
    d = a - b
    mean = float(d.mean())
    variance = float(d.var(ddof=1))
    df = k - 1
    if variance == 0.0:
        t = 0.0 if mean == 0.0 else math.copysign(math.inf, mean)
        return TTestResult(mean, t, df, 0.0 if t != 0.0 else 1.0)
    corrected_variance = (1.0 / k + test_fraction) * variance
    t = mean / math.sqrt(corrected_variance)
    return TTestResult(mean, t, df, _t_sf(t, df))


def compare_fold_metrics(
    result_a,
    result_b,
    metric: str = "auc",
    corrected: bool = True,
) -> TTestResult:
    """Compare two CrossValidationResults fold by fold.

    ``metric`` is one of ``"auc"``, ``"tpr"``, ``"fpr"``.  Positive
    mean difference means ``result_a`` scored higher.
    """
    def values(result):
        return [getattr(fold, metric) for fold in result.folds]

    a, b = values(result_a), values(result_b)
    if len(a) != len(b):
        raise ValueError("results must have the same number of folds")
    test = corrected_paired_t_test if corrected else paired_t_test
    return test(a, b)

"""Coverage and latency estimation for detectors (Powell et al. [5]).

"Metrics, such as coverage and latency, are often used to evaluate the
efficiency of dependability components" (Sections I/II).  Coverage is
the probability that the detector flags a fault given that one was
activated and led to an erroneous state; it is estimated from fault
injection as a binomial proportion, and a point estimate alone is
meaningless without its confidence interval -- the point of Powell et
al.'s estimator work.  This module provides:

* :func:`coverage_estimate` -- point estimate plus Wilson and exact
  Clopper-Pearson intervals at a configurable confidence level;
* :func:`latency_statistics` -- detection latency distribution
  (mean / median / percentiles, in probe occurrences) from validation
  verdicts;
* :func:`detector_efficiency_report` -- the combined coverage-and-
  latency summary for a :class:`repro.core.validate.ValidationReport`.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.mining.tree.pruning import _normal_quantile

__all__ = [
    "CoverageEstimate",
    "LatencyStatistics",
    "coverage_estimate",
    "latency_statistics",
    "detector_efficiency_report",
    "EfficiencyReport",
]


@dataclasses.dataclass(frozen=True)
class CoverageEstimate:
    """Binomial coverage estimate with confidence bounds."""

    detected: int
    activated: int
    confidence: float
    point: float
    wilson_low: float
    wilson_high: float
    exact_low: float
    exact_high: float

    def __str__(self) -> str:
        return (
            f"{self.point:.4f} "
            f"[{self.wilson_low:.4f}, {self.wilson_high:.4f}] "
            f"({self.confidence:.0%} Wilson, n={self.activated})"
        )


def coverage_estimate(
    detected: int, activated: int, confidence: float = 0.95
) -> CoverageEstimate:
    """Estimate detection coverage from injection counts.

    ``activated`` is the number of injected runs whose fault produced
    an erroneous (failure-inducing) state; ``detected`` how many the
    detector flagged.
    """
    if activated < 0 or detected < 0 or detected > activated:
        raise ValueError("need 0 <= detected <= activated")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if activated == 0:
        return CoverageEstimate(0, 0, confidence, 0.0, 0.0, 1.0, 0.0, 1.0)

    p = detected / activated
    z = _normal_quantile(1 - (1 - confidence) / 2)
    n = activated
    # Wilson score interval.
    denominator = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denominator
    margin = (
        z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denominator
    )
    wilson_low = max(centre - margin, 0.0)
    wilson_high = min(centre + margin, 1.0)
    # Exact Clopper-Pearson via the beta-quantile bisection (no scipy).
    alpha = 1 - confidence
    exact_low = 0.0 if detected == 0 else _beta_quantile(
        alpha / 2, detected, activated - detected + 1
    )
    exact_high = 1.0 if detected == activated else _beta_quantile(
        1 - alpha / 2, detected + 1, activated - detected
    )
    return CoverageEstimate(
        detected, activated, confidence, p,
        wilson_low, wilson_high, exact_low, exact_high,
    )


def _beta_quantile(q: float, a: float, b: float) -> float:
    """Inverse regularised incomplete beta via bisection.

    Accurate to ~1e-10, which is far tighter than coverage reporting
    needs; avoids a scipy dependency.
    """
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if _beta_cdf(mid, a, b) < q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _beta_cdf(x: float, a: float, b: float) -> float:
    """Regularised incomplete beta I_x(a, b) by continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)
    front = math.exp(a * math.log(x) + b * math.log(1 - x) - ln_beta)
    # Lentz continued fraction, with the symmetry transform for
    # convergence.
    if x < (a + 1) / (a + b + 2):
        return front * _beta_cf(x, a, b) / a
    return 1.0 - math.exp(
        b * math.log(1 - x) + a * math.log(x) - ln_beta
    ) * _beta_cf(1 - x, b, a) / b


def _beta_cf(x: float, a: float, b: float) -> float:
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


@dataclasses.dataclass(frozen=True)
class LatencyStatistics:
    """Detection latency distribution over true positives."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} median={self.median:.1f} "
            f"p90={self.p90:.1f} max={self.maximum:.0f}"
        )


def latency_statistics(latencies) -> LatencyStatistics:
    """Summarise detection latencies (in probe occurrences)."""
    values = np.asarray([l for l in latencies if l is not None], dtype=float)
    if values.size == 0:
        return LatencyStatistics(0, 0.0, 0.0, 0.0, 0.0)
    return LatencyStatistics(
        count=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        maximum=float(values.max()),
    )


@dataclasses.dataclass
class EfficiencyReport:
    """Coverage + latency for one validated detector."""

    coverage: CoverageEstimate
    false_positive_rate: float
    latency: LatencyStatistics

    def __str__(self) -> str:
        return (
            f"coverage {self.coverage}; fpr={self.false_positive_rate:.4f}; "
            f"latency {self.latency}"
        )


def detector_efficiency_report(
    report, confidence: float = 0.95
) -> EfficiencyReport:
    """Build the coverage/latency view of a ValidationReport."""
    activated = sum(1 for v in report.verdicts if v.record.failed)
    detected = sum(
        1 for v in report.verdicts if v.record.failed and v.flagged
    )
    latencies = [
        v.latency
        for v in report.verdicts
        if v.record.failed and v.flagged
    ]
    return EfficiencyReport(
        coverage=coverage_estimate(detected, activated, confidence),
        false_positive_rate=report.observed_fpr,
        latency=latency_statistics(latencies),
    )

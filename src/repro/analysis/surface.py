"""Injection-surface analysis of instrumented target modules.

A fault-injection campaign is only as useful as its injection surface:
flipping a bit in a variable the target never reads back cannot change
the execution, so every run against it is wasted compute and every
sampled instance a guaranteed non-failure (FastFlip's observation that
static analysis of the injection surface makes campaigns cheaper).
This module walks the *AST* of a target module -- no execution -- to
recover the instrumentation surface:

* every ``harness.probe("Module", Location.ENTRY, {...})`` call site,
  with the dict-literal keys as the instrumentable variables at that
  (module, location) probe;
* the *def-use* trail of each probe: which keys of the returned state
  dict the module actually reads afterwards (``state["x"]`` /
  ``state.get("x")``), at which lines;
* **dead** variables -- exposed at a probe but never read back -- and
  probes whose returned state is discarded entirely.

:func:`check_campaign` then flags a
:class:`~repro.injection.campaign.CampaignConfig` that spends runs
injecting into dead variables.

The analysis is conservative: a read through a non-literal key (or any
shape it does not recognise) marks *every* variable of that probe as
read, so "dead" is only ever reported with an explicit witness.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
import inspect
import pkgutil
import types

__all__ = [
    "ProbeSite",
    "SurfaceVariable",
    "SurfaceReport",
    "analyze_source",
    "analyze_module",
    "analyze_target_package",
    "check_campaign",
]


@dataclasses.dataclass(frozen=True)
class ProbeSite:
    """One ``harness.probe(module, location, {...})`` call site."""

    module: str
    location: str  # "entry" | "exit"
    line: int
    state_name: str | None  # name the returned dict is bound to
    variables: tuple[str, ...]

    @property
    def result_discarded(self) -> bool:
        """The returned (possibly corrupted) state is never bound, so
        injections at this probe cannot reach the module."""
        return self.state_name is None

    def __str__(self) -> str:
        return f"{self.module}@{self.location} (line {self.line})"


@dataclasses.dataclass(frozen=True)
class SurfaceVariable:
    """One instrumentable variable with its def-use sites."""

    module: str
    location: str
    name: str
    defined_line: int
    reads: tuple[int, ...]  # line numbers of state reads after the probe

    @property
    def is_dead(self) -> bool:
        return not self.reads


@dataclasses.dataclass
class SurfaceReport:
    """The instrumentation surface of one or more analysed sources."""

    source: str
    probes: list[ProbeSite]
    variables: list[SurfaceVariable]

    def merged_with(self, other: "SurfaceReport") -> "SurfaceReport":
        return SurfaceReport(
            source=f"{self.source}, {other.source}",
            probes=self.probes + other.probes,
            variables=self.variables + other.variables,
        )

    def modules(self) -> list[str]:
        return sorted({p.module for p in self.probes})

    def variables_at(self, module: str, location: str) -> list[SurfaceVariable]:
        return [
            v
            for v in self.variables
            if v.module == module and v.location == str(location)
        ]

    def dead_variables(
        self, module: str | None = None, location: str | None = None
    ) -> list[SurfaceVariable]:
        return [
            v
            for v in self.variables
            if v.is_dead
            and (module is None or v.module == module)
            and (location is None or v.location == str(location))
        ]

    def lookup(self, module: str, location: str, name: str) -> SurfaceVariable | None:
        for v in self.variables_at(module, location):
            if v.name == name:
                return v
        return None


def _probe_parts(call: ast.Call) -> tuple[str, str, ast.expr] | None:
    """Match ``<anything>.probe("Module", Location.X, state_expr)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "probe"):
        return None
    if len(call.args) != 3:
        return None
    module_arg, location_arg, state_arg = call.args
    if not (isinstance(module_arg, ast.Constant) and isinstance(module_arg.value, str)):
        return None
    if isinstance(location_arg, ast.Attribute):
        location = location_arg.attr.lower()
    elif isinstance(location_arg, ast.Constant) and isinstance(location_arg.value, str):
        location = location_arg.value.lower()
    else:
        return None
    if location not in ("entry", "exit"):
        return None
    return module_arg.value, location, state_arg


def _dict_keys(expression: ast.expr) -> tuple[str, ...] | None:
    if not isinstance(expression, ast.Dict):
        return None
    keys: list[str] = []
    for key in expression.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return tuple(keys)


@dataclasses.dataclass
class _Probe:
    site: ProbeSite
    function: ast.AST


def _function_probes(function: ast.AST) -> list[_Probe]:
    """Probe call sites directly inside one function body."""
    probes: list[_Probe] = []
    for node in ast.walk(function):
        call: ast.Call | None = None
        state_name: str | None = None
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                state_name = node.targets[0].id
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
        if call is None:
            continue
        parts = _probe_parts(call)
        if parts is None:
            continue
        module, location, state_arg = parts
        variables = _dict_keys(state_arg) or ()
        probes.append(
            _Probe(
                ProbeSite(
                    module=module,
                    location=location,
                    line=call.lineno,
                    state_name=state_name,
                    variables=variables,
                ),
                function,
            )
        )
    return probes


def _state_reads(
    function: ast.AST, state_name: str, after_line: int
) -> dict[str, list[int]] | None:
    """Lines where ``state_name[<key>]`` / ``state_name.get(<key>)`` is
    read after ``after_line``.  ``None`` means an unrecognised access
    shape was seen -- the caller must assume every key is read."""
    reads: dict[str, list[int]] = {}
    for node in ast.walk(function):
        if getattr(node, "lineno", 0) <= after_line:
            continue
        key_node: ast.expr | None = None
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == state_name
        ):
            key_node = node.slice
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == state_name
            and node.args
        ):
            key_node = node.args[0]
        elif isinstance(node, ast.Name) and node.id == state_name:
            # A bare reference (e.g. passed to a helper, iterated,
            # returned): conservatively, everything may be read.  The
            # subscript/get parents also contain a Name node, but those
            # are matched above before their child is reached... walk
            # order does not guarantee that, so bare names are handled
            # by the caller via the sentinel below only when no other
            # shape claimed the same location.
            continue
        if key_node is None:
            continue
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            reads.setdefault(key_node.value, []).append(node.lineno)
        else:
            return None  # dynamic key: give up, assume all read
    # Second pass: bare Name references outside subscript/get shapes.
    claimed_lines = {
        line for lines in reads.values() for line in lines
    }
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Name)
            and node.id == state_name
            and getattr(node, "lineno", 0) > after_line
            and node.lineno not in claimed_lines
            and isinstance(node.ctx, ast.Load)
        ):
            return None  # escapes the recognised shapes: assume all read
    return reads


def analyze_source(source: str, name: str = "<module>") -> SurfaceReport:
    """Analyse one module's source text."""
    tree = ast.parse(source, filename=name)
    probes: list[ProbeSite] = []
    variables: list[SurfaceVariable] = []
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for function in functions:
        for probe in _function_probes(function):
            site = probe.site
            probes.append(site)
            if site.state_name is None:
                reads: dict[str, list[int]] | None = {}
            else:
                reads = _state_reads(function, site.state_name, site.line)
            for variable in site.variables:
                if reads is None:
                    lines: tuple[int, ...] = (-1,)  # unknown reads: assume read
                else:
                    lines = tuple(reads.get(variable, ()))
                variables.append(
                    SurfaceVariable(
                        module=site.module,
                        location=site.location,
                        name=variable,
                        defined_line=site.line,
                        reads=lines,
                    )
                )
    return SurfaceReport(source=name, probes=probes, variables=variables)


def analyze_module(module: types.ModuleType) -> SurfaceReport:
    """Analyse an imported Python module."""
    return analyze_source(inspect.getsource(module), module.__name__)


def analyze_target_package(package: str | types.ModuleType) -> SurfaceReport:
    """Analyse every submodule of a target package.

    ``package`` is a dotted name (``"repro.targets.flightgear"``, or
    the shorthand ``"flightgear"``) or an imported package object.
    """
    if isinstance(package, str):
        name = package if "." in package else f"repro.targets.{package}"
        package = importlib.import_module(name)
    report = SurfaceReport(source=package.__name__, probes=[], variables=[])
    if hasattr(package, "__path__"):
        for info in sorted(pkgutil.iter_modules(package.__path__), key=lambda i: i.name):
            submodule = importlib.import_module(f"{package.__name__}.{info.name}")
            report = report.merged_with(analyze_module(submodule))
        report.source = package.__name__
    else:
        report = analyze_module(package)
    return report


def check_campaign(config, report: SurfaceReport) -> list[str]:
    """Flag campaign configuration against the analysed surface.

    Returns human-readable problems: injections into dead variables,
    probes whose state is discarded, and variables the campaign names
    that the surface does not expose at the injection probe.
    """
    problems: list[str] = []
    module = config.module
    location = str(config.injection_location)
    exposed = {v.name: v for v in report.variables_at(module, location)}
    if not exposed:
        if module not in report.modules():
            problems.append(
                f"module {module!r} has no probe in the analysed surface"
            )
            return problems
        problems.append(
            f"no variables exposed at {module}@{location} in the analysed "
            "surface"
        )
        return problems
    discarded = [
        p
        for p in report.probes
        if p.module == module and p.location == location and p.result_discarded
    ]
    for probe in discarded:
        problems.append(
            f"probe at line {probe.line} discards its returned state: "
            "injections there cannot reach the module"
        )
    targeted = config.variables if config.variables is not None else tuple(exposed)
    for name in targeted:
        variable = exposed.get(name)
        if variable is None:
            problems.append(
                f"campaign injects into {name!r} which {module}@{location} "
                "does not expose"
            )
        elif variable.is_dead:
            problems.append(
                f"campaign injects into dead variable {name!r}: exposed at "
                f"{module}@{location} (line {variable.defined_line}) but "
                "never read back -- corruption cannot propagate"
            )
    return problems

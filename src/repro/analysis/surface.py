"""Injection-surface analysis of instrumented target modules.

A fault-injection campaign is only as useful as its injection surface:
flipping a bit in a variable the target never reads back cannot change
the execution, so every run against it is wasted compute and every
sampled instance a guaranteed non-failure (FastFlip's observation that
static analysis of the injection surface makes campaigns cheaper).
This module reads the instrumentation surface off the *AST* of a
target module -- no execution:

* every ``harness.probe("Module", Location.ENTRY, {...})`` call site,
  with the dict-literal keys as the instrumentable variables at that
  (module, location) probe (discovery shared with
  :mod:`repro.analysis.dataflow.probes`);
* the *def-use* trail of each probe, computed by the reaching
  definitions pass of :mod:`repro.analysis.dataflow`: which keys of
  the returned state dict the module actually reads afterwards
  (``state["x"]`` / ``state.get("x")``), at which lines -- including
  flow-sensitive cases the old single-pass heuristic missed, such as
  a state binding overwritten before any use;
* **dead** variables -- exposed at a probe but never read back -- and
  probes whose returned state is discarded entirely.

:func:`check_campaign` then flags a
:class:`~repro.injection.campaign.CampaignConfig` that spends runs
injecting into dead variables.

The analysis is conservative: a read through a non-literal key (or any
shape it does not recognise) marks *every* variable of that probe as
read, so "dead" is only ever reported with an explicit witness.  For
the stronger per-bit verdicts (observation channels, equivalence
classes) see :mod:`repro.analysis.prune`.
"""

from __future__ import annotations

import dataclasses
import inspect
import types

from repro.analysis.dataflow.analyzer import (
    VariableFlow,
    analyze_dataflow,
    analyze_dataflow_package,
)
from repro.analysis.dataflow.probes import ProbeSite

__all__ = [
    "ProbeSite",
    "SurfaceVariable",
    "SurfaceReport",
    "analyze_source",
    "analyze_module",
    "analyze_target_package",
    "check_campaign",
]


@dataclasses.dataclass(frozen=True)
class SurfaceVariable:
    """One instrumentable variable with its def-use sites."""

    module: str
    location: str
    name: str
    defined_line: int
    reads: tuple[int, ...]  # line numbers of state reads after the probe
    reason: str = ""  # dataflow provenance for the verdict

    @property
    def is_dead(self) -> bool:
        return not self.reads


@dataclasses.dataclass
class SurfaceReport:
    """The instrumentation surface of one or more analysed sources."""

    source: str
    probes: list[ProbeSite]
    variables: list[SurfaceVariable]

    def merged_with(self, other: "SurfaceReport") -> "SurfaceReport":
        return SurfaceReport(
            source=f"{self.source}, {other.source}",
            probes=self.probes + other.probes,
            variables=self.variables + other.variables,
        )

    def modules(self) -> list[str]:
        return sorted({p.module for p in self.probes})

    def variables_at(self, module: str, location: str) -> list[SurfaceVariable]:
        return [
            v
            for v in self.variables
            if v.module == module and v.location == str(location)
        ]

    def dead_variables(
        self, module: str | None = None, location: str | None = None
    ) -> list[SurfaceVariable]:
        return [
            v
            for v in self.variables
            if v.is_dead
            and (module is None or v.module == module)
            and (location is None or v.location == str(location))
        ]

    def lookup(self, module: str, location: str, name: str) -> SurfaceVariable | None:
        for v in self.variables_at(module, location):
            if v.name == name:
                return v
        return None


def _surface_variable(flow: VariableFlow) -> SurfaceVariable:
    """Project a dataflow verdict onto the surface's read-line view.

    Dead variables have no observable reads; live verdicts without a
    concrete read line (state escapes, dynamic keys, unsupported
    constructs) keep the ``-1`` "assume read" sentinel of the original
    heuristic so downstream consumers need not change.
    """
    if flow.status == "dead":
        reads: tuple[int, ...] = ()
    elif flow.read_lines:
        reads = flow.read_lines
    else:
        reads = (-1,)
    return SurfaceVariable(
        module=flow.module,
        location=flow.location,
        name=flow.name,
        defined_line=flow.defined_line,
        reads=reads,
        reason=flow.reason,
    )


def analyze_source(source: str, name: str = "<module>") -> SurfaceReport:
    """Analyse one module's source text."""
    dataflow = analyze_dataflow(source, name)
    return SurfaceReport(
        source=name,
        probes=list(dataflow.probes),
        variables=[_surface_variable(flow) for flow in dataflow.site_flows],
    )


def analyze_module(module: types.ModuleType) -> SurfaceReport:
    """Analyse an imported Python module."""
    return analyze_source(inspect.getsource(module), module.__name__)


def analyze_target_package(package: str | types.ModuleType) -> SurfaceReport:
    """Analyse every submodule of a target package.

    ``package`` is a dotted name (``"repro.targets.flightgear"``, or
    the shorthand ``"flightgear"``) or an imported package object.
    """
    dataflow = analyze_dataflow_package(package)
    source_name = package if isinstance(package, str) else package.__name__
    return SurfaceReport(
        source=str(source_name),
        probes=list(dataflow.probes),
        variables=[_surface_variable(flow) for flow in dataflow.site_flows],
    )


def check_campaign(config, report: SurfaceReport) -> list[str]:
    """Flag campaign configuration against the analysed surface.

    Returns human-readable problems: injections into dead variables,
    probes whose state is discarded, and variables the campaign names
    that the surface does not expose at the injection probe.
    """
    problems: list[str] = []
    module = config.module
    location = str(config.injection_location)
    exposed = {v.name: v for v in report.variables_at(module, location)}
    if not exposed:
        if module not in report.modules():
            problems.append(
                f"module {module!r} has no probe in the analysed surface"
            )
            return problems
        problems.append(
            f"no variables exposed at {module}@{location} in the analysed "
            "surface"
        )
        return problems
    discarded = [
        p
        for p in report.probes
        if p.module == module and p.location == location and p.result_discarded
    ]
    for probe in discarded:
        problems.append(
            f"probe at line {probe.line} discards its returned state: "
            "injections there cannot reach the module"
        )
    targeted = config.variables if config.variables is not None else tuple(exposed)
    for name in targeted:
        variable = exposed.get(name)
        if variable is None:
            problems.append(
                f"campaign injects into {name!r} which {module}@{location} "
                "does not expose"
            )
        elif variable.is_dead:
            problems.append(
                f"campaign injects into dead variable {name!r}: exposed at "
                f"{module}@{location} (line {variable.defined_line}) but "
                "never read back -- corruption cannot propagate"
            )
    return problems

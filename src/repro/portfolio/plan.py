"""Deployment plans: a solved portfolio made executable.

A :class:`DeploymentPlan` is the bridge from the optimizer's answer to
the serving tier: the selected detector names **pinned to registry
versions**, the budget the solve ran under, and the predicted coverage
and per-event cost -- versioned, JSON-round-trippable (format
``repro.portfolio.plan`` v1, byte-identical through
``to_json``/``from_dict``), and auditable after the fact:

* :meth:`validate_against` checks every pinned ``name@version`` is
  published in a registry;
* :meth:`build_registry` materializes the plan as a pinned subset
  registry -- the artefact :meth:`ServingTopology.apply_plan
  <repro.serving.supervisor.ServingTopology.apply_plan>` publishes
  atomically (workers drop unselected detectors at the epoch bump);
* :meth:`drift_report` compares the plan's predictions against merged
  serving metrics: the calibrated per-event cost against the measured
  per-state latency, per detector, with a relative tolerance.

A registry with a plan **attached**
(:meth:`~repro.runtime.registry.DetectorRegistry.attach_plan`) gates
publishes through the plan lint rules (``overbudget-deployment``,
``redundant-deployment``) under its usual lint policy.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from collections.abc import Mapping

from repro.portfolio.candidates import CandidateSet
from repro.portfolio.optimize import Selection

__all__ = ["PlannedDetector", "DeploymentPlan"]

_FORMAT = "repro.portfolio.plan"
_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class PlannedDetector:
    """One selected detector, pinned: name, registry version, and the
    per-detector numbers the plan was solved with."""

    name: str
    version: int
    coverage: float
    cost_s: float

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(
                f"{self.name}: version must be >= 1, got {self.version}"
            )
        if not math.isfinite(self.cost_s) or self.cost_s <= 0.0:
            raise ValueError(
                f"{self.name}: cost_s must be finite and > 0, got {self.cost_s}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "coverage": self.coverage,
            "cost_s": self.cost_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PlannedDetector":
        return cls(
            name=str(payload["name"]),
            version=int(payload["version"]),
            coverage=float(payload["coverage"]),
            cost_s=float(payload["cost_s"]),
        )


@dataclasses.dataclass(frozen=True)
class DeploymentPlan:
    """A versioned, executable deployment decision."""

    name: str
    budget_s: float
    coverage: float
    cost_s: float
    solver: str
    detectors: tuple[PlannedDetector, ...]
    #: serial of the registry snapshot the plan was solved against
    #: (``None`` when the plan was built straight from candidates).
    serial: int | None = None
    provenance: dict = dataclasses.field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        names = [d.name for d in self.detectors]
        if names != sorted(names) or len(set(names)) != len(names):
            raise ValueError(
                "planned detectors must be unique and sorted by name"
            )
        if not self.budget_s > 0.0:
            raise ValueError(f"budget_s must be > 0, got {self.budget_s}")

    # -- construction --------------------------------------------------
    @classmethod
    def from_selection(
        cls,
        selection: Selection,
        candidates: CandidateSet,
        *,
        name: str = "portfolio",
        registry=None,
        serial: int | None = None,
    ) -> "DeploymentPlan":
        """Pin a solver :class:`Selection` into an executable plan.

        Versions come from ``registry`` (its rollback-aware latest
        version per name) when given, else from the candidates'
        ``version`` fields.
        """
        planned = []
        for selected in selection.names:
            candidate = candidates.get(selected)
            version = (
                registry.latest_version(selected)
                if registry is not None
                else candidate.version
            )
            planned.append(
                PlannedDetector(
                    name=selected,
                    version=version,
                    coverage=candidate.coverage,
                    cost_s=candidate.cost_s,
                )
            )
        return cls(
            name=name,
            budget_s=selection.budget_s,
            coverage=selection.coverage,
            cost_s=selection.cost_s,
            solver=selection.solver,
            detectors=tuple(planned),
            serial=serial,
            provenance={"trace": [dict(step) for step in selection.trace]},
        )

    # -- access --------------------------------------------------------
    def names(self) -> list[str]:
        return [d.name for d in self.detectors]

    def predicted_cost(self) -> float:
        """Total per-event cost recomputed from the pinned detectors
        (sorted-name order, same float the solvers produce)."""
        return sum(d.cost_s for d in self.detectors)

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict = {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "name": self.name,
            "budget_s": self.budget_s,
            "coverage": self.coverage,
            "cost_s": self.cost_s,
            "solver": self.solver,
            "detectors": [d.to_dict() for d in self.detectors],
        }
        if self.serial is not None:
            payload["serial"] = self.serial
        if self.provenance:
            payload["provenance"] = dict(self.provenance)
        return payload

    def to_json(self) -> str:
        """Canonical serialization: same plan, same bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DeploymentPlan":
        if payload.get("format") != _FORMAT:
            raise ValueError(f"not a {_FORMAT} document")
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported {_FORMAT} version {payload.get('version')!r}"
            )
        serial = payload.get("serial")
        return cls(
            name=str(payload.get("name", "portfolio")),
            budget_s=float(payload["budget_s"]),
            coverage=float(payload["coverage"]),
            cost_s=float(payload["cost_s"]),
            solver=str(payload.get("solver", "unknown")),
            detectors=tuple(
                PlannedDetector.from_dict(spec)
                for spec in payload.get("detectors", ())
            ),
            serial=int(serial) if serial is not None else None,
            provenance=dict(payload.get("provenance", {})),
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "DeploymentPlan":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- registry / serving --------------------------------------------
    def validate_against(self, registry) -> list[str]:
        """Problems that make the plan unexecutable on ``registry``."""
        problems = []
        for planned in self.detectors:
            if planned.name not in registry:
                problems.append(
                    f"{planned.name}@v{planned.version} is not published"
                )
                continue
            if planned.version not in registry.versions(planned.name):
                problems.append(
                    f"{planned.name}@v{planned.version} is not published "
                    f"(have v{', v'.join(map(str, registry.versions(planned.name)))})"
                )
        return problems

    def build_registry(self, registry):
        """The plan as a pinned subset registry, plan attached.

        Copies each planned ``name@version`` out of ``registry`` into a
        fresh registry (same lint policy) and attaches this plan, so
        the result is gated by the plan lint rules and serializes with
        the plan embedded.  Raises ``ValueError`` when the plan does
        not validate against ``registry``.
        """
        problems = self.validate_against(registry)
        if problems:
            raise ValueError(
                f"plan {self.name!r} does not validate: "
                + "; ".join(problems)
            )
        subset = type(registry)(lint_policy=registry.lint_policy)
        for planned in self.detectors:
            entry = registry.lookup(planned.name, planned.version)
            # Gating off for the copies: the pair was already gated at
            # its original publish, and the plan check follows.
            subset.register(
                entry.detector,
                name=entry.name,
                version=entry.version,
                lint_policy="off",
            )
        subset.attach_plan(self)
        return subset

    def drift_report(
        self, metrics, *, cost_tolerance: float = 0.5
    ) -> dict:
        """Plan-vs-actual check against merged serving metrics.

        For every planned detector with serving traffic, compares the
        calibrated per-event cost against the measured per-state
        latency (``latency.total / evaluations``); a detector drifts
        when the relative error exceeds ``cost_tolerance``.  Planned
        detectors the metrics never saw are reported as ``missing``
        (the plan was not actually serving).
        """
        detectors: dict[str, dict] = {}
        drifted: list[str] = []
        missing: list[str] = []
        for planned in self.detectors:
            if planned.name not in metrics:
                missing.append(planned.name)
                continue
            stats = metrics.stats_for(planned.name)
            if not stats.evaluations:
                missing.append(planned.name)
                continue
            actual = stats.latency.total / stats.evaluations
            drift = (actual - planned.cost_s) / planned.cost_s
            detectors[planned.name] = {
                "predicted_cost_s": planned.cost_s,
                "actual_cost_s": actual,
                "drift": drift,
                "evaluations": stats.evaluations,
                "detections": stats.detections,
                "predicted_coverage": planned.coverage,
            }
            if abs(drift) > cost_tolerance:
                drifted.append(planned.name)
        return {
            "plan": self.name,
            "cost_tolerance": cost_tolerance,
            "detectors": detectors,
            "drifted": drifted,
            "missing": missing,
            "ok": not drifted and not missing,
        }

"""Detector portfolio optimization: best coverage per unit of overhead.

The paper picks the single best detector per dataset; DETOx
(PAPERS.md) asks the production question this package answers -- given
many candidate detectors and a runtime-overhead budget, **which subset
do you deploy**?  The pipeline already measures every input:

* coverage / false-positive rate from campaign evaluation;
* calibrated per-event compiled cost from
  :func:`repro.runtime.metrics.calibrate_detector_cost`;
* pairwise redundancy/implication proofs from
  :mod:`repro.analysis.redundancy` -- a detector implied by a selected
  one contributes zero *marginal* coverage.

Four modules turn those into a deployment decision:

* :mod:`~repro.portfolio.candidates` -- assemble
  :class:`DetectorCandidate` records into a :class:`CandidateSet`
  (proof graph included), from a registry or pooled across the Table
  II datasets;
* :mod:`~repro.portfolio.optimize` -- the placement knapsack:
  safeguarded greedy and exact branch-and-bound, deterministic and
  cross-checked;
* :mod:`~repro.portfolio.pareto` -- the budget sweep: the
  coverage-vs-overhead Pareto front with per-point provenance;
* :mod:`~repro.portfolio.plan` -- the executable
  :class:`DeploymentPlan`: versioned JSON, registry validation and
  gating, atomic publish through the serving topology, plan-vs-actual
  drift checks.

``repro portfolio`` (see :mod:`repro.cli`) is the command-line shell:
``candidates`` / ``solve`` / ``pareto`` / ``apply``.
"""

from repro.portfolio.candidates import (
    CandidateSet,
    DetectorCandidate,
    candidates_from_datasets,
    candidates_from_registry,
    evaluate_dataset_candidate,
)
from repro.portfolio.optimize import (
    Selection,
    exact_select,
    greedy_select,
    solve,
)
from repro.portfolio.pareto import ParetoPoint, default_budgets, pareto_front
from repro.portfolio.plan import DeploymentPlan, PlannedDetector

__all__ = [
    "CandidateSet",
    "DetectorCandidate",
    "candidates_from_datasets",
    "candidates_from_registry",
    "evaluate_dataset_candidate",
    "Selection",
    "greedy_select",
    "exact_select",
    "solve",
    "ParetoPoint",
    "default_budgets",
    "pareto_front",
    "DeploymentPlan",
    "PlannedDetector",
]

"""Budget-axis sweep: the coverage-vs-overhead Pareto front.

One knapsack solve answers "what do I deploy under *this* budget";
the deployment decision usually starts one step earlier -- what does
the trade-off curve look like?  :func:`pareto_front` sweeps the budget
axis and returns the non-dominated (cost, coverage) points, each with
full provenance: the budget that produced it, the selected names, the
solver used and its trace.

The sweep is deterministic and needs no grid tuning: the candidate
costs themselves define the interesting budgets.  Every subset's total
cost is a sum of candidate costs, so the front can only change at
those sums; we sweep the prefix sums of the sorted cost vector plus
every single-candidate cost (and any explicit ``budgets`` the caller
adds), dedupe, and solve each.  Points that select the same detector
set as a cheaper budget collapse; dominated points (another point has
both cost <= and coverage >=) are dropped.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro import observability as obs
from repro.observability.names import PORTFOLIO_PARETO
from repro.portfolio.candidates import CandidateSet
from repro.portfolio.optimize import EXACT_LIMIT, Selection, solve

__all__ = ["ParetoPoint", "pareto_front", "default_budgets"]


@dataclasses.dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated deployment on the coverage-vs-overhead front."""

    budget_s: float
    cost_s: float
    coverage: float
    names: tuple[str, ...]
    solver: str

    def to_dict(self) -> dict:
        return {
            "budget_s": self.budget_s,
            "cost_s": self.cost_s,
            "coverage": self.coverage,
            "names": list(self.names),
            "solver": self.solver,
        }

    @property
    def selection(self) -> Selection:
        return Selection(
            names=self.names,
            order=self.names,
            coverage=self.coverage,
            cost_s=self.cost_s,
            budget_s=self.budget_s,
            solver=self.solver,
        )


def default_budgets(candidates: CandidateSet) -> list[float]:
    """Every budget where the optimum can change: subset-cost landmarks.

    Exact breakpoints are the subset sums (exponential); the prefix
    sums of the ascending cost vector plus each single cost cover the
    sweep well in practice: they include the cheapest way to afford k
    detectors for every k, and every single-candidate entry point.
    """
    costs = sorted(candidates.get(name).cost_s for name in candidates.names())
    budgets: set[float] = set(costs)
    prefix = 0.0
    for cost in costs:
        prefix += cost
        budgets.add(prefix)
    return sorted(budgets)


def pareto_front(
    candidates: CandidateSet,
    budgets: Iterable[float] | None = None,
    *,
    solver: str = "auto",
    exact_limit: int = EXACT_LIMIT,
) -> list[ParetoPoint]:
    """Solve along the budget axis and keep the non-dominated points.

    Returns points sorted by (cost, coverage) ascending.  With the
    default budgets the front is a complete summary of the trade-off
    curve up to the all-candidates deployment; callers wanting specific
    operating points pass ``budgets`` explicitly (extra points only
    refine the front, never distort it, since dominated solves are
    dropped).
    """
    swept = (
        sorted({float(b) for b in budgets})
        if budgets is not None
        else default_budgets(candidates)
    )
    if any(b <= 0.0 for b in swept):
        raise ValueError("budgets must all be > 0")
    with obs.span(
        PORTFOLIO_PARETO, candidates=len(candidates), budgets=len(swept)
    ) as span:
        raw: list[ParetoPoint] = []
        seen: set[tuple[str, ...]] = set()
        for budget in swept:
            selection = solve(
                candidates, budget, solver=solver, exact_limit=exact_limit
            )
            if not selection.names or selection.names in seen:
                continue
            seen.add(selection.names)
            raw.append(
                ParetoPoint(
                    budget_s=budget,
                    cost_s=selection.cost_s,
                    coverage=selection.coverage,
                    names=selection.names,
                    solver=selection.solver,
                )
            )
        front: list[ParetoPoint] = []
        for point in sorted(raw, key=lambda p: (p.cost_s, -p.coverage)):
            dominated = any(
                kept.cost_s <= point.cost_s
                and kept.coverage >= point.coverage
                for kept in front
            )
            if not dominated:
                front.append(point)
        span.set("points", len(front))
        return front

"""Candidate assembly: everything the placement knapsack needs to know.

One :class:`DetectorCandidate` is a deployable detector reduced to the
three numbers the optimizer trades off -- **coverage** (what fraction
of failure-inducing states it flags), **false positive rate** (what it
costs in spurious alarms) and **cost** (calibrated per-event seconds of
the compiled predicate, see
:func:`repro.runtime.metrics.calibrate_detector_cost`) -- plus the
evidence behind them:

* an optional explicit **detection set** (ids of the failure runs the
  detector flagged in campaign evaluation), which makes set-union
  coverage exact;
* the **redundancy proofs** of :mod:`repro.analysis.redundancy`: a
  candidate proven to imply an already-selected one contributes zero
  marginal coverage, whatever its standalone number says.

:class:`CandidateSet` owns the proof graph (transitively closed) and
answers the optimizer's one question -- ``union_coverage(names)`` --
in two modes:

* **exact** (every selected candidate carries a detection set): the
  size of the union of detection sets over the universe of activated
  failure runs; monotone and submodular by construction;
* **proof-graph** (aggregate coverages only): candidates absorbed by a
  selected implier are dropped, the survivors combine under the
  complement-product rule ``1 - prod(1 - c_i)`` -- the proofs are
  exact, the independence across unproven pairs is an assumption and
  is reported as such in the provenance.

:func:`candidates_from_datasets` builds the production instance: one
candidate per Table II dataset (the paper's best-model-per-dataset,
made comparable), evaluated through the orchestration pool so the 18
campaigns and fits run in parallel.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Mapping

from repro import observability as obs
from repro.observability.names import PORTFOLIO_CANDIDATES

__all__ = [
    "DetectorCandidate",
    "CandidateSet",
    "candidates_from_registry",
    "candidates_from_datasets",
    "evaluate_dataset_candidate",
]

_FORMAT = "repro.portfolio.candidates"
_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class DetectorCandidate:
    """One deployable detector's utility record.

    ``cost_s`` is the calibrated per-event evaluation cost in seconds;
    ``detected`` (optional) the ids of the activated failure runs the
    detector flagged, over the owning set's universe.  ``provenance``
    records where each number came from (campaign, calibration run,
    registry version) and never affects optimization.
    """

    name: str
    coverage: float
    cost_s: float
    fpr: float = 0.0
    version: int = 1
    detected: frozenset[int] | None = None
    provenance: dict = dataclasses.field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(
                f"{self.name}: coverage must be in [0, 1], got {self.coverage}"
            )
        if not 0.0 <= self.fpr <= 1.0:
            raise ValueError(
                f"{self.name}: fpr must be in [0, 1], got {self.fpr}"
            )
        if not math.isfinite(self.cost_s) or self.cost_s <= 0.0:
            raise ValueError(
                f"{self.name}: cost_s must be finite and > 0, got {self.cost_s}"
            )
        if self.version < 1:
            raise ValueError(
                f"{self.name}: version must be >= 1, got {self.version}"
            )

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "coverage": self.coverage,
            "cost_s": self.cost_s,
            "fpr": self.fpr,
            "version": self.version,
        }
        if self.detected is not None:
            payload["detected"] = sorted(self.detected)
        if self.provenance:
            payload["provenance"] = dict(self.provenance)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DetectorCandidate":
        detected = payload.get("detected")
        return cls(
            name=str(payload["name"]),
            coverage=float(payload["coverage"]),
            cost_s=float(payload["cost_s"]),
            fpr=float(payload.get("fpr", 0.0)),
            version=int(payload.get("version", 1)),
            detected=(
                frozenset(int(i) for i in detected)
                if detected is not None
                else None
            ),
            provenance=dict(payload.get("provenance", {})),
        )


class CandidateSet:
    """Candidates plus the proof graph, ready for the solvers.

    ``implications`` maps a candidate name to the names whose detection
    sets provably contain its own (``a -> {b}`` reads "a implies b": a
    never fires without b, so next to b, a adds nothing).  The
    constructor closes the relation transitively.  ``activated`` is the
    universe size for detection-set coverage; it defaults to the size
    of the union of all detection sets (and must be >= it when given).
    """

    def __init__(
        self,
        candidates: Iterable[DetectorCandidate],
        *,
        implications: Mapping[str, Iterable[str]] | None = None,
        activated: int | None = None,
    ) -> None:
        ordered = sorted(candidates, key=lambda c: c.name)
        names = [c.name for c in ordered]
        if len(set(names)) != len(names):
            raise ValueError("candidate names must be unique")
        self._by_name: dict[str, DetectorCandidate] = {
            c.name: c for c in ordered
        }
        known = set(names)
        graph: dict[str, set[str]] = {name: set() for name in names}
        for left, rights in (implications or {}).items():
            if left not in known:
                raise ValueError(f"implication source {left!r} is not a candidate")
            for right in rights:
                if right not in known:
                    raise ValueError(
                        f"implication target {right!r} is not a candidate"
                    )
                if right != left:
                    graph[left].add(right)
        self.implications: dict[str, frozenset[str]] = {
            name: frozenset(targets)
            for name, targets in _transitive_closure(graph).items()
        }
        union_all: set[int] = set()
        for candidate in ordered:
            if candidate.detected is not None:
                union_all |= candidate.detected
        if activated is None:
            activated = len(union_all) if union_all else 0
        if union_all and activated < len(union_all):
            raise ValueError(
                f"activated={activated} is smaller than the union of "
                f"detection sets ({len(union_all)})"
            )
        self.activated = int(activated)
        #: exact set-union coverage only when *every* candidate carries
        #: a detection set; a mixed bag falls back to the proof-graph
        #: model for all of them, so one mode governs the whole solve.
        self.exact = bool(ordered) and all(
            c.detected is not None for c in ordered
        )

    # -- access --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        for name in self.names():
            yield self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def get(self, name: str) -> DetectorCandidate:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown candidate {name!r}") from None

    def total_cost(self, names: Iterable[str]) -> float:
        """Summed per-event cost, in canonical (sorted-name) order so
        the float is identical however the selection was built."""
        return sum(self.get(name).cost_s for name in sorted(set(names)))

    # -- coverage ------------------------------------------------------
    def union_coverage(self, names: Iterable[str]) -> float:
        """Coverage of deploying ``names`` together.

        Exact set union when detection sets are available; otherwise
        the proof-graph model (implied candidates absorbed, survivors
        combined by complement product).  Deterministic: iteration is
        in sorted-name order in both modes.
        """
        selected = sorted(set(names))
        if not selected:
            return 0.0
        if self.exact:
            if self.activated == 0:
                return 0.0
            union: set[int] = set()
            for name in selected:
                union |= self.get(name).detected  # type: ignore[arg-type]
            return len(union) / self.activated
        survivors = self._maximal(selected)
        complement = 1.0
        for name in survivors:
            complement *= 1.0 - self.get(name).coverage
        return 1.0 - complement

    def marginal_coverage(self, name: str, selected: Iterable[str]) -> float:
        """Coverage ``name`` adds on top of ``selected`` (never < 0)."""
        base = list(selected)
        gain = self.union_coverage([*base, name]) - self.union_coverage(base)
        return max(gain, 0.0)

    def _maximal(self, selected: list[str]) -> list[str]:
        """Selected names not absorbed by another selected name.

        ``a`` is absorbed when it implies some selected ``b`` (its
        detection set is contained in b's).  Equivalent pairs absorb
        each other; the lexicographically smallest survives so the
        result is deterministic.
        """
        chosen = set(selected)
        survivors = []
        for name in selected:
            absorbers = self.implications.get(name, frozenset()) & chosen
            mutual_only = all(
                name in self.implications.get(other, frozenset())
                and name < other
                for other in absorbers
            )
            if not absorbers or mutual_only:
                survivors.append(name)
        return survivors

    def redundant_pairs(
        self, names: Iterable[str]
    ) -> list[tuple[str, str]]:
        """Pairs within ``names`` where the first implies the second."""
        chosen = sorted(set(names))
        pairs = []
        for name in chosen:
            for other in sorted(self.implications.get(name, frozenset())):
                if other in chosen and other != name:
                    pairs.append((name, other))
        return pairs

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "activated": self.activated,
            "candidates": [c.to_dict() for c in self],
            "implications": {
                name: sorted(targets)
                for name, targets in sorted(self.implications.items())
                if targets
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CandidateSet":
        if payload.get("format") != _FORMAT:
            raise ValueError(f"not a {_FORMAT} document")
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported {_FORMAT} version {payload.get('version')!r}"
            )
        return cls(
            (
                DetectorCandidate.from_dict(spec)
                for spec in payload.get("candidates", ())
            ),
            implications=payload.get("implications", {}),
            activated=payload.get("activated"),
        )


def _transitive_closure(
    graph: Mapping[str, set[str]]
) -> dict[str, set[str]]:
    closed = {name: set(targets) for name, targets in graph.items()}
    changed = True
    while changed:
        changed = False
        for name in closed:
            reachable = set(closed[name])
            for target in list(closed[name]):
                reachable |= closed.get(target, set())
            reachable.discard(name)
            if reachable != closed[name]:
                closed[name] = reachable
                changed = True
    return closed


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def candidates_from_registry(
    registry,
    *,
    coverage: Mapping[str, float],
    costs: Mapping[str, float],
    fpr: Mapping[str, float] | None = None,
    detected: Mapping[str, Iterable[int]] | None = None,
    activated: int | None = None,
) -> CandidateSet:
    """Assemble candidates from a registry's newest versions.

    ``coverage``/``costs`` (and optionally ``fpr``/``detected``) are
    keyed by detector name; every published name must be measured.
    Pairwise redundancy proofs over the registry populate the
    implication graph (battery evidence is ignored -- only proofs may
    zero a marginal).
    """
    from repro.analysis.redundancy import compare_predicates

    entries = registry.latest()
    missing = [e.name for e in entries if e.name not in coverage]
    if missing:
        raise ValueError(f"no coverage measurement for: {', '.join(missing)}")
    missing = [e.name for e in entries if e.name not in costs]
    if missing:
        raise ValueError(f"no cost measurement for: {', '.join(missing)}")
    candidates = []
    for entry in entries:
        spec_detected = None
        if detected is not None and entry.name in detected:
            spec_detected = frozenset(int(i) for i in detected[entry.name])
        candidates.append(
            DetectorCandidate(
                name=entry.name,
                version=entry.version,
                coverage=float(coverage[entry.name]),
                cost_s=float(costs[entry.name]),
                fpr=float((fpr or {}).get(entry.name, 0.0)),
                detected=spec_detected,
                provenance={"source": "registry", "mode": entry.compiled.mode},
            )
        )
    implications: dict[str, set[str]] = {}
    for i, left in enumerate(entries):
        for right in entries[i + 1:]:
            relation = compare_predicates(
                left.detector.predicate, right.detector.predicate
            )
            if not relation.proven:
                continue
            if relation.relation in ("equivalent", "implies"):
                implications.setdefault(left.name, set()).add(right.name)
            if relation.relation in ("equivalent", "implied_by"):
                implications.setdefault(right.name, set()).add(left.name)
    return CandidateSet(
        candidates, implications=implications, activated=activated
    )


def evaluate_dataset_candidate(
    dataset_name: str,
    scale_name: str,
    *,
    repeats: int = 9,
    warmup: int = 2,
) -> dict:
    """One pooled task: mine, evaluate and calibrate one dataset.

    Module-level (picklable) so the orchestration pool can fan the 18
    datasets out across worker processes.  Returns a JSON-compatible
    candidate payload: coverage is the detector's true-positive rate
    over the dataset's failure rows, the detection set the indices of
    the failure rows it flags (local ids; the assembling caller offsets
    them into the shared universe), and cost the calibrated per-event
    seconds of the *compiled* predicate over the dataset's states.
    """
    import numpy as np

    from repro.core.extraction import tree_to_predicate
    from repro.core.preprocess import default_plan_for, make_learner
    from repro.experiments.datasets import generate_dataset
    from repro.runtime.compile import compile_predicate
    from repro.runtime.metrics import calibrate_detector_cost

    dataset = generate_dataset(dataset_name, scale_name)
    plan = default_plan_for("c45")
    rng = np.random.default_rng((0, 0xF1A7))
    prepared = plan.apply(dataset, rng)
    model = make_learner("c45").fit(prepared)
    predicate = tree_to_predicate(
        model.root, dataset.class_attribute.values, 1
    )
    compiled = compile_predicate(predicate)
    index = {a.name: i for i, a in enumerate(dataset.attributes)}
    x = np.asarray(dataset.x, dtype=np.float64)
    flags = compiled.evaluate_rows(x, index)
    y = np.asarray(dataset.y)
    failed = y == 1
    n_failed = int(failed.sum())
    detected_rows = sorted(int(i) for i in np.flatnonzero(flags & failed))
    fp = int((flags & ~failed).sum())
    benign = int((~failed).sum())
    states = [
        {a.name: float(value) for a, value in zip(dataset.attributes, row)}
        for row in x[: min(len(x), 256)]
    ]
    calibration = calibrate_detector_cost(
        compiled, states, repeats=repeats, warmup=warmup, name=dataset_name
    )
    return {
        "name": dataset_name,
        "coverage": (len(detected_rows) / n_failed) if n_failed else 0.0,
        "fpr": (fp / benign) if benign else 0.0,
        "cost_s": calibration.per_event_s,
        "detected": detected_rows,
        "activated": n_failed,
        "provenance": {
            "source": "dataset",
            "scale": scale_name,
            "instances": int(len(y)),
            "failures": n_failed,
            "calibration": calibration.to_dict(),
        },
    }


def candidates_from_datasets(
    names: Iterable[str],
    scale: str = "smoke",
    *,
    pool=None,
    jobs: int | None = None,
    repeats: int = 9,
    warmup: int = 2,
) -> CandidateSet:
    """Build one candidate per Table II dataset, pooled.

    Each dataset contributes one mined detector guarding its own
    (module, location); their failure universes are disjoint, so the
    shared universe is the concatenation (per-dataset run ids offset by
    the failures seen so far) and marginal coverage across datasets is
    exact set union.  ``pool``/``jobs`` run the per-dataset work
    through :mod:`repro.orchestration` -- campaign logs are cached, so
    repeated builds only pay for mining and calibration.
    """
    from repro.orchestration.pool import make_pool
    from repro.orchestration.tasks import Task, fingerprint_of

    ordered = sorted(set(names))
    with obs.span(PORTFOLIO_CANDIDATES, datasets=len(ordered), scale=scale):
        owns_pool = pool is None
        if owns_pool:
            pool = make_pool(jobs)
        tasks = [
            Task(
                task_id=f"candidate:{name}",
                fingerprint=fingerprint_of(
                    {"dataset": name, "scale": scale, "repeats": repeats}
                ),
                fn=evaluate_dataset_candidate,
                args=(name, scale),
            )
            for name in ordered
        ]
        try:
            outcomes = pool.run(tasks)
        finally:
            if owns_pool:
                pool.close()
        payloads = []
        for task in tasks:
            outcome = outcomes[task.task_id]
            if not outcome.ok:
                raise RuntimeError(
                    f"candidate evaluation failed for {task.task_id}: "
                    f"{outcome.error}"
                )
            payloads.append(outcome.result)
        # Offset each dataset's local failure-row ids into one shared,
        # disjoint universe (assembly order = sorted dataset names).
        offset = 0
        candidates = []
        for payload in payloads:
            detected = frozenset(offset + int(i) for i in payload["detected"])
            candidates.append(
                DetectorCandidate(
                    name=payload["name"],
                    coverage=float(payload["coverage"]),
                    fpr=float(payload["fpr"]),
                    cost_s=float(payload["cost_s"]),
                    detected=detected,
                    provenance=dict(payload["provenance"]),
                )
            )
            offset += int(payload["activated"])
        return CandidateSet(candidates, activated=offset)

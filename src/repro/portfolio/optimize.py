"""The placement knapsack: which detectors to deploy under a budget.

Given a :class:`~repro.portfolio.candidates.CandidateSet` and a
per-event cost budget (seconds), pick the subset maximising union
coverage with total cost within budget.  Two solvers, both
deterministic and seed-free:

* :func:`greedy_select` -- cost-benefit greedy (largest marginal
  coverage per unit cost among affordable candidates), safeguarded by
  the best single affordable candidate (Khuller-Moss-Naor): for
  uniform costs the classic ``1 - 1/e`` bound of submodular greedy
  applies, for general costs the safeguarded greedy is within
  ``(1 - 1/e) / 2`` of optimal -- the property suite checks both
  against the exact solver on random instances;
* :func:`exact_select` -- depth-first branch and bound over subsets in
  canonical candidate order, admissibly bounded by the union coverage
  of the current selection plus every remaining affordable candidate;
  exact but exponential, so it is capped (default 20 candidates).

:func:`solve` picks exact when the instance is small enough and greedy
otherwise.  Ties break identically everywhere -- higher coverage, then
lower cost, then lexicographically smallest name tuple -- so repeated
solves (and solves on round-tripped candidate documents) return
byte-identical selections.
"""

from __future__ import annotations

import dataclasses

from repro import observability as obs
from repro.observability.names import COUNTER_EXPLORED, PORTFOLIO_SOLVE
from repro.portfolio.candidates import CandidateSet

__all__ = ["Selection", "greedy_select", "exact_select", "solve"]

#: Largest instance the exact solver accepts (2^n subsets, bounded).
EXACT_LIMIT = 20


@dataclasses.dataclass(frozen=True)
class Selection:
    """One solved deployment: the chosen names and their predictions.

    ``names`` is canonical (sorted); ``order`` preserves greedy pick
    order (equals ``names`` for the exact solver).  ``trace`` carries
    per-pick provenance -- marginal gain, cost ratio, and for the
    exact solver the number of subtrees explored.
    """

    names: tuple[str, ...]
    order: tuple[str, ...]
    coverage: float
    cost_s: float
    budget_s: float
    solver: str
    trace: tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        return {
            "names": list(self.names),
            "order": list(self.order),
            "coverage": self.coverage,
            "cost_s": self.cost_s,
            "budget_s": self.budget_s,
            "solver": self.solver,
            "trace": [dict(step) for step in self.trace],
        }


def _better(
    coverage: float, cost: float, names: tuple[str, ...],
    than: tuple[float, float, tuple[str, ...]],
) -> bool:
    """The one tie-break everywhere: coverage up, cost down, names."""
    best_coverage, best_cost, best_names = than
    if coverage != best_coverage:
        return coverage > best_coverage
    if cost != best_cost:
        return cost < best_cost
    return names < best_names


def _check_budget(budget_s: float) -> None:
    if not budget_s > 0.0:
        raise ValueError(f"budget_s must be > 0, got {budget_s}")


def greedy_select(candidates: CandidateSet, budget_s: float) -> Selection:
    """Safeguarded cost-benefit greedy selection."""
    _check_budget(budget_s)
    with obs.span(
        PORTFOLIO_SOLVE, solver="greedy", candidates=len(candidates)
    ) as span:
        chosen: list[str] = []
        spent = 0.0
        trace: list[dict] = []
        remaining = candidates.names()
        while True:
            best_name = None
            best_key: tuple[float, float, str] | None = None
            for name in remaining:
                cost = candidates.get(name).cost_s
                if candidates.total_cost([*chosen, name]) > budget_s:
                    continue
                gain = candidates.marginal_coverage(name, chosen)
                if gain <= 0.0:
                    continue
                key = (gain / cost, -cost, name)
                # Highest density wins; at equal density the cheaper
                # candidate, then the lexicographically smaller name.
                if best_key is None or (
                    key[0] > best_key[0]
                    or (key[0] == best_key[0] and key[1] > best_key[1])
                    or (key[:2] == best_key[:2] and name < best_key[2])
                ):
                    best_key = key
                    best_name = name
            if best_name is None:
                break
            gain = candidates.marginal_coverage(best_name, chosen)
            chosen.append(best_name)
            spent = candidates.total_cost(chosen)
            remaining.remove(best_name)
            trace.append(
                {
                    "pick": best_name,
                    "marginal_coverage": gain,
                    "cost_s": candidates.get(best_name).cost_s,
                    "density": gain / candidates.get(best_name).cost_s,
                    "spent_s": spent,
                }
            )
        coverage = candidates.union_coverage(chosen)
        # Khuller-Moss-Naor safeguard: the single best affordable
        # candidate can beat ratio-greedy on knapsack instances.
        single_best: tuple[float, float, tuple[str, ...]] | None = None
        for name in candidates.names():
            cost = candidates.get(name).cost_s
            if cost > budget_s:
                continue
            single = (candidates.union_coverage([name]), cost, (name,))
            if single_best is None or _better(*single, than=single_best):
                single_best = single
        if single_best is not None and _better(
            *single_best, than=(coverage, spent, tuple(chosen))
        ):
            coverage, spent, names = single_best
            chosen = list(names)
            trace = [
                {
                    "pick": names[0],
                    "marginal_coverage": coverage,
                    "cost_s": spent,
                    "density": coverage / spent,
                    "spent_s": spent,
                    "safeguard": "best-single",
                }
            ]
        span.set("selected", len(chosen))
        return Selection(
            names=tuple(sorted(chosen)),
            order=tuple(chosen),
            coverage=coverage,
            cost_s=candidates.total_cost(chosen),
            budget_s=budget_s,
            solver="greedy",
            trace=tuple(trace),
        )


def exact_select(
    candidates: CandidateSet,
    budget_s: float,
    *,
    limit: int = EXACT_LIMIT,
) -> Selection:
    """Optimal selection by branch and bound (small instances only)."""
    _check_budget(budget_s)
    if len(candidates) > limit:
        raise ValueError(
            f"exact solver capped at {limit} candidates, got "
            f"{len(candidates)}; use greedy_select (or solve())"
        )
    names = candidates.names()
    with obs.span(
        PORTFOLIO_SOLVE, solver="exact", candidates=len(names)
    ) as span:
        best: tuple[float, float, tuple[str, ...]] = (0.0, 0.0, ())
        explored = 0

        def descend(i: int, chosen: tuple[str, ...]) -> None:
            nonlocal best, explored
            explored += 1
            coverage = candidates.union_coverage(chosen)
            cost = candidates.total_cost(chosen)
            if _better(coverage, cost, chosen, than=best):
                best = (coverage, cost, chosen)
            if i == len(names):
                return
            # Admissible bound: adding every remaining individually
            # affordable candidate can only overstate what any feasible
            # completion achieves (coverage is monotone in the set).
            optimistic = [
                name
                for name in names[i:]
                if candidates.total_cost([*chosen, name]) <= budget_s
            ]
            if not optimistic:
                return
            bound = candidates.union_coverage([*chosen, *optimistic])
            if bound < best[0]:
                return
            name = names[i]
            if candidates.total_cost([*chosen, name]) <= budget_s:
                descend(i + 1, (*chosen, name))
            descend(i + 1, chosen)

        descend(0, ())
        span.count(COUNTER_EXPLORED, explored)
        span.set("selected", len(best[2]))
        coverage, cost, chosen = best
        return Selection(
            names=tuple(sorted(chosen)),
            order=tuple(sorted(chosen)),
            coverage=coverage,
            cost_s=cost,
            budget_s=budget_s,
            solver="exact",
            trace=({"explored": explored},),
        )


def solve(
    candidates: CandidateSet,
    budget_s: float,
    *,
    solver: str = "auto",
    exact_limit: int = EXACT_LIMIT,
) -> Selection:
    """Exact when the instance allows it, safeguarded greedy otherwise."""
    if solver not in ("auto", "greedy", "exact"):
        raise ValueError(
            f"solver must be auto, greedy or exact, got {solver!r}"
        )
    if solver == "exact" or (
        solver == "auto" and len(candidates) <= exact_limit
    ):
        return exact_select(candidates, budget_s, limit=exact_limit)
    return greedy_select(candidates, budget_s)

"""Content-addressed reuse caches for the mining data plane.

Step 4's refinement grid re-derives near-identical intermediate
artefacts hundreds of times: the same training fold feeds 15 SMOTE
levels and 15 neighbour counts, and every plan re-partitions the same
class vector into the same stratified folds.  The caches here memoise
those artefacts keyed by **content fingerprints** (the same
sha256-prefix convention as :func:`repro.orchestration.tasks.fingerprint_of`),
so reuse is driven by what the data *is*, never by where it came from
-- journal/resume and parallel-schedule semantics are untouched because
a cache hit returns exactly the bytes a recompute would.

Caches are process-local, bounded (LRU), and registered globally so
benchmarks can measure the cold path honestly via
:func:`clear_reuse_caches`.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro import observability as obs

__all__ = [
    "ContentCache",
    "array_fingerprint",
    "clear_reuse_caches",
    "reuse_caches_disabled",
    "caching_disabled",
]

_REGISTRY: list["ContentCache"] = []
_REGISTRY_LOCK = threading.Lock()
_DISABLED = False


def caching_disabled() -> bool:
    """True while inside a :func:`reuse_caches_disabled` block."""
    return _DISABLED


@contextlib.contextmanager
def reuse_caches_disabled():
    """Disable every reuse cache for the duration of the block.

    While active, :meth:`ContentCache.get` always misses,
    :meth:`ContentCache.put` stores nothing, and consumers that keep a
    non-cached reference path (e.g. :func:`repro.mining.sampling.smote`
    per-seed neighbour queries) fall back to it -- giving benchmarks an
    honest pre-reuse baseline without a separate build.  Results are
    bit-identical either way; only the work is repeated.
    """
    global _DISABLED
    previous = _DISABLED
    _DISABLED = True
    try:
        yield
    finally:
        _DISABLED = previous


def array_fingerprint(*arrays: np.ndarray) -> str:
    """Fingerprint one or more arrays by dtype, shape, and raw bytes.

    Two arrays with equal fingerprints are bit-identical (modulo sha256
    collisions), so anything deterministically derived from one can be
    reused for the other.  NaNs compare by payload bytes, which is the
    conservative direction for cache keys.
    """
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()[:16]


class ContentCache:
    """A small, thread-safe LRU cache keyed by content fingerprints.

    Values must be treated as immutable by callers: a hit hands back
    the stored object itself, so mutating it would poison later reuse.
    """

    def __init__(self, maxsize: int = 8, name: str = "") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()
        with _REGISTRY_LOCK:
            _REGISTRY.append(self)

    def get(self, key: Any) -> Any | None:
        if _DISABLED:
            return None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                if obs.enabled():
                    obs.count(f"cache.{self.name or 'anon'}.hits")
                return self._entries[key]
            self.misses += 1
            if obs.enabled():
                obs.count(f"cache.{self.name or 'anon'}.misses")
            return None

    def put(self, key: Any, value: Any) -> None:
        if _DISABLED:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def clear_reuse_caches() -> None:
    """Empty every registered cache (benchmark cold-path control)."""
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY)
    for cache in caches:
        cache.clear()

"""Bagging (bootstrap aggregating) over C4.5 trees.

Breiman's classic variance-reduction ensemble, rounding out the
learner registry's cost/ensemble corner (Section IV cites Breiman et
al. for CART and the altered-priors approach; bagging is the companion
technique every Weka-era comparison ran).  Each round fits an unpruned
C4.5 tree on a bootstrap resample; prediction averages the trees'
class distributions.

Like AdaBoost, the ensemble is not symbolic, so it contributes to the
learner ablation but cannot produce a detection predicate -- another
data point for the paper's symbolic-learner argument.
"""

from __future__ import annotations

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset
from repro.mining.tree.induction import C45DecisionTree

__all__ = ["Bagging"]


class Bagging(Classifier):
    """Bootstrap-aggregated C4.5 trees.

    Parameters
    ----------
    n_models:
        Number of bootstrap rounds.
    seed:
        Seed for the bootstrap resampling (fit is deterministic).
    prune:
        Whether member trees are pruned (bagging classically uses
        unpruned, high-variance members).
    """

    def __init__(
        self, n_models: int = 10, seed: int = 0, prune: bool = False
    ) -> None:
        if n_models < 1:
            raise ValueError("n_models must be at least 1")
        self.n_models = n_models
        self.seed = seed
        self.prune = prune
        self.models: list[C45DecisionTree] = []

    def fit(self, dataset: Dataset) -> "Bagging":
        if len(dataset) == 0:
            raise ValueError("cannot bag on an empty dataset")
        self._remember_schema(dataset)
        rng = np.random.default_rng(self.seed)
        self.models = []
        n = len(dataset)
        for _ in range(self.n_models):
            indices = rng.integers(0, n, n)
            sample = dataset.subset(indices)
            if len(np.unique(sample.y)) < dataset.n_classes:
                # Degenerate bootstrap: force one instance of each
                # missing class back in so the member sees every label.
                missing = [
                    c for c in range(dataset.n_classes)
                    if not (sample.y == c).any() and (dataset.y == c).any()
                ]
                if missing:
                    extra = np.concatenate(
                        [np.flatnonzero(dataset.y == c)[:1] for c in missing]
                    )
                    sample = sample.concat(dataset.subset(extra))
            self.models.append(
                C45DecisionTree(prune=self.prune).fit(sample)
            )
        return self

    def distribution(self, x: np.ndarray) -> np.ndarray:
        schema = self._check_fitted()
        if not self.models:
            raise RuntimeError("bagging ensemble is empty")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        total = np.zeros((len(x), schema.n_classes))
        for model in self.models:
            total += model.distribution(x)
        return total / len(self.models)

    @property
    def mean_member_size(self) -> float:
        if not self.models:
            raise RuntimeError("bagging ensemble is empty")
        return float(np.mean([m.node_count for m in self.models]))

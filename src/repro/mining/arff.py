"""ARFF reader/writer.

The paper's Step 2 converts PROPANE logs into "the ARFF format used by
the Weka Data Mining suite".  This module implements the ARFF dialect
that conversion needs: ``@relation``, ``@attribute`` (``numeric``/
``real``/``integer`` and nominal ``{a,b,c}`` kinds), ``@data`` with
comma-separated rows, ``?`` for missing values, ``%`` comments, quoted
identifiers, and optional per-instance weights in trailing ``{w}``
braces (Weka's sparse-weight extension).

By convention the **last** attribute in the file is the class
attribute, matching Weka's default.
"""

from __future__ import annotations

import io
import math
import re

import numpy as np

from repro.mining.dataset import Attribute, Dataset, DatasetError

__all__ = ["ArffError", "dump_arff", "dumps_arff", "load_arff", "loads_arff"]


class ArffError(ValueError):
    """Raised on malformed ARFF input."""


_NOMINAL_RE = re.compile(r"^\{(.*)\}$", re.DOTALL)
_WEIGHT_RE = re.compile(r",?\s*\{\s*([0-9eE+.\-]+)\s*\}\s*$")


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def dumps_arff(dataset: Dataset, include_weights: bool = False) -> str:
    """Serialise a dataset to an ARFF string."""
    out = io.StringIO()
    dump_arff(dataset, out, include_weights=include_weights)
    return out.getvalue()


def dump_arff(
    dataset: Dataset, fp, include_weights: bool = False
) -> None:
    """Write a dataset to a file-like object in ARFF format."""
    fp.write(f"@relation {_quote(dataset.name)}\n\n")
    for attribute in dataset.attributes:
        fp.write(f"@attribute {_quote(attribute.name)} {_kind(attribute)}\n")
    fp.write(
        f"@attribute {_quote(dataset.class_attribute.name)} "
        f"{_kind(dataset.class_attribute)}\n"
    )
    fp.write("\n@data\n")
    for i in range(len(dataset)):
        cells = []
        for j, attribute in enumerate(dataset.attributes):
            value = dataset.x[i, j]
            if math.isnan(value):
                cells.append("?")
            elif attribute.is_nominal:
                cells.append(_quote(attribute.value_of(int(value))))
            else:
                cells.append(repr(float(value)))
        cells.append(_quote(dataset.decode_label(i)))
        line = ",".join(cells)
        if include_weights and dataset.weights[i] != 1.0:
            line += f", {{{float(dataset.weights[i])!r}}}"
        fp.write(line + "\n")


def _kind(attribute: Attribute) -> str:
    if attribute.is_numeric:
        return "numeric"
    return "{" + ",".join(_quote(v) for v in attribute.values) + "}"


def _quote(token: str) -> str:
    if re.search(r"[\s,{}%'\"]", token) or token == "":
        escaped = token.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return token


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def loads_arff(text: str) -> Dataset:
    """Parse an ARFF string into a dataset (last attribute = class)."""
    return load_arff(io.StringIO(text))


def load_arff(fp) -> Dataset:
    """Parse ARFF from a file-like object (last attribute = class)."""
    relation = "dataset"
    attributes: list[Attribute] = []
    rows: list[list[float]] = []
    labels: list[int] = []
    weights: list[float] = []
    in_data = False

    for lineno, raw in enumerate(fp, start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        lower = line.lower()
        if not in_data:
            if lower.startswith("@relation"):
                relation = _parse_token(line[len("@relation"):].strip())
            elif lower.startswith("@attribute"):
                attributes.append(_parse_attribute(line, lineno))
            elif lower.startswith("@data"):
                if len(attributes) < 2:
                    raise ArffError(
                        "need at least one input attribute plus the class"
                    )
                if not attributes[-1].is_nominal:
                    raise ArffError("class (last) attribute must be nominal")
                in_data = True
            else:
                raise ArffError(f"line {lineno}: unexpected header {line!r}")
            continue

        weight = 1.0
        match = _WEIGHT_RE.search(line)
        if match:
            weight = float(match.group(1))
            line = line[: match.start()]
        cells = _split_row(line, lineno)
        if len(cells) != len(attributes):
            raise ArffError(
                f"line {lineno}: {len(cells)} values for "
                f"{len(attributes)} attributes"
            )
        row: list[float] = []
        for cell, attribute in zip(cells[:-1], attributes[:-1]):
            row.append(_parse_cell(cell, attribute, lineno))
        class_attribute = attributes[-1]
        if cells[-1] == "?":
            raise ArffError(f"line {lineno}: class value cannot be missing")
        labels.append(class_attribute.index_of(cells[-1]))
        rows.append(row)
        weights.append(weight)

    if not in_data:
        raise ArffError("no @data section found")
    class_attribute = attributes[-1]
    if not class_attribute.is_nominal:
        raise ArffError("class (last) attribute must be nominal")
    x = (
        np.asarray(rows, dtype=np.float64)
        if rows
        else np.empty((0, len(attributes) - 1))
    )
    return Dataset(
        attributes[:-1],
        class_attribute,
        x,
        np.asarray(labels, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
        name=relation,
    )


def _strip_comment(line: str) -> str:
    # A % starts a comment unless inside quotes.
    out = []
    quote: str | None = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\" and i + 1 < len(line):
                out.append(ch)
                out.append(line[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "%":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_attribute(line: str, lineno: int) -> Attribute:
    rest = line[len("@attribute"):].strip()
    name, remainder = _take_token(rest, lineno)
    remainder = remainder.strip()
    match = _NOMINAL_RE.match(remainder)
    if match:
        values = _split_row(match.group(1), lineno)
        try:
            return Attribute.nominal(name, values)
        except DatasetError as exc:
            raise ArffError(f"line {lineno}: {exc}") from exc
    kind = remainder.lower()
    if kind in ("numeric", "real", "integer"):
        return Attribute.numeric(name)
    raise ArffError(f"line {lineno}: unsupported attribute type {remainder!r}")


def _take_token(text: str, lineno: int) -> tuple[str, str]:
    text = text.lstrip()
    if not text:
        raise ArffError(f"line {lineno}: missing token")
    if text[0] in "'\"":
        quote = text[0]
        out = []
        i = 1
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                out.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                return "".join(out), text[i + 1 :]
            out.append(ch)
            i += 1
        raise ArffError(f"line {lineno}: unterminated quote")
    parts = text.split(None, 1)
    return parts[0], parts[1] if len(parts) > 1 else ""


def _parse_token(text: str) -> str:
    token, _ = _take_token(text, 0)
    return token


def _split_row(line: str, lineno: int) -> list[str]:
    cells: list[str] = []
    current: list[str] = []
    quote: str | None = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\" and i + 1 < len(line):
                current.append(line[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
            else:
                current.append(ch)
        elif ch in "'\"":
            quote = ch
        elif ch == ",":
            cells.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    if quote:
        raise ArffError(f"line {lineno}: unterminated quote in data row")
    cells.append("".join(current).strip())
    return cells


def _parse_cell(cell: str, attribute: Attribute, lineno: int) -> float:
    if cell == "?":
        return math.nan
    if attribute.is_numeric:
        try:
            return float(cell)
        except ValueError:
            raise ArffError(
                f"line {lineno}: bad numeric value {cell!r} "
                f"for attribute {attribute.name!r}"
            ) from None
    try:
        return float(attribute.index_of(cell))
    except DatasetError as exc:
        raise ArffError(f"line {lineno}: {exc}") from exc

"""Rule and rule-set representation shared by the rule inducers.

A rule is a conjunction of attribute conditions implying a class; a
rule set is an ordered decision list with a default class.  Prediction
fires the first matching rule (standard separate-and-conquer
semantics).  Rules keep the class distribution of the training
instances they covered so ``distribution`` can return calibrated
probabilities rather than hard 0/1 votes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.mining.dataset import Attribute

__all__ = ["Condition", "Rule", "RuleSet"]

_OPS = ("<=", ">", "==")


@dataclasses.dataclass(frozen=True)
class Condition:
    """A single attribute test: ``attribute <op> value``.

    Numeric attributes use ``<=``/``>`` with a float threshold; nominal
    attributes use ``==`` with the *index* of the value (the printable
    form resolves it back to the value string).
    """

    attribute: Attribute
    attribute_index: int
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown condition operator {self.op!r}")
        if self.attribute.is_nominal and self.op != "==":
            raise ValueError("nominal conditions must use ==")
        if self.attribute.is_numeric and self.op == "==":
            raise ValueError("numeric conditions must use <= or >")

    def covers(self, x: np.ndarray) -> np.ndarray:
        """Vectorised coverage mask over a 2-D instance array.

        Missing values never satisfy a condition (NaN comparisons are
        False), the conservative choice for detection rules.
        """
        column = np.atleast_2d(x)[:, self.attribute_index]
        with np.errstate(invalid="ignore"):
            if self.op == "<=":
                return column <= self.value
            if self.op == ">":
                return column > self.value
            return column == self.value

    def __str__(self) -> str:
        if self.attribute.is_nominal:
            return f"{self.attribute.name} == {self.attribute.value_of(int(self.value))}"
        return f"{self.attribute.name} {self.op} {self.value:.6g}"


@dataclasses.dataclass
class Rule:
    """Conjunction of conditions implying ``class_index``."""

    conditions: tuple[Condition, ...]
    class_index: int
    class_weights: np.ndarray | None = None  # training coverage per class

    def covers(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        mask = np.ones(len(x), dtype=bool)
        for condition in self.conditions:
            mask &= condition.covers(x)
        return mask

    def distribution(self, n_classes: int) -> np.ndarray:
        """Laplace-smoothed class distribution of the rule's coverage."""
        if self.class_weights is None:
            out = np.full(n_classes, 1.0)
        else:
            out = np.asarray(self.class_weights, dtype=np.float64) + 1.0
        return out / out.sum()

    def __str__(self) -> str:
        body = " AND ".join(str(c) for c in self.conditions) or "TRUE"
        return f"IF {body} THEN class={self.class_index}"


@dataclasses.dataclass
class RuleSet:
    """Ordered decision list with a default class."""

    rules: list[Rule]
    default_class: int
    class_labels: tuple[str, ...]
    default_weights: np.ndarray | None = None

    @property
    def n_classes(self) -> int:
        return len(self.class_labels)

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        out = np.full(len(x), self.default_class, dtype=np.int64)
        undecided = np.ones(len(x), dtype=bool)
        for rule in self.rules:
            fired = undecided & rule.covers(x)
            out[fired] = rule.class_index
            undecided &= ~fired
            if not undecided.any():
                break
        return out

    def distribution(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(x)
        out = np.zeros((len(x), self.n_classes))
        undecided = np.ones(len(x), dtype=bool)
        for rule in self.rules:
            fired = undecided & rule.covers(x)
            if fired.any():
                out[fired] = rule.distribution(self.n_classes)
            undecided &= ~fired
            if not undecided.any():
                break
        if undecided.any():
            if self.default_weights is not None:
                default = np.asarray(self.default_weights, dtype=np.float64) + 1.0
                default = default / default.sum()
            else:
                default = np.zeros(self.n_classes)
                default[self.default_class] = 1.0
            out[undecided] = default
        return out

    @property
    def condition_count(self) -> int:
        """Total number of conditions: the rule-set complexity measure."""
        return sum(len(rule.conditions) for rule in self.rules)

    def __str__(self) -> str:
        lines = []
        for rule in self.rules:
            body = " AND ".join(str(c) for c in rule.conditions) or "TRUE"
            lines.append(
                f"IF {body} THEN class={self.class_labels[rule.class_index]}"
            )
        lines.append(f"ELSE class={self.class_labels[self.default_class]}")
        return "\n".join(lines)

"""Sequential-covering rule induction (FOIL-gain growth).

A separate-and-conquer learner in the RIPPER/CN2 family: for each class
(rarest first, so the failure-inducing minority is learned directly),
grow one rule at a time by greedily adding the condition with the best
FOIL information gain, then remove the instances the rule covers and
repeat until the class is exhausted or no acceptable rule can be found.

Numeric attributes contribute ``<= t`` / ``> t`` candidate conditions
at class-boundary midpoints of the sorted column (capped per attribute
to keep the candidate pool bounded); nominal attributes contribute one
equality condition per value.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset
from repro.mining.rules.rule import Condition, Rule, RuleSet

__all__ = ["SequentialCoveringRules", "candidate_conditions"]


def candidate_conditions(
    dataset: Dataset, max_thresholds_per_attribute: int = 32
) -> list[Condition]:
    """Enumerate the candidate conditions for rule growth.

    Numeric: midpoints between adjacent sorted values where the class
    label changes (the only thresholds that can improve purity),
    subsampled evenly when there are more than the cap.  Nominal: one
    ``==`` condition per attribute value.
    """
    candidates: list[Condition] = []
    for j, attribute in enumerate(dataset.attributes):
        if attribute.is_nominal:
            for v in range(len(attribute.values)):
                candidates.append(Condition(attribute, j, "==", float(v)))
            continue
        column = dataset.x[:, j]
        known = ~np.isnan(column)
        values = column[known]
        labels = dataset.y[known]
        if values.size < 2:
            continue
        order = np.argsort(values, kind="stable")
        values = values[order]
        labels = labels[order]
        distinct = np.diff(values) > 0
        label_change = np.diff(labels) != 0
        boundaries = np.flatnonzero(distinct & label_change)
        if boundaries.size == 0:
            continue
        if boundaries.size > max_thresholds_per_attribute:
            picks = np.linspace(
                0, boundaries.size - 1, max_thresholds_per_attribute
            ).astype(int)
            boundaries = boundaries[np.unique(picks)]
        for b in boundaries:
            threshold = float((values[b] + values[b + 1]) / 2.0)
            if not math.isfinite(threshold):
                threshold = float(values[b])
            candidates.append(Condition(attribute, j, "<=", threshold))
            candidates.append(Condition(attribute, j, ">", threshold))
    return candidates


class SequentialCoveringRules(Classifier):
    """Separate-and-conquer rule learner.

    Parameters
    ----------
    min_coverage:
        Minimum total weight a rule must cover to be kept.
    min_precision:
        Minimum weighted precision a finished rule must reach.
    max_conditions:
        Cap on conditions per rule.
    max_rules_per_class:
        Safety cap on rules grown per class.
    max_thresholds_per_attribute:
        Candidate-threshold cap passed to :func:`candidate_conditions`.
    """

    def __init__(
        self,
        min_coverage: float = 2.0,
        min_precision: float = 0.8,
        max_conditions: int = 8,
        max_rules_per_class: int = 64,
        max_thresholds_per_attribute: int = 32,
    ) -> None:
        if min_coverage <= 0:
            raise ValueError("min_coverage must be positive")
        if not 0 < min_precision <= 1:
            raise ValueError("min_precision must be in (0, 1]")
        self.min_coverage = min_coverage
        self.min_precision = min_precision
        self.max_conditions = max_conditions
        self.max_rules_per_class = max_rules_per_class
        self.max_thresholds_per_attribute = max_thresholds_per_attribute
        self.ruleset: RuleSet | None = None

    def fit(self, dataset: Dataset) -> "SequentialCoveringRules":
        if len(dataset) == 0:
            raise ValueError("cannot fit rules on an empty dataset")
        self._remember_schema(dataset)
        rules: list[Rule] = []
        remaining = np.ones(len(dataset), dtype=bool)
        class_order = np.argsort(dataset.class_weights(), kind="stable")
        # Learn rules for every class except the most frequent, which
        # becomes the default -- the standard decision-list layout.
        default_class = int(class_order[-1])
        for cls in class_order[:-1]:
            remaining_for_class = remaining.copy()
            for _ in range(self.max_rules_per_class):
                rule = self._grow_rule(dataset, remaining_for_class, int(cls))
                if rule is None:
                    break
                covered = rule.covers(dataset.x) & remaining_for_class
                if not covered.any():
                    break
                rules.append(rule)
                remaining_for_class &= ~covered
                remaining &= ~covered
                positives_left = (
                    remaining_for_class & (dataset.y == cls)
                ).sum()
                if positives_left == 0:
                    break
        default_weights = np.bincount(
            dataset.y[remaining],
            weights=dataset.weights[remaining],
            minlength=dataset.n_classes,
        )
        if remaining.any():
            default_class = int(np.argmax(default_weights))
        self.ruleset = RuleSet(
            rules,
            default_class,
            dataset.class_attribute.values,
            default_weights if remaining.any() else None,
        )
        return self

    def _grow_rule(
        self, dataset: Dataset, remaining: np.ndarray, cls: int
    ) -> Rule | None:
        weights = dataset.weights
        positive = remaining & (dataset.y == cls)
        if weights[positive].sum() < self.min_coverage:
            return None
        subset = dataset.subset(np.flatnonzero(remaining))
        candidates = candidate_conditions(
            subset, self.max_thresholds_per_attribute
        )
        if not candidates:
            return None

        covered = remaining.copy()
        conditions: list[Condition] = []
        used: set[tuple[int, str, float]] = set()
        while len(conditions) < self.max_conditions:
            p0 = weights[covered & (dataset.y == cls)].sum()
            n0 = weights[covered & (dataset.y != cls)].sum()
            if p0 <= 0:
                return None
            if n0 <= 0:
                break  # pure rule
            best_gain = 0.0
            best: tuple[Condition, np.ndarray] | None = None
            for condition in candidates:
                key = (condition.attribute_index, condition.op, condition.value)
                if key in used:
                    continue
                mask = covered & condition.covers(dataset.x)
                p1 = weights[mask & (dataset.y == cls)].sum()
                if p1 < self.min_coverage:
                    continue
                n1 = weights[mask & (dataset.y != cls)].sum()
                gain = _foil_gain(p0, n0, p1, n1)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (condition, mask)
            if best is None:
                break
            condition, mask = best
            conditions.append(condition)
            used.add((condition.attribute_index, condition.op, condition.value))
            covered = mask

        if not conditions:
            return None
        p = weights[covered & (dataset.y == cls)].sum()
        total = weights[covered].sum()
        if total < self.min_coverage or p / total < self.min_precision:
            return None
        class_weights = np.bincount(
            dataset.y[covered],
            weights=weights[covered],
            minlength=dataset.n_classes,
        )
        return Rule(tuple(conditions), cls, class_weights)

    def distribution(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self.ruleset is None:
            raise RuntimeError("rule set missing")
        return self.ruleset.distribution(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self.ruleset is None:
            raise RuntimeError("rule set missing")
        return self.ruleset.predict(np.atleast_2d(x))

    @property
    def condition_count(self) -> int:
        if self.ruleset is None:
            raise RuntimeError("rule set missing")
        return self.ruleset.condition_count


def _foil_gain(p0: float, n0: float, p1: float, n1: float) -> float:
    """FOIL information gain of specialising a rule.

    ``p1 * (log2(p1/(p1+n1)) - log2(p0/(p0+n0)))`` -- positive when the
    specialisation increases the positive density without discarding
    too many positives.
    """
    if p1 <= 0:
        return 0.0
    before = math.log2(p0 / (p0 + n0))
    after = math.log2(p1 / (p1 + n1))
    return p1 * (after - before)

"""Rule induction learners.

"Rule induction" is the paper's stated alternative to decision tree
induction among symbolic pattern learners (Sections IV/V-C): both
produce models readable as first-order predicates.  Two inducers are
provided:

* :class:`repro.mining.rules.prism.Prism` -- Cendrowska's PRISM,
  extended with threshold conditions so it handles the numeric
  attributes fault injection produces;
* :class:`repro.mining.rules.covering.SequentialCoveringRules` -- a
  separate-and-conquer learner growing rules by FOIL information gain
  (the RIPPER/CN2 family).

Both emit :class:`repro.mining.rules.rule.RuleSet` models whose rules
convert directly into detection predicates.
"""

from repro.mining.rules.rule import Condition, Rule, RuleSet
from repro.mining.rules.prism import Prism
from repro.mining.rules.covering import SequentialCoveringRules

__all__ = ["Condition", "Rule", "RuleSet", "Prism", "SequentialCoveringRules"]

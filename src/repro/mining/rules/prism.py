"""PRISM rule induction (Cendrowska 1987), numeric-capable variant.

PRISM induces, for each class in turn, rules that are *perfect* on the
training data: conditions are added greedily by precision ``p/t`` (ties
broken towards larger positive coverage ``p``) until the rule covers
only instances of the target class, then the covered instances are
removed and induction repeats until the class is exhausted.

Classic PRISM handles nominal attributes only; fault-injection state is
numeric, so this variant also proposes ``<= t`` / ``> t`` threshold
conditions using the same class-boundary candidate generation as the
sequential-covering learner.  A ``max_conditions`` cap and a minimum
coverage keep induction bounded on noisy data where perfect rules may
not exist.
"""

from __future__ import annotations

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset
from repro.mining.rules.covering import candidate_conditions
from repro.mining.rules.rule import Condition, Rule, RuleSet

__all__ = ["Prism"]


class Prism(Classifier):
    """PRISM decision-list learner."""

    def __init__(
        self,
        min_coverage: float = 1.0,
        max_conditions: int = 8,
        max_rules_per_class: int = 128,
        max_thresholds_per_attribute: int = 32,
    ) -> None:
        if min_coverage <= 0:
            raise ValueError("min_coverage must be positive")
        self.min_coverage = min_coverage
        self.max_conditions = max_conditions
        self.max_rules_per_class = max_rules_per_class
        self.max_thresholds_per_attribute = max_thresholds_per_attribute
        self.ruleset: RuleSet | None = None

    def fit(self, dataset: Dataset) -> "Prism":
        if len(dataset) == 0:
            raise ValueError("cannot fit PRISM on an empty dataset")
        self._remember_schema(dataset)
        rules: list[Rule] = []
        remaining_overall = np.ones(len(dataset), dtype=bool)
        class_order = np.argsort(dataset.class_weights(), kind="stable")
        default_class = int(class_order[-1])
        for cls in class_order[:-1]:
            remaining = np.ones(len(dataset), dtype=bool)
            for _ in range(self.max_rules_per_class):
                targets = remaining & (dataset.y == cls)
                if dataset.weights[targets].sum() < self.min_coverage:
                    break
                rule = self._grow_rule(dataset, remaining, int(cls))
                if rule is None:
                    break
                covered = rule.covers(dataset.x) & remaining
                if not covered.any():
                    break
                rules.append(rule)
                remaining &= ~covered
                remaining_overall &= ~covered
        default_weights = np.bincount(
            dataset.y[remaining_overall],
            weights=dataset.weights[remaining_overall],
            minlength=dataset.n_classes,
        )
        if remaining_overall.any():
            default_class = int(np.argmax(default_weights))
        self.ruleset = RuleSet(
            rules,
            default_class,
            dataset.class_attribute.values,
            default_weights if remaining_overall.any() else None,
        )
        return self

    def _grow_rule(
        self, dataset: Dataset, remaining: np.ndarray, cls: int
    ) -> Rule | None:
        weights = dataset.weights
        subset = dataset.subset(np.flatnonzero(remaining))
        candidates = candidate_conditions(
            subset, self.max_thresholds_per_attribute
        )
        if not candidates:
            return None
        covered = remaining.copy()
        conditions: list[Condition] = []
        used_attributes: set[tuple[int, str]] = set()
        while len(conditions) < self.max_conditions:
            p_now = weights[covered & (dataset.y == cls)].sum()
            t_now = weights[covered].sum()
            if t_now <= 0 or p_now <= 0:
                return None
            if p_now == t_now:
                break  # perfect rule
            best_key = (-1.0, -1.0)
            best: tuple[Condition, np.ndarray] | None = None
            for condition in candidates:
                # PRISM never tests the same attribute-direction twice
                # in one rule.
                attr_key = (condition.attribute_index, condition.op)
                if attr_key in used_attributes:
                    continue
                mask = covered & condition.covers(dataset.x)
                p = weights[mask & (dataset.y == cls)].sum()
                if p < self.min_coverage:
                    continue
                t = weights[mask].sum()
                key = (p / t, p)
                if key > best_key:
                    best_key = key
                    best = (condition, mask)
            if best is None:
                break
            condition, mask = best
            # Stop if the specialisation does not improve precision.
            if best_key[0] <= p_now / t_now + 1e-12:
                break
            conditions.append(condition)
            used_attributes.add((condition.attribute_index, condition.op))
            covered = mask
        if not conditions:
            return None
        class_weights = np.bincount(
            dataset.y[covered],
            weights=weights[covered],
            minlength=dataset.n_classes,
        )
        return Rule(tuple(conditions), cls, class_weights)

    def distribution(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self.ruleset is None:
            raise RuntimeError("rule set missing")
        return self.ruleset.distribution(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self.ruleset is None:
            raise RuntimeError("rule set missing")
        return self.ruleset.predict(np.atleast_2d(x))

    @property
    def condition_count(self) -> int:
        if self.ruleset is None:
            raise RuntimeError("rule set missing")
        return self.ruleset.condition_count

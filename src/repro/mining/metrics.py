"""Evaluation metrics from Section IV of the paper.

The paper evaluates detection predicates with the confusion matrix of
Table I and the derived measures it surveys: sensitivity (true positive
rate), specificity (true negative rate), the false positive rate,
precision/recall and their harmonic mean (F1), Kubat's geometric mean,
the single-model trapezoid AUC ``(tpr - fpr + 1) / 2``, the Euclidean
distance from the perfect classifier at ROC coordinate ``(0, 1)``, and
the expected misclassification cost under an ``m x m`` cost matrix.  It
also uses Ting's instance-weighting formula and Breiman's cost-vector
reductions when discussing cost-sensitive learning; both are implemented
here so the cost-sensitive learners can share them.

Everything is computed with instance weights so that weighted datasets
(cost-sensitive or resampled) evaluate consistently.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "ConfusionMatrix",
    "MetricsError",
    "expected_misclassification_cost",
    "uniform_cost_matrix",
    "breiman_cost_vector",
    "max_cost_vector",
    "ting_instance_weights",
    "trapezoid_auc",
    "roc_distance_to_perfect",
]


class MetricsError(ValueError):
    """Raised for inconsistent metric inputs."""


@dataclasses.dataclass
class ConfusionMatrix:
    """An ``m x m`` confusion matrix; cell ``[i, j]`` is weight of actual
    class ``i`` predicted as class ``j`` (Table I layout).

    For concept learning (the paper's setting) the positive class --
    *failure-inducing* -- must be identified by index so the TP/FP/TN/FN
    cells are unambiguous; ``positive`` defaults to class 1.
    """

    matrix: np.ndarray
    labels: tuple[str, ...]
    positive: int = 1

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise MetricsError("confusion matrix must be square")
        if len(self.labels) != self.matrix.shape[0]:
            raise MetricsError("one label required per class")
        if not 0 <= self.positive < self.matrix.shape[0]:
            raise MetricsError("positive class index out of range")
        if np.any(self.matrix < 0):
            raise MetricsError("confusion matrix cells must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_predictions(
        cls,
        actual: np.ndarray,
        predicted: np.ndarray,
        labels: Sequence[str],
        weights: np.ndarray | None = None,
        positive: int = 1,
    ) -> "ConfusionMatrix":
        """Cross-tabulate actual against predicted class indices."""
        actual = np.asarray(actual, dtype=np.int64)
        predicted = np.asarray(predicted, dtype=np.int64)
        if actual.shape != predicted.shape:
            raise MetricsError("actual and predicted must have the same length")
        m = len(labels)
        if weights is None:
            weights = np.ones(len(actual))
        weights = np.asarray(weights, dtype=np.float64)
        matrix = np.zeros((m, m))
        np.add.at(matrix, (actual, predicted), weights)
        return cls(matrix, tuple(labels), positive)

    @classmethod
    def zero(cls, labels: Sequence[str], positive: int = 1) -> "ConfusionMatrix":
        m = len(labels)
        return cls(np.zeros((m, m)), tuple(labels), positive)

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        if other.labels != self.labels or other.positive != self.positive:
            raise MetricsError("cannot add confusion matrices over different classes")
        return ConfusionMatrix(self.matrix + other.matrix, self.labels, self.positive)

    # ------------------------------------------------------------------
    # Table I cells (binary view around the positive class)
    # ------------------------------------------------------------------
    @property
    def tp(self) -> float:
        p = self.positive
        return float(self.matrix[p, p])

    @property
    def fn(self) -> float:
        p = self.positive
        return float(self.matrix[p].sum() - self.matrix[p, p])

    @property
    def fp(self) -> float:
        p = self.positive
        return float(self.matrix[:, p].sum() - self.matrix[p, p])

    @property
    def tn(self) -> float:
        return float(self.matrix.sum() - self.tp - self.fn - self.fp)

    @property
    def n_pos(self) -> float:
        """Actual positive weight (row marginal of Table I)."""
        return self.tp + self.fn

    @property
    def n_neg(self) -> float:
        return self.fp + self.tn

    @property
    def total(self) -> float:
        return float(self.matrix.sum())

    # ------------------------------------------------------------------
    # Section IV measures
    # ------------------------------------------------------------------
    def true_positive_rate(self) -> float:
        """Sensitivity / recall: TP / (TP + FN).  0 when no positives."""
        return _ratio(self.tp, self.tp + self.fn)

    def false_positive_rate(self) -> float:
        """1 - specificity: FP / (TN + FP).  0 when no negatives."""
        return _ratio(self.fp, self.tn + self.fp)

    def true_negative_rate(self) -> float:
        """Specificity: TN / (TN + FP)."""
        return _ratio(self.tn, self.tn + self.fp)

    def precision(self) -> float:
        """TP / (TP + FP)."""
        return _ratio(self.tp, self.tp + self.fp)

    def recall(self) -> float:
        return self.true_positive_rate()

    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision(), self.recall()
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def geometric_mean(self) -> float:
        """Kubat et al.'s geometric mean of TPR and TNR."""
        return math.sqrt(self.true_positive_rate() * self.true_negative_rate())

    def accuracy(self) -> float:
        """Weighted fraction of correctly classified instances."""
        return _ratio(float(np.trace(self.matrix)), self.total)

    def error_rate(self) -> float:
        return 1.0 - self.accuracy()

    def auc(self) -> float:
        """Single-model trapezoid AUC: ``(tpr - fpr + 1) / 2``.

        This is the paper's AUC: the area of the trapezoid through ROC
        points (0,0), (fpr,tpr), (1,1) and (1,0).
        """
        return trapezoid_auc(self.true_positive_rate(), self.false_positive_rate())

    def distance_to_perfect(self) -> float:
        """Euclidean distance from the perfect classifier at (fpr=0, tpr=1)."""
        return roc_distance_to_perfect(
            self.true_positive_rate(), self.false_positive_rate()
        )

    def expected_cost(self, cost_matrix: np.ndarray) -> float:
        """Expected misclassification cost: sum of C(i,j) * CM(i,j)."""
        return expected_misclassification_cost(self.matrix, cost_matrix)

    def as_dict(self) -> dict[str, float]:
        """Return the headline measures as a plain dictionary."""
        return {
            "tp": self.tp,
            "fp": self.fp,
            "tn": self.tn,
            "fn": self.fn,
            "tpr": self.true_positive_rate(),
            "fpr": self.false_positive_rate(),
            "tnr": self.true_negative_rate(),
            "precision": self.precision(),
            "recall": self.recall(),
            "f1": self.f1(),
            "gmean": self.geometric_mean(),
            "accuracy": self.accuracy(),
            "auc": self.auc(),
            "distance_to_perfect": self.distance_to_perfect(),
        }

    def __str__(self) -> str:
        width = max(len(label) for label in self.labels)
        width = max(width, 10)
        header = " " * (width + 2) + "  ".join(f"{l:>{width}}" for l in self.labels)
        lines = [header]
        for i, label in enumerate(self.labels):
            cells = "  ".join(f"{self.matrix[i, j]:>{width}.1f}" for j in range(len(self.labels)))
            lines.append(f"{label:>{width}}  {cells}")
        return "\n".join(lines)


def trapezoid_auc(tpr: float, fpr: float) -> float:
    """Area of the trapezoid (0,0)-(fpr,tpr)-(1,1)-(1,0): (tpr-fpr+1)/2."""
    return (tpr - fpr + 1.0) / 2.0


def roc_distance_to_perfect(tpr: float, fpr: float) -> float:
    """Distance of ROC point (fpr, tpr) from the perfect classifier (0, 1)."""
    return math.hypot(fpr, 1.0 - tpr)


def expected_misclassification_cost(
    confusion: np.ndarray, cost_matrix: np.ndarray
) -> float:
    """Expected misclassification cost ``sum_ij C(i,j) * CM(i,j)``.

    ``C(i, i)`` must be zero: correct classification carries no cost.
    """
    confusion = np.asarray(confusion, dtype=np.float64)
    cost_matrix = np.asarray(cost_matrix, dtype=np.float64)
    if confusion.shape != cost_matrix.shape:
        raise MetricsError("cost matrix shape must match confusion matrix")
    if np.any(np.diagonal(cost_matrix) != 0):
        raise MetricsError("cost matrix diagonal must be zero")
    if np.any(cost_matrix < 0):
        raise MetricsError("costs must be non-negative")
    return float((confusion * cost_matrix).sum())


def uniform_cost_matrix(m: int) -> np.ndarray:
    """The unit cost matrix: C(i,j)=1 off the diagonal, 0 on it.

    Minimising error is the special case of minimising expected cost
    under this matrix.
    """
    return np.ones((m, m)) - np.eye(m)


def breiman_cost_vector(cost_matrix: np.ndarray) -> np.ndarray:
    """Breiman et al.'s cost-matrix -> cost-vector reduction.

    ``V(i)`` is the sum of all misclassification costs for instances of
    class ``i`` (the row sum of the cost matrix).
    """
    cost_matrix = np.asarray(cost_matrix, dtype=np.float64)
    return cost_matrix.sum(axis=1)


def max_cost_vector(cost_matrix: np.ndarray) -> np.ndarray:
    """Alternative reduction ``V(i) = max_j C(i, j)`` the paper mentions."""
    cost_matrix = np.asarray(cost_matrix, dtype=np.float64)
    return cost_matrix.max(axis=1)


def ting_instance_weights(
    y: np.ndarray, cost_vector: np.ndarray
) -> np.ndarray:
    """Ting's per-class instance weights.

    For class ``j`` with ``N_j`` instances, total ``N`` instances and
    class costs ``V``::

        w(j) = V(j) * N / sum_i V(i) * N_i

    so that the weighted total still sums to ``N`` while instances of
    costly classes count for more.
    """
    y = np.asarray(y, dtype=np.int64)
    cost_vector = np.asarray(cost_vector, dtype=np.float64)
    if np.any(cost_vector < 0):
        raise MetricsError("class costs must be non-negative")
    counts = np.bincount(y, minlength=len(cost_vector)).astype(np.float64)
    denominator = float((cost_vector * counts).sum())
    if denominator <= 0:
        raise MetricsError("total class cost is zero; weights undefined")
    per_class = cost_vector * len(y) / denominator
    return per_class[y]


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 0.0
    return numerator / denominator

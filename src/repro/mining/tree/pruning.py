"""Pessimistic-error pruning (C4.5 subtree replacement).

C4.5 prunes a grown tree bottom-up: at each internal node it compares
the *estimated* error of (a) keeping the subtree with (b) replacing it
by a leaf predicting the node's majority class, and replaces when the
leaf is no worse.  The estimate is the pessimistic upper confidence
bound of the binomial error observed on the training data at confidence
factor ``CF`` (default 0.25) -- Quinlan's ``addErrs``/``UCF``
calculation, reproduced here with the same endpoint special cases:

* ``e = 0``: the bound is ``N * (1 - CF ** (1/N))``;
* ``e`` close to ``N``: no extra errors can be added;
* otherwise: the upper bound of the Wilson score interval at the
  one-sided normal quantile ``z = Phi^{-1}(1 - CF)`` with the usual
  ``+0.5`` continuity correction.

Subtree raising (grafting the largest branch) is intentionally not
implemented; the paper's complexity numbers are small enough that
replacement-only pruning reproduces the reported behaviour, and the
omission is documented in DESIGN.md.
"""

from __future__ import annotations

import math

from repro.mining.tree.node import DecisionNode, LeafNode, TreeNode

__all__ = ["prune_tree", "pessimistic_errors", "added_errors"]


def prune_tree(node: TreeNode, confidence_factor: float) -> TreeNode:
    """Return the pessimistically pruned version of ``node``."""
    if isinstance(node, LeafNode):
        return node
    assert isinstance(node, DecisionNode)
    node.children = [
        prune_tree(child, confidence_factor) for child in node.children
    ]
    leaf_estimate = pessimistic_errors(
        node.total_weight, node.training_errors, confidence_factor
    )
    subtree_estimate = _subtree_errors(node, confidence_factor)
    # Replace when the collapsed leaf's pessimistic error is no worse;
    # the 0.1 slack matches C4.5's implementation.
    if leaf_estimate <= subtree_estimate + 0.1:
        return LeafNode(node.class_weights)
    return node


def _subtree_errors(node: TreeNode, confidence_factor: float) -> float:
    if isinstance(node, LeafNode):
        return pessimistic_errors(
            node.total_weight, node.training_errors, confidence_factor
        )
    assert isinstance(node, DecisionNode)
    return sum(_subtree_errors(child, confidence_factor) for child in node.children)


def pessimistic_errors(n: float, e: float, confidence_factor: float) -> float:
    """Observed errors plus the pessimistic correction: ``e + addErrs``."""
    return e + added_errors(n, e, confidence_factor)


def added_errors(n: float, e: float, confidence_factor: float) -> float:
    """Quinlan's ``addErrs``: extra errors granted at confidence ``CF``.

    ``n`` is the total instance weight at the node and ``e`` the weight
    of training errors a majority-class leaf makes there.
    """
    if n <= 0:
        return 0.0
    if e >= n:
        return 0.0
    if e < 1:
        # Upper bound for zero errors, interpolated linearly up to e=1
        # exactly as C4.5 does.
        base = n * (1.0 - confidence_factor ** (1.0 / n))
        if e <= 0:
            return base
        return base + e * (added_errors(n, 1.0, confidence_factor) - base)
    if e + 0.5 >= n:
        return max(n - e, 0.0)
    z = _normal_quantile(1.0 - confidence_factor)
    f = (e + 0.5) / n
    upper = (
        f
        + z * z / (2.0 * n)
        + z * math.sqrt(f / n - f * f / n + z * z / (4.0 * n * n))
    ) / (1.0 + z * z / n)
    # Confidence factors >= 0.5 make z negative and the "upper" bound
    # can dip below the observed rate; an error estimate below the
    # observation is meaningless for pruning, so floor at zero.
    return max(upper * n - e, 0.0)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Implemented locally (rather than via scipy) so the tree learner has
    no dependency beyond numpy; the approximation's absolute error is
    below 1.2e-9, far tighter than pruning needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("quantile probability must be in (0, 1)")
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)

"""Decision tree node structures.

A fitted C4.5 tree is a recursive structure of :class:`DecisionNode`
(internal test) and :class:`LeafNode` (classification).  Nodes carry the
weighted training class distribution observed at that point of the
tree, which pruning and distribution-valued prediction both need.

Numeric decision nodes are binary (``<= threshold`` / ``> threshold``);
nominal decision nodes have one branch per attribute value.  Figure 2
of the paper shows exactly this shape (non-leaf nodes labelled with
variables, edges with value conditions, leaves with the failure
classification).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.mining.dataset import Attribute

__all__ = ["TreeNode", "DecisionNode", "LeafNode", "batch_distribution"]


@dataclasses.dataclass
class TreeNode:
    """Base node: the weighted class distribution of its training slice."""

    class_weights: np.ndarray

    @property
    def total_weight(self) -> float:
        return float(self.class_weights.sum())

    @property
    def majority_class(self) -> int:
        return int(np.argmax(self.class_weights))

    @property
    def training_errors(self) -> float:
        """Weight of training instances a majority-vote leaf here would miss."""
        return self.total_weight - float(self.class_weights.max(initial=0.0))

    def distribution(self) -> np.ndarray:
        total = self.total_weight
        if total <= 0:
            m = len(self.class_weights)
            return np.full(m, 1.0 / m)
        return self.class_weights / total

    def node_count(self) -> int:
        raise NotImplementedError

    def leaf_count(self) -> int:
        raise NotImplementedError

    def depth(self) -> int:
        raise NotImplementedError


@dataclasses.dataclass
class LeafNode(TreeNode):
    """Terminal node predicting its majority class."""

    def node_count(self) -> int:
        return 1

    def leaf_count(self) -> int:
        return 1

    def depth(self) -> int:
        return 0


@dataclasses.dataclass
class DecisionNode(TreeNode):
    """Internal node testing one attribute.

    For numeric attributes ``threshold`` is set and ``children`` has
    exactly two entries (``<=`` branch then ``>`` branch).  For nominal
    attributes ``threshold`` is ``None`` and ``children`` has one entry
    per value of the attribute, in domain order.  ``branch_weights``
    records the training weight that went down each branch; missing
    values are routed fractionally in proportion to these weights.
    """

    attribute: Attribute = None  # type: ignore[assignment]
    attribute_index: int = -1
    threshold: float | None = None
    children: list[TreeNode] = dataclasses.field(default_factory=list)
    branch_weights: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros(0)
    )

    def __post_init__(self) -> None:
        if self.attribute is None or self.attribute_index < 0:
            raise ValueError("decision node requires an attribute and its index")
        expected = 2 if self.attribute.is_numeric else len(self.attribute.values)
        if len(self.children) != expected:
            raise ValueError(
                f"decision node on {self.attribute.name!r} needs {expected} "
                f"children, got {len(self.children)}"
            )
        if self.attribute.is_numeric and self.threshold is None:
            raise ValueError("numeric decision node requires a threshold")
        if self.attribute.is_nominal and self.threshold is not None:
            raise ValueError("nominal decision node cannot have a threshold")
        if len(self.branch_weights) != len(self.children):
            raise ValueError("one branch weight required per child")

    def branch_of(self, value: float) -> int | None:
        """Return the child index for an attribute value, None if missing."""
        if np.isnan(value):
            return None
        if self.attribute.is_numeric:
            assert self.threshold is not None
            return 0 if value <= self.threshold else 1
        return int(value)

    def branch_fractions(self) -> np.ndarray:
        """Fraction of (non-missing) training weight per branch."""
        total = self.branch_weights.sum()
        if total <= 0:
            return np.full(len(self.children), 1.0 / len(self.children))
        return self.branch_weights / total

    def branch_label(self, branch: int) -> str:
        """Human-readable edge label, matching Figure 2's style."""
        if self.attribute.is_numeric:
            assert self.threshold is not None
            op = "<=" if branch == 0 else ">"
            return f"{op} {self.threshold:.6g}"
        return f"= {self.attribute.values[branch]}"

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def leaf_count(self) -> int:
        return sum(child.leaf_count() for child in self.children)

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)


def batch_distribution(node: TreeNode, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Route an index set through the tree level by level.

    Returns one distribution row per entry of ``rows`` (indices into
    ``x``), bit-identical to descending the tree once per row via
    :meth:`DecisionNode.branch_of`: known values partition the index
    set across children, and missing values take the same
    fraction-weighted blend, accumulated child by child in the same
    order with the same ``fraction * child`` products.  The result may
    be a read-only broadcast view; copy before mutating.
    """
    n_classes = len(node.class_weights)
    if isinstance(node, LeafNode):
        return np.broadcast_to(node.distribution(), (rows.size, n_classes))
    assert isinstance(node, DecisionNode)
    column = x[rows, node.attribute_index]
    missing = np.isnan(column)
    known = ~missing
    out = np.empty((rows.size, n_classes))
    if node.attribute.is_numeric:
        low = known & (column <= node.threshold)
        selections = [low, known & ~low]
    else:
        # int(value) truncation semantics of the per-row reference,
        # including Python's negative-index wraparound; values outside
        # the children list raise exactly as children[int(value)] does.
        n_children = len(node.children)
        finite = np.where(known, column, 0.0)
        if not np.isfinite(finite).all():
            raise OverflowError("cannot convert float infinity to integer")
        if (np.abs(finite) >= 2**63).any():
            raise IndexError("list index out of range")
        branch = finite.astype(np.int64)
        if ((branch < -n_children) | (branch >= n_children)).any():
            raise IndexError("list index out of range")
        branch[branch < 0] += n_children
        selections = [known & (branch == value) for value in range(n_children)]
    for selection, child in zip(selections, node.children):
        if selection.any():
            out[selection] = batch_distribution(child, x, rows[selection])
    if missing.any():
        fractions = node.branch_fractions()
        blended = np.zeros((int(np.count_nonzero(missing)), n_classes))
        missing_rows = rows[missing]
        for fraction, child in zip(fractions, node.children):
            if fraction > 0:
                blended += fraction * batch_distribution(child, x, missing_rows)
        out[missing] = blended
    return out

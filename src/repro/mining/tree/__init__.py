"""C4.5 decision tree induction (the paper's symbolic pattern learner).

The paper induces its detection predicates with Quinlan's C4.5 [34]
(Weka's J48).  This package reimplements the parts the paper exercises:

* gain-ratio split selection with the average-gain gate
  (:mod:`repro.mining.tree.induction`),
* binary splits on numeric attributes and multiway splits on nominal
  ones, with fractional handling of missing values in both training and
  prediction,
* instance weights throughout (needed for Ting-style cost-sensitive
  learning),
* pessimistic-error subtree-replacement pruning with a confidence
  factor (:mod:`repro.mining.tree.pruning`),
* tree rendering and complexity accounting
  (:mod:`repro.mining.tree.export`) -- the ``Comp`` column of
  Tables III/IV is the node count reported here.
"""

from repro.mining.tree.node import DecisionNode, LeafNode, TreeNode
from repro.mining.tree.induction import C45DecisionTree
from repro.mining.tree.export import render_tree, tree_to_rules

__all__ = [
    "C45DecisionTree",
    "TreeNode",
    "DecisionNode",
    "LeafNode",
    "render_tree",
    "tree_to_rules",
]

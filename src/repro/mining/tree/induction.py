"""C4.5 decision tree induction.

Implements the classic algorithm [Quinlan 1992] the paper uses for
predicate generation:

* splits are chosen by **gain ratio**, restricted (as in C4.5) to
  candidate splits whose information gain is at least the average gain
  over all candidates -- this avoids the gain-ratio bias towards
  unbalanced splits;
* **numeric attributes** get binary splits at thresholds halfway
  between adjacent distinct values (evaluated in a single vectorised
  pass over the sorted column);
* **nominal attributes** get one branch per value;
* **missing values** contribute no information to split selection
  (gain is scaled by the known-value fraction) and are routed down all
  branches with fractional weight during both training and prediction;
* **instance weights** are respected throughout, so the same learner
  serves cost-sensitive training via Ting's instance weighting;
* after growth the tree is pruned by pessimistic-error subtree
  replacement (see :mod:`repro.mining.tree.pruning`).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Attribute, Dataset
from repro.mining.tree.node import DecisionNode, LeafNode, TreeNode
from repro.mining.tree.pruning import prune_tree

__all__ = ["C45DecisionTree"]

# Gains this close to the best still count as "at least average" when
# applying the average-gain gate, mirroring C4.5's epsilon comparisons.
_EPSILON = 1e-10


@dataclasses.dataclass
class _Split:
    """A candidate split with the statistics needed to rank it."""

    attribute_index: int
    gain: float
    gain_ratio: float
    threshold: float | None  # None for nominal splits


class C45DecisionTree(Classifier):
    """C4.5 decision tree classifier.

    Parameters
    ----------
    min_leaf_weight:
        Minimum total instance weight required in at least two branches
        of a split (C4.5's ``-m``, default 2).
    confidence_factor:
        Confidence level for pessimistic-error pruning (C4.5's ``-c``,
        default 0.25).  Smaller values prune more aggressively.
    prune:
        Disable to keep the fully grown tree.
    max_depth:
        Optional hard depth cap (not part of classic C4.5; useful for
        the ablation experiments).
    """

    def __init__(
        self,
        min_leaf_weight: float = 2.0,
        confidence_factor: float = 0.25,
        prune: bool = True,
        max_depth: int | None = None,
    ) -> None:
        if min_leaf_weight <= 0:
            raise ValueError("min_leaf_weight must be positive")
        if not 0 < confidence_factor < 1:
            raise ValueError("confidence_factor must be in (0, 1)")
        if max_depth is not None and max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        self.min_leaf_weight = min_leaf_weight
        self.confidence_factor = confidence_factor
        self.prune = prune
        self.max_depth = max_depth
        self.root: TreeNode | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "C45DecisionTree":
        if len(dataset) == 0:
            raise ValueError("cannot fit a decision tree on an empty dataset")
        self._remember_schema(dataset)
        self._attributes = dataset.attributes
        self._n_classes = dataset.n_classes
        root = self._grow(dataset.x, dataset.y, dataset.weights, depth=0)
        if self.prune:
            root = prune_tree(root, self.confidence_factor)
        self.root = root
        return self

    def _class_weights(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        return np.bincount(y, weights=w, minlength=self._n_classes)

    def _grow(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> TreeNode:
        class_weights = self._class_weights(y, w)
        total = class_weights.sum()
        # Stop: pure node, not enough weight for two branches, or depth cap.
        if (
            total < 2 * self.min_leaf_weight
            or np.count_nonzero(class_weights) <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return LeafNode(class_weights)

        split = self._best_split(x, y, w, total)
        if split is None:
            return LeafNode(class_weights)

        attribute = self._attributes[split.attribute_index]
        column = x[:, split.attribute_index]
        known = ~np.isnan(column)

        if attribute.is_numeric:
            assert split.threshold is not None
            branch_masks = [
                known & (column <= split.threshold),
                known & (column > split.threshold),
            ]
        else:
            branch_masks = [
                known & (column == v) for v in range(len(attribute.values))
            ]

        branch_weights = np.array([w[mask].sum() for mask in branch_masks])
        known_total = branch_weights.sum()
        if known_total <= 0:
            return LeafNode(class_weights)
        fractions = branch_weights / known_total

        children: list[TreeNode] = []
        missing = ~known
        has_missing = bool(missing.any())
        for mask, fraction in zip(branch_masks, fractions):
            if has_missing and fraction > 0:
                # Route missing-value instances down this branch with a
                # fraction of their weight (C4.5's fractional instances).
                branch_x = np.vstack([x[mask], x[missing]])
                branch_y = np.concatenate([y[mask], y[missing]])
                branch_w = np.concatenate([w[mask], w[missing] * fraction])
            else:
                branch_x, branch_y, branch_w = x[mask], y[mask], w[mask]
            if branch_w.sum() <= 0:
                children.append(LeafNode(class_weights.copy()))
            else:
                children.append(self._grow(branch_x, branch_y, branch_w, depth + 1))

        return DecisionNode(
            class_weights=class_weights,
            attribute=attribute,
            attribute_index=split.attribute_index,
            threshold=split.threshold,
            children=children,
            branch_weights=branch_weights,
        )

    # ------------------------------------------------------------------
    # Split selection
    # ------------------------------------------------------------------
    def _best_split(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, total: float
    ) -> _Split | None:
        candidates: list[_Split] = []
        for j, attribute in enumerate(self._attributes):
            if attribute.is_numeric:
                candidate = self._numeric_split(j, x[:, j], y, w, total)
            else:
                candidate = self._nominal_split(j, attribute, x[:, j], y, w, total)
            if candidate is not None and candidate.gain > _EPSILON:
                candidates.append(candidate)
        if not candidates:
            return None
        # C4.5's average-gain gate: only splits with at least average
        # gain compete on gain ratio.
        average_gain = sum(c.gain for c in candidates) / len(candidates)
        admissible = [c for c in candidates if c.gain + _EPSILON >= average_gain]
        return max(admissible, key=lambda c: (c.gain_ratio, c.gain))

    def _numeric_split(
        self, j: int, column: np.ndarray, y: np.ndarray, w: np.ndarray, total: float
    ) -> _Split | None:
        known = ~np.isnan(column)
        if not known.any():
            return None
        values = column[known]
        labels = y[known]
        weights = w[known]
        known_weight = weights.sum()
        if known_weight < 2 * self.min_leaf_weight:
            return None

        order = np.argsort(values, kind="stable")
        values = values[order]
        labels = labels[order]
        weights = weights[order]

        # Weighted class counts cumulated over the sorted column.
        one_hot = np.zeros((len(labels), self._n_classes))
        one_hot[np.arange(len(labels)), labels] = weights
        left_counts = np.cumsum(one_hot, axis=0)
        total_counts = left_counts[-1]
        parent_entropy = _entropy(total_counts)

        # Candidate boundaries: between adjacent distinct values.
        boundaries = np.flatnonzero(np.diff(values) > 0)
        if boundaries.size == 0:
            return None
        left = left_counts[boundaries]
        right = total_counts - left
        left_weight = left.sum(axis=1)
        right_weight = right.sum(axis=1)
        feasible = (left_weight >= self.min_leaf_weight) & (
            right_weight >= self.min_leaf_weight
        )
        if not feasible.any():
            return None
        left, right = left[feasible], right[feasible]
        left_weight, right_weight = left_weight[feasible], right_weight[feasible]
        boundaries = boundaries[feasible]

        info = (
            left_weight * _entropy_rows(left)
            + right_weight * _entropy_rows(right)
        ) / known_weight
        gains = (known_weight / total) * (parent_entropy - info)
        best = int(np.argmax(gains))
        gain = float(gains[best])
        if gain <= _EPSILON:
            return None

        threshold = _threshold_between(
            values[boundaries[best]], values[boundaries[best] + 1]
        )
        split_info = _split_info(
            np.array([left_weight[best], right_weight[best]]),
            total - known_weight,
            total,
        )
        if split_info <= _EPSILON:
            return None
        return _Split(j, gain, gain / split_info, threshold)

    def _nominal_split(
        self,
        j: int,
        attribute: Attribute,
        column: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        total: float,
    ) -> _Split | None:
        known = ~np.isnan(column)
        if not known.any():
            return None
        values = column[known].astype(np.int64)
        labels = y[known]
        weights = w[known]
        known_weight = weights.sum()

        n_values = len(attribute.values)
        counts = np.zeros((n_values, self._n_classes))
        np.add.at(counts, (values, labels), weights)
        branch_weight = counts.sum(axis=1)
        # C4.5 requires at least two branches with min_leaf_weight.
        if np.count_nonzero(branch_weight >= self.min_leaf_weight) < 2:
            return None

        parent_entropy = _entropy(counts.sum(axis=0))
        info = float(
            (branch_weight * _entropy_rows(counts)).sum() / known_weight
        )
        gain = (known_weight / total) * (parent_entropy - info)
        if gain <= _EPSILON:
            return None
        split_info = _split_info(branch_weight, total - known_weight, total)
        if split_info <= _EPSILON:
            return None
        return _Split(j, float(gain), float(gain / split_info), None)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def distribution(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self.root is None:
            raise RuntimeError("tree has no root")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.empty((len(x), self._n_classes))
        for i, row in enumerate(x):
            out[i] = _descend(self.root, row)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total nodes in the tree: the paper's ``Comp`` complexity measure."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.node_count()

    @property
    def leaf_count(self) -> int:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.leaf_count()

    @property
    def depth(self) -> int:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.depth()


def _descend(node: TreeNode, row: np.ndarray) -> np.ndarray:
    if isinstance(node, LeafNode):
        return node.distribution()
    assert isinstance(node, DecisionNode)
    branch = node.branch_of(row[node.attribute_index])
    if branch is not None:
        return _descend(node.children[branch], row)
    # Missing value: blend all branches by their training fractions.
    fractions = node.branch_fractions()
    blended = np.zeros(len(node.class_weights))
    for fraction, child in zip(fractions, node.children):
        if fraction > 0:
            blended += fraction * _descend(child, row)
    return blended


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    # A denormal count can underflow to exactly 0 in the division,
    # where 0 * log2(0) would poison the sum with NaN.
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def _entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Row-wise entropy for a (rows, classes) count matrix."""
    totals = counts.sum(axis=1, keepdims=True)
    p = counts / np.maximum(totals, 1e-300)
    logs = np.zeros_like(p)
    positive = p > 0
    logs[positive] = np.log2(p[positive])
    return -(p * logs).sum(axis=1)


def _split_info(
    branch_weights: np.ndarray, missing_weight: float, total: float
) -> float:
    """C4.5 split information, counting missing values as a branch."""
    parts = list(branch_weights[branch_weights > 0])
    if missing_weight > 0:
        parts.append(missing_weight)
    info = 0.0
    for part in parts:
        fraction = part / total
        info -= fraction * math.log2(fraction)
    return info


def _threshold_between(lo: float, hi: float) -> float:
    """A threshold t with lo <= t < hi, preferring the readable midpoint.

    The midpoint of two adjacent float values can round up to ``hi``
    (or overflow) when the values span the huge magnitudes bit flips
    produce; a threshold equal to ``hi`` would send both sides down the
    same branch and stall the recursion, so fall back to ``lo`` -- the
    "largest observed value below the cut", which is what C4.5 itself
    uses -- whenever the midpoint fails to separate strictly.
    """
    lo, hi = float(lo), float(hi)  # plain floats: overflow -> inf, no warning
    mid = (lo + hi) / 2.0
    if not math.isfinite(mid):
        mid = lo + (hi - lo) / 2.0
    if math.isfinite(mid) and lo <= mid < hi:
        return mid
    return lo

"""C4.5 decision tree induction.

Implements the classic algorithm [Quinlan 1992] the paper uses for
predicate generation:

* splits are chosen by **gain ratio**, restricted (as in C4.5) to
  candidate splits whose information gain is at least the average gain
  over all candidates -- this avoids the gain-ratio bias towards
  unbalanced splits;
* **numeric attributes** get binary splits at thresholds halfway
  between adjacent distinct values (evaluated in a single vectorised
  pass over the sorted column);
* **nominal attributes** get one branch per value;
* **missing values** contribute no information to split selection
  (gain is scaled by the known-value fraction) and are routed down all
  branches with fractional weight during both training and prediction;
* **instance weights** are respected throughout, so the same learner
  serves cost-sensitive training via Ting's instance weighting;
* after growth the tree is pruned by pessimistic-error subtree
  replacement (see :mod:`repro.mining.tree.pruning`).
"""

from __future__ import annotations

import dataclasses
import functools
import math

import numpy as np

from repro import observability as obs
from repro.mining.base import Classifier
from repro.mining.dataset import Attribute, Dataset, _merge_sorted
from repro.mining.tree.node import (
    DecisionNode,
    LeafNode,
    TreeNode,
    batch_distribution,
)
from repro.mining.tree.pruning import prune_tree

__all__ = ["C45DecisionTree"]

# Gains this close to the best still count as "at least average" when
# applying the average-gain gate, mirroring C4.5's epsilon comparisons.
_EPSILON = 1e-10

# Smallest positive double: clamping probabilities to it before log2
# leaves every p > 0 bit-untouched (see _PresortedGrower._entropy_rows_fused).
_TINY = float(np.nextafter(0.0, 1.0))


@dataclasses.dataclass
class _Split:
    """A candidate split with the statistics needed to rank it."""

    attribute_index: int
    gain: float
    gain_ratio: float
    threshold: float | None  # None for nominal splits


class C45DecisionTree(Classifier):
    """C4.5 decision tree classifier.

    Parameters
    ----------
    min_leaf_weight:
        Minimum total instance weight required in at least two branches
        of a split (C4.5's ``-m``, default 2).
    confidence_factor:
        Confidence level for pessimistic-error pruning (C4.5's ``-c``,
        default 0.25).  Smaller values prune more aggressively.
    prune:
        Disable to keep the fully grown tree.
    max_depth:
        Optional hard depth cap (not part of classic C4.5; useful for
        the ablation experiments).
    engine:
        ``"presort"`` (default) grows the tree over presorted
        row-index subsets and answers ``distribution`` queries with
        level-wise batch routing; ``"naive"`` is the original
        per-node-sorting, per-row-descending implementation, kept as
        the executable reference the equivalence tests and benchmarks
        compare against.  Both engines produce bit-identical trees and
        predictions.
    """

    def __init__(
        self,
        min_leaf_weight: float = 2.0,
        confidence_factor: float = 0.25,
        prune: bool = True,
        max_depth: int | None = None,
        engine: str = "presort",
    ) -> None:
        if min_leaf_weight <= 0:
            raise ValueError("min_leaf_weight must be positive")
        if not 0 < confidence_factor < 1:
            raise ValueError("confidence_factor must be in (0, 1)")
        if max_depth is not None and max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if engine not in ("presort", "naive"):
            raise ValueError(f"unknown induction engine {engine!r}")
        self.min_leaf_weight = min_leaf_weight
        self.confidence_factor = confidence_factor
        self.prune = prune
        self.max_depth = max_depth
        self.engine = engine
        self.root: TreeNode | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "C45DecisionTree":
        if len(dataset) == 0:
            raise ValueError("cannot fit a decision tree on an empty dataset")
        with obs.span(
            "c45.fit", engine=self.engine, instances=len(dataset)
        ) as fit_span:
            self._remember_schema(dataset)
            self._attributes = dataset.attributes
            self._n_classes = dataset.n_classes
            if self.engine == "presort":
                grower = _PresortedGrower(self, dataset)
                root = grower.grow(
                    np.arange(len(dataset), dtype=np.int64),
                    dataset.weights,
                    dataset.presort(),
                    depth=0,
                )
            else:
                root = self._grow(dataset.x, dataset.y, dataset.weights, depth=0)
            if self.prune:
                root = prune_tree(root, self.confidence_factor)
            self.root = root
            fit_span.count("nodes", root.node_count())
        return self

    def _class_weights(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        return np.bincount(y, weights=w, minlength=self._n_classes)

    def _grow(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> TreeNode:
        class_weights = self._class_weights(y, w)
        total = class_weights.sum()
        # Stop: pure node, not enough weight for two branches, or depth cap.
        if (
            total < 2 * self.min_leaf_weight
            or np.count_nonzero(class_weights) <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return LeafNode(class_weights)

        split = self._best_split(x, y, w, total)
        if split is None:
            return LeafNode(class_weights)

        attribute = self._attributes[split.attribute_index]
        column = x[:, split.attribute_index]
        known = ~np.isnan(column)

        if attribute.is_numeric:
            assert split.threshold is not None
            branch_masks = [
                known & (column <= split.threshold),
                known & (column > split.threshold),
            ]
        else:
            branch_masks = [
                known & (column == v) for v in range(len(attribute.values))
            ]

        branch_weights = np.array([w[mask].sum() for mask in branch_masks])
        known_total = branch_weights.sum()
        if known_total <= 0:
            return LeafNode(class_weights)
        fractions = branch_weights / known_total

        children: list[TreeNode] = []
        missing = ~known
        has_missing = bool(missing.any())
        for mask, fraction in zip(branch_masks, fractions):
            if has_missing and fraction > 0:
                # Route missing-value instances down this branch with a
                # fraction of their weight (C4.5's fractional instances).
                branch_x = np.vstack([x[mask], x[missing]])
                branch_y = np.concatenate([y[mask], y[missing]])
                branch_w = np.concatenate([w[mask], w[missing] * fraction])
            else:
                branch_x, branch_y, branch_w = x[mask], y[mask], w[mask]
            if branch_w.sum() <= 0:
                children.append(LeafNode(class_weights.copy()))
            else:
                children.append(self._grow(branch_x, branch_y, branch_w, depth + 1))

        return DecisionNode(
            class_weights=class_weights,
            attribute=attribute,
            attribute_index=split.attribute_index,
            threshold=split.threshold,
            children=children,
            branch_weights=branch_weights,
        )

    # ------------------------------------------------------------------
    # Split selection
    # ------------------------------------------------------------------
    def _best_split(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, total: float
    ) -> _Split | None:
        candidates: list[_Split] = []
        for j, attribute in enumerate(self._attributes):
            if attribute.is_numeric:
                candidate = self._numeric_split(j, x[:, j], y, w, total)
            else:
                candidate = self._nominal_split(j, attribute, x[:, j], y, w, total)
            if candidate is not None and candidate.gain > _EPSILON:
                candidates.append(candidate)
        if not candidates:
            return None
        # C4.5's average-gain gate: only splits with at least average
        # gain compete on gain ratio.
        average_gain = sum(c.gain for c in candidates) / len(candidates)
        admissible = [c for c in candidates if c.gain + _EPSILON >= average_gain]
        return max(admissible, key=lambda c: (c.gain_ratio, c.gain))

    def _numeric_split(
        self, j: int, column: np.ndarray, y: np.ndarray, w: np.ndarray, total: float
    ) -> _Split | None:
        known = ~np.isnan(column)
        if not known.any():
            return None
        values = column[known]
        labels = y[known]
        weights = w[known]
        known_weight = weights.sum()
        if known_weight < 2 * self.min_leaf_weight:
            return None

        order = np.argsort(values, kind="stable")
        values = values[order]
        labels = labels[order]
        weights = weights[order]

        # Weighted class counts cumulated over the sorted column.
        one_hot = np.zeros((len(labels), self._n_classes))
        one_hot[np.arange(len(labels)), labels] = weights
        left_counts = np.cumsum(one_hot, axis=0)
        total_counts = left_counts[-1]
        parent_entropy = _entropy(total_counts)

        # Candidate boundaries: between adjacent distinct values.
        boundaries = np.flatnonzero(np.diff(values) > 0)
        if boundaries.size == 0:
            return None
        left = left_counts[boundaries]
        right = total_counts - left
        left_weight = left.sum(axis=1)
        right_weight = right.sum(axis=1)
        feasible = (left_weight >= self.min_leaf_weight) & (
            right_weight >= self.min_leaf_weight
        )
        if not feasible.any():
            return None
        left, right = left[feasible], right[feasible]
        left_weight, right_weight = left_weight[feasible], right_weight[feasible]
        boundaries = boundaries[feasible]

        info = (
            left_weight * _entropy_rows(left)
            + right_weight * _entropy_rows(right)
        ) / known_weight
        gains = (known_weight / total) * (parent_entropy - info)
        best = int(np.argmax(gains))
        gain = float(gains[best])
        if gain <= _EPSILON:
            return None

        threshold = _threshold_between(
            values[boundaries[best]], values[boundaries[best] + 1]
        )
        split_info = _split_info(
            np.array([left_weight[best], right_weight[best]]),
            total - known_weight,
            total,
        )
        if split_info <= _EPSILON:
            return None
        return _Split(j, gain, gain / split_info, threshold)

    def _nominal_split(
        self,
        j: int,
        attribute: Attribute,
        column: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        total: float,
    ) -> _Split | None:
        known = ~np.isnan(column)
        if not known.any():
            return None
        values = column[known].astype(np.int64)
        labels = y[known]
        weights = w[known]
        known_weight = weights.sum()

        n_values = len(attribute.values)
        counts = np.zeros((n_values, self._n_classes))
        np.add.at(counts, (values, labels), weights)
        branch_weight = counts.sum(axis=1)
        # C4.5 requires at least two branches with min_leaf_weight.
        if np.count_nonzero(branch_weight >= self.min_leaf_weight) < 2:
            return None

        parent_entropy = _entropy(counts.sum(axis=0))
        info = float(
            (branch_weight * _entropy_rows(counts)).sum() / known_weight
        )
        gain = (known_weight / total) * (parent_entropy - info)
        if gain <= _EPSILON:
            return None
        split_info = _split_info(branch_weight, total - known_weight, total)
        if split_info <= _EPSILON:
            return None
        return _Split(j, float(gain), float(gain / split_info), None)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def distribution(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        if self.root is None:
            raise RuntimeError("tree has no root")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if self.engine == "naive":
            out = np.empty((len(x), self._n_classes))
            for i, row in enumerate(x):
                out[i] = _descend(self.root, row)
            return out
        if len(x) == 0:
            return np.empty((0, self._n_classes))
        out = batch_distribution(self.root, x, np.arange(len(x), dtype=np.int64))
        # A single-leaf tree returns a read-only broadcast view;
        # callers expect an owned array like the per-row path produced.
        if not out.flags.writeable:
            out = out.copy()
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total nodes in the tree: the paper's ``Comp`` complexity measure."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.node_count()

    @property
    def leaf_count(self) -> int:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.leaf_count()

    @property
    def depth(self) -> int:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root.depth()


class _PresortedGrower:
    """Index-based C4.5 growth over presorted columns (SPRINT-style).

    Grows the *same tree, bit for bit*, as :meth:`C45DecisionTree._grow`
    -- every floating-point reduction consumes the same operand
    sequence in the same order -- while eliminating the naive
    recursion's per-node costs:

    * numeric columns are sorted once per fit (or inherited from
      :meth:`repro.mining.dataset.Dataset.presort`) and threaded
      through the recursion as filtered ``(positions, values)`` pairs;
      children of a split derive their orders by linear filtering and a
      stable two-way merge, never by re-sorting;
    * node membership travels as row-index subsets instead of copied
      matrices, and missing-value routing appends indices carrying
      fractional weights instead of duplicating rows with ``np.vstack``;
    * sort-order derivation for a child is *lazy*, so children that
      immediately bottom out as leaves never pay for it;
    * split evaluation runs over preallocated scratch buffers with the
      left/right halves of every reduction stacked into single numpy
      calls -- the arithmetic per element is unchanged (each row of a
      stacked reduction is reduced independently, exactly as the
      two-array form reduces it), only the per-call overhead goes.
    """

    def __init__(self, tree: "C45DecisionTree", dataset: Dataset) -> None:
        self._tree = tree
        self._x = dataset.x
        self._y = dataset.y
        self._attributes = dataset.attributes
        self._n_classes = dataset.n_classes
        # Slot s of the stacked evaluation holds numeric attribute
        # _numeric_js[s]; its one-hot/cumsum columns are s*C .. s*C+C-1.
        self._numeric_js = [
            j for j, a in enumerate(dataset.attributes) if a.is_numeric
        ]
        n = max(len(dataset), 1)
        c = self._n_classes
        dc = max(len(self._numeric_js), 1) * c
        self._dc = dc
        self._one_hot = np.zeros((n, dc))
        self._cumulative = np.empty((n, dc))
        self._arange = np.arange(max(n, c, len(self._numeric_js)))
        self._mask = np.empty(n, dtype=bool)
        # Column t marks the known rows of the node's t-th candidate
        # attribute (one scatter per node covers all attributes).
        self._known = np.empty((n, max(len(self._numeric_js), 1)), dtype=bool)
        # Per-candidate parent entropies (kept out of the shared
        # entropy work areas, which the boundary chain reuses later).
        self._pe = np.empty(max(len(self._numeric_js), 1))
        # Boundary-evaluation scratch, sized on first use to twice the
        # root's stacked known count (children only shrink): row i of
        # the left block and row F + i of the right block pair up.
        self._stack_rows = 0

    def _ensure_stack(self, rows_needed: int) -> None:
        if self._stack_rows >= rows_needed:
            return
        r = max(rows_needed, 2)
        c = self._n_classes
        self._lr = np.empty((r, c))
        self._stacked = np.empty((r, c))
        self._h = np.empty(r)
        # Entropy work areas (see _entropy_rows_fused).
        self._tot = np.empty((r, 1))
        self._p = np.empty((r, c))
        self._logs = np.empty((r, c))
        self._pos = np.empty((r, c), dtype=bool)
        self._stack_rows = r

    # -- recursion ------------------------------------------------------
    def grow(self, rows, w, lists, depth: int) -> TreeNode:
        """``lists`` is the node's per-attribute sort orders, or a
        zero-argument callable producing them (lazy derivation)."""
        tree = self._tree
        y_node = self._y[rows]
        class_weights = np.bincount(y_node, weights=w, minlength=self._n_classes)
        total = class_weights.sum()
        if (
            total < 2 * tree.min_leaf_weight
            or np.count_nonzero(class_weights) <= 1
            or (tree.max_depth is not None and depth >= tree.max_depth)
        ):
            return LeafNode(class_weights)

        if callable(lists):
            lists = lists()
        split = self._best_split(rows, y_node, w, total, lists)
        if split is None:
            return LeafNode(class_weights)

        j = split.attribute_index
        attribute = self._attributes[j]
        m = rows.size
        if attribute.is_numeric:
            assert split.threshold is not None
            positions, values = lists[j]
            cut = int(np.searchsorted(values, split.threshold, side="right"))
            mask_low = np.zeros(m, dtype=bool)
            mask_low[positions[:cut]] = True
            mask_high = np.zeros(m, dtype=bool)
            mask_high[positions[cut:]] = True
            branch_masks = [mask_low, mask_high]
            known = mask_low | mask_high
        else:
            column = self._x[rows, j]
            known = ~np.isnan(column)
            branch_masks = [
                known & (column == v) for v in range(len(attribute.values))
            ]

        branch_weights = np.array([w[mask].sum() for mask in branch_masks])
        known_total = branch_weights.sum()
        if known_total <= 0:
            return LeafNode(class_weights)
        fractions = branch_weights / known_total

        children: list[TreeNode] = []
        missing = ~known
        has_missing = bool(missing.any())
        for mask, fraction in zip(branch_masks, fractions):
            route_missing = has_missing and fraction > 0
            if route_missing:
                child_rows = np.concatenate([rows[mask], rows[missing]])
                child_w = np.concatenate([w[mask], w[missing] * fraction])
            else:
                child_rows = rows[mask]
                child_w = w[mask]
            if child_w.sum() <= 0:
                children.append(LeafNode(class_weights.copy()))
            else:
                # Both derivations produce the identical canonical sort
                # orders (see _resorted_lists); filtering scans the
                # parent's lists at O(parent size) per attribute, so a
                # child much smaller than its parent re-sorts instead.
                if child_rows.size <= 64 or child_rows.size * 8 <= m:
                    child_lists = functools.partial(
                        _resorted_lists, self._x, child_rows, self._attributes
                    )
                else:
                    child_lists = functools.partial(
                        _filter_lists, lists, mask, missing if route_missing else None
                    )
                children.append(self.grow(child_rows, child_w, child_lists, depth + 1))

        return DecisionNode(
            class_weights=class_weights,
            attribute=attribute,
            attribute_index=j,
            threshold=split.threshold,
            children=children,
            branch_weights=branch_weights,
        )

    # -- split selection ------------------------------------------------
    def _best_split(self, rows, y_node, w, total, lists) -> _Split | None:
        tree = self._tree
        m = rows.size
        # For columns with no missing value at this node the reference's
        # known-weight sum w[known].sum() reduces a verbatim copy of w,
        # so one shared w.sum() serves every such column.
        w_sum = w.sum()
        by_index: dict[int, _Split] = {}
        if self._numeric_js:
            self._numeric_splits(rows, y_node, w, total, m, w_sum, lists, by_index)
        for j, attribute in enumerate(self._attributes):
            if not attribute.is_numeric:
                candidate = self._nominal_split(
                    rows, y_node, w, total, m, w_sum, j, attribute
                )
                if candidate is not None:
                    by_index[j] = candidate
        # The reference accumulates candidates in attribute order, and
        # both the average-gain sum and the max's first-wins tie-break
        # depend on that order; rebuild it.
        candidates = [
            by_index[j]
            for j in sorted(by_index)
            if by_index[j].gain > _EPSILON
        ]
        if not candidates:
            return None
        average_gain = sum(c.gain for c in candidates) / len(candidates)
        admissible = [c for c in candidates if c.gain + _EPSILON >= average_gain]
        return max(admissible, key=lambda c: (c.gain_ratio, c.gain))

    def _numeric_splits(
        self, rows, y_node, w, total, m, w_sum, lists, by_index
    ) -> None:
        """Evaluate every numeric attribute of the node in one stacked
        pass, reproducing the reference evaluation bit for bit.

        Per-attribute candidate cuts are laid side by side: attribute
        slot ``s`` owns columns ``s*C .. s*C+C-1`` of one (rows, d*C)
        one-hot matrix, so a single column-wise cumsum produces every
        attribute's running class counts at once (cumsum is sequential
        per column, and trailing zero rows of shorter columns add 0.0,
        which never changes a float).  Boundary detection, feasibility,
        and the entropy/gain chain then run once over the concatenated
        boundary rows of all attributes -- every row of those
        reductions belongs to exactly one attribute and is reduced
        independently, so each sees the operand sequence the reference
        gave it -- and only the tiny per-attribute argmax loop remains.
        """
        tree = self._tree
        c = self._n_classes
        dc = self._dc
        arange = self._arange
        # Candidate slots: numeric attributes with at least one known row.
        cand = [
            (s, j, lists[j][0], lists[j][1])
            for s, j in enumerate(self._numeric_js)
            if lists[j][0].size
        ]
        if not cand:
            return
        n_cand = len(cand)
        sizes = [positions.size for _, _, positions, _ in cand]
        sz = np.array(sizes)
        positions_cat = (
            cand[0][2]
            if n_cand == 1
            else np.concatenate([p for _, _, p, _ in cand])
        )
        # Known-row weights, batched: one boolean scatter marks every
        # attribute's known rows at once, then each attribute that has
        # missing values sums its own rows in node order -- exactly the
        # reference's per-attribute w[~isnan(column)].sum().
        kws = [w_sum] * n_cand
        need = [t for t, nk in enumerate(sizes) if nk != m]
        if need:
            km = self._known[:m, :n_cand]
            km[:] = False
            km[positions_cat, np.repeat(arange[:n_cand], sz)] = True
            for t in need:
                kws[t] = w[km[:, t]].sum()
        # Admission gate, exactly the reference's.
        min2 = 2 * tree.min_leaf_weight
        if any(kw < min2 for kw in kws):
            kept = [t for t in range(n_cand) if kws[t] >= min2]
            if not kept:
                return
            cand = [cand[t] for t in kept]
            kws = [kws[t] for t in kept]
            sizes = [sizes[t] for t in kept]
            n_cand = len(cand)
            sz = np.array(sizes)
            positions_cat = (
                cand[0][2]
                if n_cand == 1
                else np.concatenate([p for _, _, p, _ in cand])
            )
        max_known = max(sizes)
        stack = int(positions_cat.size)
        self._ensure_stack(2 * stack)

        values = (
            cand[0][3]
            if n_cand == 1
            else np.concatenate([v for _, _, _, v in cand])
        )
        col_starts = np.array([s * c for s, _, _, _ in cand])
        ends = np.cumsum(sz)
        offs0 = ends - sz
        # One scatter builds every attribute's one-hot block: row i of
        # block t is the i-th sorted known row of that attribute.
        row_idx = (
            arange[:stack]
            if n_cand == 1
            else np.concatenate([arange[:nk] for nk in sizes])
        )
        col_idx = y_node[positions_cat] + np.repeat(col_starts, sz)
        one_hot = self._one_hot[:max_known]
        one_hot[:] = 0.0
        one_hot[row_idx, col_idx] = w[positions_cat]
        left_counts = one_hot.cumsum(axis=0, out=self._cumulative[:max_known])
        flat = left_counts.ravel()  # contiguous view of the buffer slice

        # Per-attribute totals live in the last valid row of each block.
        # Parent entropies come from one fused row chain when every row
        # reduction is sequential from 0.0 (C < 8) and every total
        # clears the reference's positivity test by a wide margin; the
        # degenerate cases fall back to the per-attribute scalar replica
        # of _entropy.
        arange_c = arange[:c]
        tot = flat[((sz - 1) * dc + col_starts)[:, None] + arange_c]
        if c < 8 and min(kws) >= 1e-300:
            pe = self._entropy_rows_fused(tot, self._pe[:n_cand])
        else:
            pe = np.array([_entropy_fast(tot[t]) for t in range(n_cand)])

        # values[1:] > values[:-1] is IEEE-equivalent to the reference's
        # diff(values) > 0 (x - y > 0 iff x > y under gradual underflow,
        # and both give False whenever the difference is NaN).  At the
        # joints between attribute segments the comparison crosses
        # attributes; mask those positions out.
        cmp = values[1:] > values[:-1]
        if n_cand > 1:
            cmp[ends[:-1] - 1] = False
        bnd = np.flatnonzero(cmp)
        if bnd.size == 0:
            return
        # Boundaries per attribute segment, in ascending slot order.
        cuts = np.searchsorted(bnd, ends[:-1])
        b_counts = np.diff(np.concatenate([[0], cuts, [bnd.size]]))
        big = int(bnd.size)

        slot_of = np.repeat(arange[:n_cand], b_counts)
        local = bnd - offs0[slot_of]
        col_base = col_starts[slot_of]
        lr = self._lr[: 2 * big]
        np.take(flat, (local * dc + col_base)[:, None] + arange_c, out=lr[:big])
        np.subtract(tot[slot_of], lr[:big], out=lr[big:])
        branch_w = np.add.reduce(lr, axis=1)
        ge = branch_w >= tree.min_leaf_weight
        feasible = np.logical_and(ge[:big], ge[big:], out=ge[:big])
        if feasible.all():
            # Every cut admissible (the common case away from the
            # leaves): the compaction below would be an identity copy.
            fidx = None
            f = big
            counts = lr
            weights_f = branch_w
            slot_f = slot_of
        else:
            fidx = np.flatnonzero(feasible)
            f = fidx.size
            if f == 0:
                return
            stacked_idx = np.concatenate([fidx, fidx + big])
            counts = np.take(lr, stacked_idx, axis=0, out=self._stacked[: 2 * f])
            weights_f = np.take(branch_w, stacked_idx)
            slot_f = slot_of[fidx]

        # H(left) rows at h[:f], H(right) rows at h[f:], then
        # (lw * Hl + rw * Hr) / kw and the gain transform, all with the
        # reference's per-element arithmetic (the per-attribute scalars
        # kw, H(parent), kw/total arrive as per-row vectors; multiplying
        # or dividing by a broadcast scalar and by a vector holding that
        # scalar are the same element operation).
        kw_arr = np.array(kws)
        h = self._entropy_rows_fused(counts, self._h[: 2 * f])
        np.multiply(weights_f, h, out=h)
        info = np.add(h[:f], h[f:], out=h[:f])
        np.divide(info, kw_arr[slot_f], out=info)
        np.subtract(pe[slot_f], info, out=info)
        gains = np.multiply(info, (kw_arr / total)[slot_f], out=info)

        # First-max argmax within each attribute's feasible segment,
        # exactly the reference's per-attribute np.argmax.
        seg_counts = np.bincount(slot_f, minlength=n_cand)
        start = 0
        for t, (s, j, _, _) in enumerate(cand):
            count = int(seg_counts[t])
            if count == 0:
                continue
            seg = gains[start : start + count]
            best = int(seg.argmax())
            gain = float(seg[best])
            row = start + best
            start += count
            if gain <= _EPSILON:
                continue
            g = int(bnd[row] if fidx is None else bnd[int(fidx[row])])
            threshold = _threshold_between(values[g], values[g + 1])
            split_info = _split_info_scalar(
                (weights_f[row], weights_f[f + row]),
                total - kws[t],
                total,
            )
            if split_info <= _EPSILON:
                continue
            by_index[j] = _Split(j, gain, gain / split_info, threshold)

    def _nominal_split(
        self, rows, y_node, w, total, m, w_sum, j, attribute
    ) -> _Split | None:
        """:meth:`C45DecisionTree._nominal_split`, op for op, with the
        grower's scratch buffers and scalar tails."""
        tree = self._tree
        n_values = len(attribute.values)
        self._ensure_stack(n_values)
        column = self._x[rows, j]
        known = ~np.isnan(column)
        n_known = int(np.count_nonzero(known))
        if n_known == 0:
            return None
        if n_known == m:
            # All values known: the reference's all-true gathers return
            # verbatim copies, and w[known].sum() is the shared w.sum().
            values = column.astype(np.int64)
            labels = y_node
            weights = w
            known_weight = w_sum
        else:
            values = column[known].astype(np.int64)
            labels = y_node[known]
            weights = w[known]
            known_weight = weights.sum()

        counts = np.zeros((n_values, self._n_classes))
        np.add.at(counts, (values, labels), weights)
        branch_weight = np.add.reduce(counts, axis=1)
        if np.count_nonzero(branch_weight >= tree.min_leaf_weight) < 2:
            return None

        parent_entropy = _entropy_fast(counts.sum(axis=0))
        h = self._entropy_rows_fused(counts, self._h[:n_values])
        np.multiply(branch_weight, h, out=h)
        info = float(h.sum() / known_weight)
        gain = (known_weight / total) * (parent_entropy - info)
        if gain <= _EPSILON:
            return None
        split_info = _split_info_scalar(
            branch_weight.tolist(), total - known_weight, total
        )
        if split_info <= _EPSILON:
            return None
        return _Split(j, float(gain), float(gain / split_info), None)

    def _entropy_rows_fused(self, counts, out):
        """`_entropy_rows` into preallocated buffers, op for op."""
        b = counts.shape[0]
        totals = np.add.reduce(counts, axis=1, keepdims=True, out=self._tot[:b])
        np.maximum(totals, 1e-300, out=totals)
        p = np.divide(counts, totals, out=self._p[:b])
        logs = self._logs[:b]
        # The reference zero-fills and computes a masked log2 over the
        # positive entries; the where-variant defeats SIMD.  Clamping to
        # the smallest positive double instead leaves every p > 0
        # untouched (p > 0 implies p >= 5e-324; Dataset validates
        # weights non-negative, so p < 0 cannot occur) and maps p == 0
        # cells to
        # a finite log, whose product 0 * log is -0.0 where the
        # reference holds +0.0.  Row sums absorb the zero sign
        # (x + -0.0 == x + +0.0 bit for bit for x != -0.0, and sums
        # start from +0.0), so entropies match the reference exactly
        # except possibly in the sign of zero on all-zero-count rows --
        # and a zero's sign is invisible to every downstream use
        # (comparisons, multiplication by non-negative weights, and
        # sums all treat +-0.0 alike; no entropy is stored in a tree).
        np.maximum(p, _TINY, out=logs)
        np.log2(logs, out=logs)
        np.multiply(p, logs, out=p)
        np.add.reduce(p, axis=1, out=out)
        np.negative(out, out=out)
        return out


def _entropy_fast(counts: np.ndarray) -> float:
    """`_entropy`, bit for bit, for short count vectors.

    numpy reduces float64 arrays shorter than its pairwise-sum unroll
    width (8) strictly sequentially from 0.0, so scalar accumulation
    reproduces the reference's sums exactly.  The log2 itself still
    goes through ``np.log2`` on an identically-compacted array because
    ``math.log2`` differs from it by one ULP on ~0.1% of inputs.
    """
    cs = counts.tolist()
    if len(cs) >= 8:
        return _entropy(counts)
    total = 0.0
    for c in cs:
        total += c
    if total <= 0:
        return 0.0
    # The reference divides first and filters underflow-to-zero
    # quotients after; replicate both passes.
    ps = [c / total for c in cs if c > 0]
    ps = [p for p in ps if p > 0]
    logs = np.log2(ps)
    s = 0.0
    for p, log in zip(ps, logs.tolist()):
        s += p * log
    return float(-s)


def _resorted_lists(
    x: np.ndarray, rows: np.ndarray, attributes: tuple
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Build a node's sort orders by sorting its columns directly.

    Produces exactly the object :func:`_filter_lists` derives -- for
    each numeric column, the node-local positions of the known values
    ordered by ``(value, node position)`` -- because that ordering is
    unique and a stable argsort of the child column realises it (NaNs
    sort last and are trimmed).  Used for small children of large
    nodes, where filtering the parent's lists costs O(parent size) per
    attribute but re-sorting costs only O(child size log child size).
    """
    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for j, attribute in enumerate(attributes):
        if not attribute.is_numeric:
            continue
        column = x[rows, j]
        order = np.argsort(column, kind="stable")
        n_known = column.size - int(np.count_nonzero(np.isnan(column)))
        positions = order[:n_known]
        out[j] = (positions, column[positions])
    return out


def _filter_lists(
    lists: dict[int, tuple[np.ndarray, np.ndarray]],
    mask: np.ndarray,
    missing: np.ndarray | None,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Restrict per-attribute sort orders to one child's rows.

    ``mask`` selects the rows routed down the branch by the split test;
    ``missing`` (when the branch also receives fractionally weighted
    missing-value rows) selects the rows appended *after* them.  Child
    node positions renumber mask rows first, missing rows second --
    matching the ``vstack([x[mask], x[missing]])`` layout of the
    reference -- so a value tie between a mask row and a missing row
    must order the mask row first, which is what the stable two-way
    merge guarantees (all mask positions are smaller).
    """
    child_map = np.cumsum(mask) - 1
    if missing is not None:
        miss_map = np.cumsum(missing) - 1 + int(np.count_nonzero(mask))
    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for j, (positions, values) in lists.items():
        in_mask = mask[positions]
        pos_a = child_map[positions[in_mask]]
        val_a = values[in_mask]
        if missing is None:
            out[j] = (pos_a, val_a)
            continue
        in_miss = missing[positions]
        parent_b = positions[in_miss]
        if parent_b.size == 0:
            out[j] = (pos_a, val_a)
            continue
        out[j] = _merge_sorted(pos_a, val_a, miss_map[parent_b], values[in_miss])
    return out


def _split_info_scalar(
    branch_weights: tuple, missing_weight: float, total: float
) -> float:
    """`_split_info` without the array round-trip (same accumulation
    order: positive branch weights first, then the missing weight)."""
    info = 0.0
    for part in branch_weights:
        if part > 0:
            fraction = part / total
            info -= fraction * math.log2(fraction)
    if missing_weight > 0:
        fraction = missing_weight / total
        info -= fraction * math.log2(fraction)
    return info


def _descend(node: TreeNode, row: np.ndarray) -> np.ndarray:
    if isinstance(node, LeafNode):
        return node.distribution()
    assert isinstance(node, DecisionNode)
    branch = node.branch_of(row[node.attribute_index])
    if branch is not None:
        return _descend(node.children[branch], row)
    # Missing value: blend all branches by their training fractions.
    fractions = node.branch_fractions()
    blended = np.zeros(len(node.class_weights))
    for fraction, child in zip(fractions, node.children):
        if fraction > 0:
            blended += fraction * _descend(child, row)
    return blended


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    # A denormal count can underflow to exactly 0 in the division,
    # where 0 * log2(0) would poison the sum with NaN.
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def _entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Row-wise entropy for a (rows, classes) count matrix."""
    totals = counts.sum(axis=1, keepdims=True)
    p = counts / np.maximum(totals, 1e-300)
    logs = np.zeros_like(p)
    positive = p > 0
    logs[positive] = np.log2(p[positive])
    return -(p * logs).sum(axis=1)


def _split_info(
    branch_weights: np.ndarray, missing_weight: float, total: float
) -> float:
    """C4.5 split information, counting missing values as a branch."""
    parts = list(branch_weights[branch_weights > 0])
    if missing_weight > 0:
        parts.append(missing_weight)
    info = 0.0
    for part in parts:
        fraction = part / total
        info -= fraction * math.log2(fraction)
    return info


def _threshold_between(lo: float, hi: float) -> float:
    """A threshold t with lo <= t < hi, preferring the readable midpoint.

    The midpoint of two adjacent float values can round up to ``hi``
    (or overflow) when the values span the huge magnitudes bit flips
    produce; a threshold equal to ``hi`` would send both sides down the
    same branch and stall the recursion, so fall back to ``lo`` -- the
    "largest observed value below the cut", which is what C4.5 itself
    uses -- whenever the midpoint fails to separate strictly.
    """
    lo, hi = float(lo), float(hi)  # plain floats: overflow -> inf, no warning
    mid = (lo + hi) / 2.0
    if not math.isfinite(mid):
        mid = lo + (hi - lo) / 2.0
    if math.isfinite(mid) and lo <= mid < hi:
        return mid
    return lo

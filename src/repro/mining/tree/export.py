"""Tree rendering and rule extraction.

Figure 2 of the paper shows a decision tree whose non-leaf nodes are
labelled with variables, edges with value conditions and leaves with a
failure classification; the predicate is then read off "by interpreting
the decision tree as a conjunction of disjunctions".  This module
supplies the two supporting operations:

* :func:`render_tree` -- a J48-style indented ASCII rendering of a
  fitted tree (used by the Figure 2 experiment driver);
* :func:`tree_to_rules` -- every root-to-leaf path as a (conditions,
  class, weight) rule, the raw material for predicate extraction in
  :mod:`repro.core.extraction`.
"""

from __future__ import annotations

import dataclasses

from repro.mining.dataset import Attribute
from repro.mining.tree.node import DecisionNode, LeafNode, TreeNode

__all__ = ["render_tree", "tree_to_rules", "PathCondition", "TreeRule"]


@dataclasses.dataclass(frozen=True)
class PathCondition:
    """One edge of a root-to-leaf path: ``attribute <op> value``.

    ``op`` is ``"<="`` or ``">"`` for numeric attributes and ``"=="``
    for nominal ones (``value`` is then the value *string*).
    """

    attribute: Attribute
    attribute_index: int
    op: str
    value: float | str

    def __str__(self) -> str:
        return f"{self.attribute.name} {self.op} {_fmt(self.value)}"


@dataclasses.dataclass(frozen=True)
class TreeRule:
    """A root-to-leaf path: conjunction of conditions implying a class."""

    conditions: tuple[PathCondition, ...]
    class_index: int
    class_label: str
    weight: float
    errors: float

    def __str__(self) -> str:
        if self.conditions:
            body = " AND ".join(str(c) for c in self.conditions)
        else:
            body = "TRUE"
        return f"IF {body} THEN class={self.class_label}"


def render_tree(node: TreeNode, class_labels: tuple[str, ...]) -> str:
    """Return a J48-style indented text rendering of the tree."""
    lines: list[str] = []
    _render(node, class_labels, lines, prefix="")
    return "\n".join(lines)


def _render(
    node: TreeNode, class_labels: tuple[str, ...], lines: list[str], prefix: str
) -> None:
    if isinstance(node, LeafNode):
        label = class_labels[node.majority_class]
        lines.append(
            f"{prefix}-> {label} ({node.total_weight:.1f}"
            f"/{node.training_errors:.1f})"
        )
        return
    assert isinstance(node, DecisionNode)
    for branch, child in enumerate(node.children):
        edge = f"{node.attribute.name} {node.branch_label(branch)}"
        if isinstance(child, LeafNode):
            label = class_labels[child.majority_class]
            lines.append(
                f"{prefix}{edge}: {label} "
                f"({child.total_weight:.1f}/{child.training_errors:.1f})"
            )
        else:
            lines.append(f"{prefix}{edge}:")
            _render(child, class_labels, lines, prefix + "|   ")


def tree_to_rules(
    node: TreeNode, class_labels: tuple[str, ...]
) -> list[TreeRule]:
    """Return one rule per leaf (depth-first, left to right)."""
    rules: list[TreeRule] = []
    _collect(node, class_labels, (), rules)
    return rules


def _collect(
    node: TreeNode,
    class_labels: tuple[str, ...],
    path: tuple[PathCondition, ...],
    rules: list[TreeRule],
) -> None:
    if isinstance(node, LeafNode):
        rules.append(
            TreeRule(
                conditions=path,
                class_index=node.majority_class,
                class_label=class_labels[node.majority_class],
                weight=node.total_weight,
                errors=node.training_errors,
            )
        )
        return
    assert isinstance(node, DecisionNode)
    for branch, child in enumerate(node.children):
        if node.attribute.is_numeric:
            assert node.threshold is not None
            condition = PathCondition(
                node.attribute,
                node.attribute_index,
                "<=" if branch == 0 else ">",
                node.threshold,
            )
        else:
            condition = PathCondition(
                node.attribute,
                node.attribute_index,
                "==",
                node.attribute.values[branch],
            )
        _collect(child, class_labels, path + (condition,), rules)


def _fmt(value: float | str) -> str:
    if isinstance(value, str):
        return value
    return f"{value:.6g}"

"""Naive Bayes classifier (Gaussian for numeric, Laplace for nominal).

One of the alternative classification algorithms the paper's survey
names (Section IV).  It is also the learner that motivates the signed
logarithmic attribute mapping of Step 2: bit-flipped values span 300
orders of magnitude, which destroys a Gaussian likelihood unless the
magnitudes are first compressed.  The ablation experiment A-2 exercises
exactly that interaction.

Missing attribute values are simply skipped in the likelihood product,
the standard Naive Bayes treatment.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset

__all__ = ["NaiveBayes"]

# Floor on the per-class variance so constant attributes do not produce
# zero-width Gaussians (Weka applies the same kind of floor).
_MIN_VARIANCE = 1e-9


class NaiveBayes(Classifier):
    """Weighted Naive Bayes with Gaussian numeric likelihoods."""

    def __init__(self, laplace: float = 1.0) -> None:
        if laplace < 0:
            raise ValueError("laplace smoothing must be non-negative")
        self.laplace = laplace

    def fit(self, dataset: Dataset) -> "NaiveBayes":
        if len(dataset) == 0:
            raise ValueError("cannot fit Naive Bayes on an empty dataset")
        self._remember_schema(dataset)
        n_classes = dataset.n_classes
        class_weights = dataset.class_weights()
        # Laplace-smoothed class priors.
        self._log_prior = np.log(
            (class_weights + self.laplace)
            / (class_weights.sum() + self.laplace * n_classes)
        )

        self._means = np.zeros((n_classes, dataset.n_attributes))
        self._variances = np.ones((n_classes, dataset.n_attributes))
        self._nominal_logp: dict[int, np.ndarray] = {}

        for j, attribute in enumerate(dataset.attributes):
            column = dataset.x[:, j]
            known = ~np.isnan(column)
            if attribute.is_numeric:
                for cls in range(n_classes):
                    mask = known & (dataset.y == cls)
                    w = dataset.weights[mask]
                    if w.sum() <= 0:
                        continue
                    values = column[mask]
                    # Bit-flipped magnitudes (~1e300) overflow the
                    # moment sums; an overflowed mean/variance just
                    # means "this class's values are absurdly spread",
                    # so clamp to huge-but-finite.
                    with np.errstate(over="ignore"):
                        mean = float(np.average(values, weights=w))
                        if not math.isfinite(mean):
                            mean = math.copysign(1e300, mean)
                        var = float(
                            np.average((values - mean) ** 2, weights=w)
                        )
                    if not math.isfinite(var):
                        var = 1e300
                    self._means[cls, j] = mean
                    self._variances[cls, j] = max(var, _MIN_VARIANCE)
            else:
                n_values = len(attribute.values)
                counts = np.full((n_classes, n_values), self.laplace)
                mask = known
                np.add.at(
                    counts,
                    (dataset.y[mask], column[mask].astype(np.int64)),
                    dataset.weights[mask],
                )
                totals = counts.sum(axis=1, keepdims=True)
                self._nominal_logp[j] = np.log(counts / totals)
        return self

    def distribution(self, x: np.ndarray) -> np.ndarray:
        schema = self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n_classes = schema.n_classes
        log_post = np.tile(self._log_prior, (len(x), 1))
        # Bit-flipped state values reach 1e300+, where the squared
        # deviation overflows to inf: that is the correct likelihood
        # limit (log-likelihood -> -inf), so silence the warnings and
        # clean up any inf-inf artefacts afterwards.
        with np.errstate(over="ignore", invalid="ignore"):
            for j, attribute in enumerate(schema.attributes):
                column = x[:, j]
                known = ~np.isnan(column)
                if not known.any():
                    continue
                if attribute.is_numeric:
                    values = column[known][:, None]
                    mean = self._means[:, j][None, :]
                    var = self._variances[:, j][None, :]
                    log_like = -0.5 * (
                        np.log(2 * np.pi * var) + (values - mean) ** 2 / var
                    )
                else:
                    table = self._nominal_logp[j]
                    log_like = table[:, column[known].astype(np.int64)].T
                log_post[known] += log_like
            # Normalise in log space for stability.
            log_post = np.nan_to_num(log_post, nan=-np.inf)
            log_post -= log_post.max(axis=1, keepdims=True)
            log_post = np.nan_to_num(log_post, nan=0.0)  # -inf - -inf rows
            posterior = np.exp(log_post)
            posterior /= posterior.sum(axis=1, keepdims=True)
        return posterior

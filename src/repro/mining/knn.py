"""k-nearest-neighbour search and classifier.

SMOTE (Section IV of the paper) generates each synthetic minority
instance along the segment joining a seed instance to one of its ``k``
nearest minority-class neighbours, so the sampling module needs a
nearest-neighbour search; a small k-NN *classifier* is also provided as
one of the alternative learners the paper's survey names.

Distances are Euclidean over a mixed-attribute encoding: numeric
attributes are min-max normalised to [0, 1] (so no single wide-range
variable dominates), nominal attributes contribute 0/1 overlap distance,
and missing values contribute the maximal distance 1 for their column.
"""

from __future__ import annotations

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset

__all__ = ["NearestNeighbours", "KNNClassifier"]


class NearestNeighbours:
    """Brute-force nearest-neighbour index over a dataset's instances."""

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        self._numeric = np.array([a.is_numeric for a in dataset.attributes])
        x = dataset.x
        lo = np.full(dataset.n_attributes, 0.0)
        span = np.full(dataset.n_attributes, 1.0)
        if self._numeric.any() and len(dataset):
            with np.errstate(all="ignore"):
                col_lo = np.nanmin(x[:, self._numeric], axis=0)
                col_hi = np.nanmax(x[:, self._numeric], axis=0)
            col_lo = np.where(np.isnan(col_lo), 0.0, col_lo)
            col_hi = np.where(np.isnan(col_hi), 0.0, col_hi)
            col_span = np.where(col_hi > col_lo, col_hi - col_lo, 1.0)
            lo[self._numeric] = col_lo
            span[self._numeric] = col_span
        self._lo = lo
        self._span = span
        self._encoded = self._encode(x)

    def _encode(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        encoded = x.copy()
        encoded[:, self._numeric] = (
            encoded[:, self._numeric] - self._lo[self._numeric]
        ) / self._span[self._numeric]
        return encoded

    def distances(self, row: np.ndarray) -> np.ndarray:
        """Return the distance from ``row`` to every indexed instance."""
        query = self._encode(row)[0]
        diff = np.empty_like(self._encoded)
        numeric = self._numeric
        diff[:, numeric] = self._encoded[:, numeric] - query[numeric]
        # Nominal columns: overlap distance (0 if equal, 1 otherwise).
        nominal = ~numeric
        if nominal.any():
            diff[:, nominal] = np.where(
                self._encoded[:, nominal] == query[nominal], 0.0, 1.0
            )
        # Any missing value (in query or index) counts as distance 1.
        missing = np.isnan(diff)
        diff[missing] = 1.0
        with np.errstate(over="ignore"):
            # Bit-flipped magnitudes overflow the square to inf, which
            # is the right answer: maximally distant.
            return np.sqrt((diff**2).sum(axis=1))

    def distances_many(self, rows: np.ndarray) -> np.ndarray:
        """Return the ``(len(rows), n)`` all-pairs distance matrix.

        Row ``i`` is bit-identical to ``distances(rows[i])``: the same
        elementwise encodings, subtractions, and per-pair reductions
        run over a broadcast ``(m, n, d)`` difference tensor instead of
        ``m`` Python-level calls.  Intended for moderate ``m`` (SMOTE
        minority folds); memory is ``m * n * d`` floats.
        """
        queries = self._encode(rows)
        numeric = self._numeric
        diff = np.empty((queries.shape[0],) + self._encoded.shape)
        diff[:, :, numeric] = self._encoded[None, :, numeric] - queries[:, None, numeric]
        nominal = ~numeric
        if nominal.any():
            diff[:, :, nominal] = np.where(
                self._encoded[None, :, nominal] == queries[:, None, nominal], 0.0, 1.0
            )
        missing = np.isnan(diff)
        diff[missing] = 1.0
        with np.errstate(over="ignore"):
            return np.sqrt((diff**2).sum(axis=2))

    def neighbour_table(self, k: int) -> list[np.ndarray]:
        """Self-query every indexed instance at once.

        Entry ``i`` equals ``neighbours(x[i], k, exclude=i)``, so a
        table built at the largest ``k`` of a sweep can be sliced
        (``table[i][:smaller_k]``) for every smaller ``k``: per-row
        ``neighbours`` returns a prefix of one stable full ordering.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        distances = self.distances_many(self._dataset.x)
        np.fill_diagonal(distances, np.inf)
        counts = np.isfinite(distances).sum(axis=1)
        order = np.argsort(distances, axis=1, kind="stable")
        return [order[i, : min(k, int(counts[i]))] for i in range(len(order))]

    def neighbours(
        self, row: np.ndarray, k: int, exclude: int | None = None
    ) -> np.ndarray:
        """Return the indices of the ``k`` nearest instances to ``row``.

        ``exclude`` removes one index (typically the query instance
        itself) from consideration.  Fewer than ``k`` indices are
        returned when the index does not contain that many candidates.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        distances = self.distances(row)
        if exclude is not None:
            distances[exclude] = np.inf
        k = min(k, int(np.isfinite(distances).sum()))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(distances, kind="stable")
        return order[:k]


class KNNClassifier(Classifier):
    """Distance-weighted k-nearest-neighbour classifier."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._index: NearestNeighbours | None = None
        self._train: Dataset | None = None

    def fit(self, dataset: Dataset) -> "KNNClassifier":
        if len(dataset) == 0:
            raise ValueError("cannot fit k-NN on an empty dataset")
        self._train = dataset
        self._index = NearestNeighbours(dataset)
        self._remember_schema(dataset)
        return self

    def distribution(self, x: np.ndarray) -> np.ndarray:
        schema = self._check_fitted()
        assert self._index is not None and self._train is not None
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.zeros((len(x), schema.n_classes))
        for i, row in enumerate(x):
            idx = self._index.neighbours(row, self.k)
            votes = np.zeros(schema.n_classes)
            distances = self._index.distances(row)[idx]
            weights = 1.0 / (distances + 1e-12)
            for j, neighbour in enumerate(idx):
                votes[self._train.y[neighbour]] += (
                    weights[j] * self._train.weights[neighbour]
                )
            total = votes.sum()
            out[i] = votes / total if total > 0 else 1.0 / schema.n_classes
        return out

"""Common classifier interface for the data mining substrate.

All learners here (decision trees, rule sets, Naive Bayes, logistic
regression, nearest neighbour) follow the same minimal protocol so the
cross-validation harness and the methodology pipeline can treat them
interchangeably:

* ``fit(dataset)`` trains on a :class:`repro.mining.dataset.Dataset`
  and returns ``self``.
* ``distribution(x)`` returns per-class probability estimates with one
  row per instance of the 2-D input array ``x``.
* ``predict(x)`` returns the arg-max class index per row.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.mining.dataset import Dataset

__all__ = ["Classifier", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Raised when predicting with a classifier that was never fitted."""


class Classifier(abc.ABC):
    """Abstract base class for all substrate classifiers."""

    _schema: Dataset | None = None

    @abc.abstractmethod
    def fit(self, dataset: Dataset) -> "Classifier":
        """Train the classifier on ``dataset`` and return ``self``."""

    @abc.abstractmethod
    def distribution(self, x: np.ndarray) -> np.ndarray:
        """Return an ``(n, n_classes)`` array of class probabilities."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return the most probable class index for each row of ``x``."""
        return np.argmax(self.distribution(np.atleast_2d(x)), axis=1)

    def predict_one(self, row: np.ndarray) -> int:
        """Return the predicted class index for a single instance."""
        return int(self.predict(np.atleast_2d(row))[0])

    def _check_fitted(self) -> Dataset:
        if self._schema is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self._schema

    def _remember_schema(self, dataset: Dataset) -> None:
        # Keep an empty shell of the training data so prediction knows the
        # attribute schema and class labels without holding the instances.
        self._schema = dataset.subset(np.zeros(0, dtype=np.int64))

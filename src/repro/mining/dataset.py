"""Tabular dataset model for the data mining substrate.

This is the reproduction's analogue of Weka's ``Instances``: a dataset
is a matrix of attribute values plus a nominal class attribute, with a
weight per instance.  Instance weights matter because C4.5 uses them
both for cost-sensitive learning (Ting's instance weighting, Section IV
of the paper) and internally for fractional missing-value handling.

Numeric attributes are stored as ``float64``.  Nominal attributes are
stored as the ``float64`` index of the value within the attribute's
value tuple (``NaN`` marks a missing value for either kind).  This keeps
the whole dataset in one NumPy array, which the decision-tree induction
relies on for speed.

Datasets also carry a lazily computed **presort cache**
(:meth:`Dataset.presort`): one stable sort order per numeric column,
restricted to the rows where the value is known.  C4.5 induction seeds
its index-based recursion from this cache instead of re-sorting every
column at every node, and the cache is *derived* -- never recomputed --
across the row operations the mining pipeline chains: an
order-preserving :meth:`subset` filters the parent's orders,
:meth:`concat` merges the two operands' orders, and weight-only
:meth:`replace` shares the cache outright (sort order depends on ``x``
alone).  See ``docs/mining-performance.md``.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["Attribute", "Dataset", "DatasetError"]


class DatasetError(ValueError):
    """Raised for malformed datasets or inconsistent dataset operations."""


NUMERIC = "numeric"
NOMINAL = "nominal"


@dataclasses.dataclass(frozen=True)
class Attribute:
    """Schema for a single dataset column.

    Parameters
    ----------
    name:
        Column name; unique within a dataset.
    kind:
        Either ``"numeric"`` or ``"nominal"``.
    values:
        For nominal attributes, the ordered tuple of admissible string
        values.  Must be empty for numeric attributes.
    """

    name: str
    kind: str = NUMERIC
    values: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (NUMERIC, NOMINAL):
            raise DatasetError(f"unknown attribute kind {self.kind!r}")
        if self.kind == NOMINAL and not self.values:
            raise DatasetError(f"nominal attribute {self.name!r} needs values")
        if self.kind == NUMERIC and self.values:
            raise DatasetError(f"numeric attribute {self.name!r} cannot have values")
        if len(set(self.values)) != len(self.values):
            raise DatasetError(f"attribute {self.name!r} has duplicate values")

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_nominal(self) -> bool:
        return self.kind == NOMINAL

    def index_of(self, value: str) -> int:
        """Return the index of a nominal value, raising on unknown values."""
        if self.is_numeric:
            raise DatasetError(f"attribute {self.name!r} is numeric")
        try:
            return self.values.index(value)
        except ValueError:
            raise DatasetError(
                f"value {value!r} not in domain of attribute {self.name!r}"
            ) from None

    def value_of(self, index: int) -> str:
        """Return the nominal value string at ``index``."""
        if self.is_numeric:
            raise DatasetError(f"attribute {self.name!r} is numeric")
        return self.values[int(index)]

    @classmethod
    def numeric(cls, name: str) -> "Attribute":
        return cls(name, NUMERIC)

    @classmethod
    def nominal(cls, name: str, values: Iterable[str]) -> "Attribute":
        return cls(name, NOMINAL, tuple(values))


class Dataset:
    """A weighted tabular dataset with a nominal class attribute.

    Parameters
    ----------
    attributes:
        Input attribute schemas, one per column of ``x``.
    class_attribute:
        Nominal attribute describing the class labels in ``y``.
    x:
        2-D array-like of shape ``(n, len(attributes))``.  Nominal
        columns hold value indices; ``NaN`` is a missing value.
    y:
        1-D array-like of ``n`` class indices.
    weights:
        Optional per-instance weights (default: all ones).
    name:
        Human-readable relation name (used by the ARFF writer).
    """

    def __init__(
        self,
        attributes: Sequence[Attribute],
        class_attribute: Attribute,
        x: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray | None = None,
        name: str = "dataset",
    ) -> None:
        if not class_attribute.is_nominal:
            raise DatasetError("class attribute must be nominal")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise DatasetError("duplicate attribute names")
        if class_attribute.name in names:
            raise DatasetError("class attribute name collides with an input attribute")

        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        self.class_attribute = class_attribute
        self.x = np.asarray(x, dtype=np.float64)
        if self.x.ndim != 2:
            self.x = self.x.reshape(len(y), len(self.attributes))
        self.y = np.asarray(y, dtype=np.int64)
        if self.x.shape != (len(self.y), len(self.attributes)):
            raise DatasetError(
                f"x has shape {self.x.shape}, expected "
                f"({len(self.y)}, {len(self.attributes)})"
            )
        if np.any(self.y < 0) or np.any(self.y >= len(class_attribute.values)):
            raise DatasetError("class index out of range")
        if weights is None:
            self.weights = np.ones(len(self.y), dtype=np.float64)
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if self.weights.shape != self.y.shape:
                raise DatasetError("weights must be one per instance")
            if np.any(self.weights < 0) or not np.all(np.isfinite(self.weights)):
                raise DatasetError("weights must be finite and non-negative")
        for j, attribute in enumerate(self.attributes):
            if attribute.is_nominal:
                column = self.x[:, j]
                valid = column[~np.isnan(column)]
                if valid.size and (
                    np.any(valid < 0) or np.any(valid >= len(attribute.values))
                ):
                    raise DatasetError(
                        f"nominal column {attribute.name!r} has out-of-range indices"
                    )
        self.name = name
        self._attribute_index = {a.name: i for i, a in enumerate(self.attributes)}
        # Lazily computed per-column stable sort orders (see presort()).
        self._presort: dict[int, tuple[np.ndarray, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.y)

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, n={len(self)}, "
            f"attributes={len(self.attributes)}, "
            f"classes={self.class_attribute.values})"
        )

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    @property
    def n_classes(self) -> int:
        return len(self.class_attribute.values)

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    def attribute_index(self, name: str) -> int:
        """Return the column index of the attribute called ``name``."""
        try:
            return self._attribute_index[name]
        except KeyError:
            raise DatasetError(f"no attribute named {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        """Return the raw column for attribute ``name``."""
        return self.x[:, self.attribute_index(name)]

    def class_counts(self) -> np.ndarray:
        """Return the unweighted instance count per class."""
        return np.bincount(self.y, minlength=self.n_classes).astype(np.int64)

    def class_weights(self) -> np.ndarray:
        """Return the total instance weight per class."""
        return np.bincount(
            self.y, weights=self.weights, minlength=self.n_classes
        ).astype(np.float64)

    def class_distribution(self) -> np.ndarray:
        """Return the weighted class distribution (sums to 1 when non-empty)."""
        counts = self.class_weights()
        total = counts.sum()
        if total <= 0:
            return counts
        return counts / total

    def majority_class(self) -> int:
        """Return the class index with the greatest total weight."""
        if len(self) == 0:
            raise DatasetError("empty dataset has no majority class")
        return int(np.argmax(self.class_weights()))

    # ------------------------------------------------------------------
    # Presort cache
    # ------------------------------------------------------------------
    def presort(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-numeric-column stable sort orders over the known values.

        Returns a mapping ``{column index: (positions, values)}`` where
        ``positions`` holds the row indices whose value in that column
        is known (non-NaN), ordered by ``(value, row index)``, and
        ``values`` is the column at those positions (ascending).  The
        result is cached on the dataset and must not be mutated; the
        arrays depend only on ``x``, so mutating ``x`` in place after
        calling this leaves a stale cache (the pipeline never does --
        every transformation goes through :meth:`replace`).
        """
        if self._presort is None:
            orders: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            for j, attribute in enumerate(self.attributes):
                if not attribute.is_numeric:
                    continue
                column = self.x[:, j]
                # Stable argsort puts NaNs (missing) last; trim them so
                # positions cover exactly the known rows.
                order = np.argsort(column, kind="stable")
                n_known = len(column) - int(np.count_nonzero(np.isnan(column)))
                positions = order[:n_known]
                orders[j] = (positions, column[positions])
            self._presort = orders
        return self._presort

    # The pickle payload drops the cache: it is pure derived state, and
    # orchestration workers ship datasets by value where the extra
    # arrays would double the transfer for no benefit.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_presort"] = None
        return state

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        attributes: Sequence[Attribute],
        class_attribute: Attribute,
        records: Iterable[Sequence[object]],
        labels: Iterable[str | int],
        weights: Iterable[float] | None = None,
        name: str = "dataset",
    ) -> "Dataset":
        """Build a dataset from human-readable rows.

        ``records`` holds one row per instance with values matching the
        attribute kinds: numbers for numeric attributes, value strings
        (or indices) for nominal ones, ``None`` for missing.  ``labels``
        holds the class value per instance (string or index).
        """
        attributes = tuple(attributes)
        rows = []
        for record in records:
            record = list(record)
            if len(record) != len(attributes):
                raise DatasetError(
                    f"record has {len(record)} values, expected {len(attributes)}"
                )
            row = []
            for value, attribute in zip(record, attributes):
                row.append(_encode_value(value, attribute))
            rows.append(row)
        y = [_encode_label(label, class_attribute) for label in labels]
        if len(y) != len(rows):
            raise DatasetError("records and labels differ in length")
        x = (
            np.asarray(rows, dtype=np.float64)
            if rows
            else np.empty((0, len(attributes)))
        )
        w = None if weights is None else np.asarray(list(weights), dtype=np.float64)
        return cls(attributes, class_attribute, x, np.asarray(y), w, name=name)

    def replace(
        self,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        attributes: Sequence[Attribute] | None = None,
        name: str | None = None,
    ) -> "Dataset":
        """Return a copy with any of the underlying arrays replaced."""
        out = Dataset(
            self.attributes if attributes is None else attributes,
            self.class_attribute,
            self.x if x is None else x,
            self.y if y is None else y,
            self.weights if weights is None else weights,
            name=self.name if name is None else name,
        )
        # Sort orders depend only on x: label/weight/name replacements
        # share the cache outright.
        if x is None and attributes is None:
            out._presort = self._presort
        return out

    def copy(self) -> "Dataset":
        return self.replace(
            x=self.x.copy(), y=self.y.copy(), weights=self.weights.copy()
        )

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return the sub-dataset selected by an index or boolean array.

        When this dataset's presort cache is already computed and the
        selection preserves row order (a boolean mask or strictly
        ascending indices), the subset's cache is *derived* by
        filtering the parent's sort orders -- O(n) per column instead
        of a fresh O(n log n) sort.
        """
        indices = np.asarray(indices)
        out = self.replace(
            x=self.x[indices], y=self.y[indices], weights=self.weights[indices]
        )
        if self._presort is not None:
            if indices.dtype == bool:
                selected = np.flatnonzero(indices)
            else:
                selected = indices
            if selected.ndim == 1 and (
                selected.size == 0 or np.all(np.diff(selected) > 0)
            ):
                remap = np.full(len(self), -1, dtype=np.int64)
                remap[selected] = np.arange(selected.size, dtype=np.int64)
                derived: dict[int, tuple[np.ndarray, np.ndarray]] = {}
                for j, (positions, values) in self._presort.items():
                    mapped = remap[positions]
                    keep = mapped >= 0
                    derived[j] = (mapped[keep], values[keep])
                out._presort = derived
        return out

    def concat(self, other: "Dataset") -> "Dataset":
        """Return the row-wise concatenation of two schema-compatible datasets."""
        if (
            other.attributes != self.attributes
            or other.class_attribute != self.class_attribute
        ):
            raise DatasetError("cannot concatenate datasets with different schemas")
        out = self.replace(
            x=np.vstack([self.x, other.x]),
            y=np.concatenate([self.y, other.y]),
            weights=np.concatenate([self.weights, other.weights]),
        )
        if self._presort is not None and other._presort is not None:
            # Merge the operands' sort orders; all of self's rows come
            # before other's, so ties resolve self-first -- exactly the
            # stable order a fresh sort of the concatenation would give.
            derived: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            offset = len(self)
            for j, (pos_a, val_a) in self._presort.items():
                pos_b, val_b = other._presort[j]
                derived[j] = _merge_sorted(
                    pos_a, val_a, pos_b + offset, val_b
                )
            out._presort = derived
        return out

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Return a row-shuffled copy."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def with_weights(self, weights: np.ndarray) -> "Dataset":
        return self.replace(weights=np.asarray(weights, dtype=np.float64))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def describe(self) -> list[dict[str, object]]:
        """Per-attribute summary statistics (for reports and sanity
        checks of injection data): numeric columns get min/max/mean and
        the missing fraction; nominal columns get value counts."""
        out: list[dict[str, object]] = []
        for j, attribute in enumerate(self.attributes):
            column = self.x[:, j]
            missing = float(np.isnan(column).mean()) if len(self) else 0.0
            entry: dict[str, object] = {
                "name": attribute.name,
                "kind": attribute.kind,
                "missing": missing,
            }
            known = column[~np.isnan(column)]
            if attribute.is_numeric:
                if known.size:
                    entry["min"] = float(known.min())
                    entry["max"] = float(known.max())
                    finite = known[np.isfinite(known)]
                    entry["mean"] = (
                        float(finite.mean()) if finite.size else math.nan
                    )
                else:
                    entry["min"] = entry["max"] = entry["mean"] = math.nan
            else:
                counts = np.bincount(
                    known.astype(np.int64), minlength=len(attribute.values)
                )
                entry["counts"] = {
                    value: int(count)
                    for value, count in zip(attribute.values, counts)
                }
            out.append(entry)
        return out

    # ------------------------------------------------------------------
    # Row decoding (for display / export)
    # ------------------------------------------------------------------
    def decode_row(self, i: int) -> list[object]:
        """Return row ``i`` with nominal indices replaced by their strings."""
        row: list[object] = []
        for j, attribute in enumerate(self.attributes):
            value = self.x[i, j]
            if math.isnan(value):
                row.append(None)
            elif attribute.is_nominal:
                row.append(attribute.value_of(int(value)))
            else:
                row.append(float(value))
        return row

    def decode_label(self, i: int) -> str:
        return self.class_attribute.value_of(int(self.y[i]))


def _merge_sorted(
    pos_a: np.ndarray,
    val_a: np.ndarray,
    pos_b: np.ndarray,
    val_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Stable merge of two (positions, ascending values) sort orders.

    Every position in ``pos_a`` must be smaller than every position in
    ``pos_b`` (the caller offsets the second operand), so putting ``a``
    elements first on value ties reproduces a stable sort by
    ``(value, position)`` of the union.
    """
    if pos_b.size == 0:
        return pos_a, val_a
    if pos_a.size == 0:
        return pos_b, val_b
    at = np.searchsorted(val_b, val_a, side="left") + np.arange(pos_a.size)
    bt = np.searchsorted(val_a, val_b, side="right") + np.arange(pos_b.size)
    positions = np.empty(pos_a.size + pos_b.size, dtype=np.int64)
    values = np.empty(positions.size, dtype=np.float64)
    positions[at] = pos_a
    positions[bt] = pos_b
    values[at] = val_a
    values[bt] = val_b
    return positions, values


def _encode_value(value: object, attribute: Attribute) -> float:
    if value is None:
        return math.nan
    if attribute.is_numeric:
        encoded = float(value)  # type: ignore[arg-type]
        if math.isnan(encoded):
            return math.nan
        return encoded
    if isinstance(value, str):
        return float(attribute.index_of(value))
    index = int(value)  # type: ignore[call-overload]
    if not 0 <= index < len(attribute.values):
        raise DatasetError(
            f"index {index} out of range for nominal attribute {attribute.name!r}"
        )
    return float(index)


def _encode_label(label: object, class_attribute: Attribute) -> int:
    if isinstance(label, str):
        return class_attribute.index_of(label)
    index = int(label)  # type: ignore[call-overload]
    if not 0 <= index < len(class_attribute.values):
        raise DatasetError(f"class index {index} out of range")
    return index

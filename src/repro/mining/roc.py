"""ROC analysis (Fawcett-style, Section IV).

The paper's tables use the single-model trapezoid AUC, but Section IV
also describes the general construction: "For different settings, the
same algorithm will produce multiple points on the plot.  The area
under the curve (AUC) obtained by joining these points to (0,0) and
(1,1) is a common measure of expected accuracy".  This module provides
that construction for score-producing classifiers: the full ROC curve
over decision thresholds and its exact (rank-based) area.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["RocCurve", "roc_curve", "roc_auc"]


@dataclasses.dataclass
class RocCurve:
    """A ROC curve: matching arrays of (fpr, tpr) plus the thresholds.

    Points are ordered from the strictest threshold (0, 0) to the most
    permissive (1, 1).
    """

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve by the trapezoid rule."""
        # (np.trapz was removed in NumPy 2; the rule is one line.)
        dx = np.diff(self.fpr)
        mid = (self.tpr[1:] + self.tpr[:-1]) / 2.0
        return float((dx * mid).sum())

    def point_closest_to_perfect(self) -> tuple[float, float, float]:
        """(fpr, tpr, threshold) minimising distance to (0, 1)."""
        distances = np.hypot(self.fpr, 1.0 - self.tpr)
        i = int(np.argmin(distances))
        return float(self.fpr[i]), float(self.tpr[i]), float(self.thresholds[i])


def roc_curve(
    actual: np.ndarray,
    scores: np.ndarray,
    weights: np.ndarray | None = None,
) -> RocCurve:
    """ROC curve of a positive-class score.

    ``actual`` holds 0/1 labels (1 = positive); ``scores`` a higher-is-
    more-positive score (e.g. the classifier's positive-class
    probability).  One curve point per distinct score, plus the (0,0)
    endpoint with threshold +inf.
    """
    actual = np.asarray(actual)
    scores = np.asarray(scores, dtype=np.float64)
    if actual.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if weights is None:
        weights = np.ones(len(actual))
    weights = np.asarray(weights, dtype=np.float64)

    order = np.argsort(-scores, kind="stable")
    scores = scores[order]
    positive = (actual[order] == 1).astype(np.float64) * weights[order]
    negative = (actual[order] != 1).astype(np.float64) * weights[order]

    total_pos = positive.sum()
    total_neg = negative.sum()
    tp = np.cumsum(positive)
    fp = np.cumsum(negative)

    # Collapse ties: keep the last index of each distinct score.
    distinct = np.flatnonzero(np.diff(scores)) if len(scores) else np.array([], int)
    keep = np.concatenate([distinct, [len(scores) - 1]]) if len(scores) else []
    tpr = tp[keep] / total_pos if total_pos > 0 else np.zeros(len(keep))
    fpr = fp[keep] / total_neg if total_neg > 0 else np.zeros(len(keep))
    thresholds = scores[keep]

    return RocCurve(
        fpr=np.concatenate([[0.0], fpr]),
        tpr=np.concatenate([[0.0], tpr]),
        thresholds=np.concatenate([[np.inf], thresholds]),
    )


def roc_auc(
    actual: np.ndarray,
    scores: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Exact area under the ROC curve (equals the rank statistic)."""
    return roc_curve(actual, scores, weights).auc

"""Supervised discretisation (Fayyad & Irani's MDL method).

A standard Weka preprocessing step: numeric attributes are cut into
intervals by recursively choosing the entropy-minimising boundary and
accepting a cut only when the information gain passes the minimum
description length criterion

    gain > ( log2(N-1) + log2(3^k - 2) - [k*E - k1*E1 - k2*E2] ) / N

where ``k``/``k1``/``k2`` are the class counts present in the parent
and the two halves and ``E``/``E1``/``E2`` their entropies.  Useful
for learners without native numeric handling (PRISM's classic form,
Naive Bayes with multinomial likelihoods) and as an interpretable
binning for reporting.

:class:`MdlDiscretiser` is fit on training data and maps any
schema-compatible dataset onto nominal interval attributes.
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from repro.mining.dataset import Attribute, Dataset

__all__ = ["MdlDiscretiser", "mdl_cut_points"]


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def _class_counts(y: np.ndarray, n_classes: int) -> np.ndarray:
    return np.bincount(y, minlength=n_classes).astype(float)


def mdl_cut_points(
    values: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    max_depth: int = 16,
) -> list[float]:
    """MDL-accepted cut points (ascending) for one numeric attribute."""
    known = ~np.isnan(values)
    values = values[known]
    y = y[known]
    if len(values) < 2:
        return []
    order = np.argsort(values, kind="stable")
    values = values[order]
    y = y[order]
    cuts: list[float] = []
    _split(values, y, n_classes, cuts, max_depth)
    return sorted(cuts)


def _split(
    values: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    cuts: list[float],
    depth: int,
) -> None:
    n = len(values)
    if depth <= 0 or n < 4:
        return
    parent_counts = _class_counts(y, n_classes)
    parent_entropy = _entropy(parent_counts)
    if parent_entropy == 0.0:
        return

    # Candidate boundaries: between adjacent distinct values.
    boundaries = np.flatnonzero(np.diff(values) > 0)
    if boundaries.size == 0:
        return
    one_hot = np.zeros((n, n_classes))
    one_hot[np.arange(n), y] = 1.0
    left_counts_all = np.cumsum(one_hot, axis=0)

    best_index = -1
    best_info = math.inf
    for b in boundaries:
        left = left_counts_all[b]
        right = parent_counts - left
        n_left = left.sum()
        n_right = right.sum()
        info = (n_left * _entropy(left) + n_right * _entropy(right)) / n
        if info < best_info:
            best_info = info
            best_index = int(b)
    if best_index < 0:
        return

    left = left_counts_all[best_index]
    right = parent_counts - left
    gain = parent_entropy - best_info
    k = int(np.count_nonzero(parent_counts))
    k1 = int(np.count_nonzero(left))
    k2 = int(np.count_nonzero(right))
    e, e1, e2 = parent_entropy, _entropy(left), _entropy(right)
    delta = math.log2(3**k - 2) - (k * e - k1 * e1 - k2 * e2)
    threshold = (math.log2(n - 1) + delta) / n
    if gain <= threshold:
        return

    lo, hi = float(values[best_index]), float(values[best_index + 1])
    mid = (lo + hi) / 2.0
    if not (math.isfinite(mid) and lo <= mid < hi):
        mid = lo
    cuts.append(mid)
    split_at = best_index + 1
    _split(values[:split_at], y[:split_at], n_classes, cuts, depth - 1)
    _split(values[split_at:], y[split_at:], n_classes, cuts, depth - 1)


class MdlDiscretiser:
    """Fit MDL cut points per numeric attribute; map datasets onto bins.

    Attributes for which MDL accepts no cut become single-value nominal
    attributes (``"all"``) -- carrying no information, exactly what the
    criterion concluded.
    """

    def __init__(self, max_depth: int = 16) -> None:
        self.max_depth = max_depth
        self._cuts: dict[int, list[float]] | None = None
        self._attributes: tuple[Attribute, ...] | None = None

    def fit(self, dataset: Dataset) -> "MdlDiscretiser":
        cuts: dict[int, list[float]] = {}
        attributes: list[Attribute] = []
        for j, attribute in enumerate(dataset.attributes):
            if not attribute.is_numeric:
                attributes.append(attribute)
                continue
            points = mdl_cut_points(
                dataset.x[:, j], dataset.y, dataset.n_classes, self.max_depth
            )
            cuts[j] = points
            attributes.append(
                Attribute.nominal(attribute.name, _interval_labels(points))
            )
        self._cuts = cuts
        self._attributes = tuple(attributes)
        return self

    @property
    def cut_points(self) -> dict[str, list[float]]:
        """Accepted cut points keyed by attribute name."""
        if self._cuts is None or self._attributes is None:
            raise RuntimeError("discretiser not fitted")
        return {
            self._attributes[j].name: list(points)
            for j, points in self._cuts.items()
        }

    def apply(self, dataset: Dataset) -> Dataset:
        """Return ``dataset`` with numeric attributes binned."""
        if self._cuts is None or self._attributes is None:
            raise RuntimeError("discretiser not fitted")
        x = dataset.x.copy()
        for j, points in self._cuts.items():
            column = dataset.x[:, j]
            binned = np.empty(len(column))
            for i, value in enumerate(column):
                if np.isnan(value):
                    binned[i] = np.nan
                else:
                    binned[i] = float(bisect.bisect_right(points, value))
            x[:, j] = binned
        return Dataset(
            self._attributes,
            dataset.class_attribute,
            x,
            dataset.y,
            dataset.weights,
            name=dataset.name,
        )


def _interval_labels(points: list[float]) -> tuple[str, ...]:
    if not points:
        return ("all",)
    labels = [f"<={points[0]:.6g}"]
    for lo, hi in zip(points, points[1:]):
        labels.append(f"({lo:.6g},{hi:.6g}]")
    labels.append(f">{points[-1]:.6g}")
    return tuple(labels)

"""Attribute transformations used in Step 2 preprocessing.

The paper notes that data value bit-flips produce extremely skewed
attribute distributions (one flipped exponent bit turns 1.0 into 2e308),
so learners with distributional assumptions (Naive Bayes, logistic
regression) benefit from the signed logarithmic mapping::

    g(x) =  log(x + 1)        if x >= 0
         = -log(|x| + 1)      if x <  0

which compresses magnitude while preserving sign and order.  A
standardisation transform is also provided for the logistic learner.

Transforms are fit on a training dataset and applied to any dataset
with the same schema, so cross-validation cannot leak test statistics.
"""

from __future__ import annotations

import numpy as np

from repro.mining.dataset import Dataset

__all__ = [
    "signed_log",
    "SignedLogTransform",
    "StandardiseTransform",
]


def signed_log(x: np.ndarray) -> np.ndarray:
    """The paper's g(x): log1p on magnitude, sign preserved.

    NaN (missing) and infinite values are mapped to NaN and +/-log-max
    respectively so downstream learners never see infinities.
    """
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(all="ignore"):
        out = np.sign(x) * np.log1p(np.abs(x))
    # log1p(inf) = inf; clamp to the largest finite representable log.
    max_log = np.log(np.finfo(np.float64).max)
    out = np.clip(out, -max_log, max_log)
    return out


class SignedLogTransform:
    """Apply g(x) to every numeric attribute of a dataset.

    Stateless, but exposes fit/apply so it composes with stateful
    transforms in a preprocessing pipeline.
    """

    def fit(self, dataset: Dataset) -> "SignedLogTransform":
        return self

    def apply(self, dataset: Dataset) -> Dataset:
        numeric = np.array([a.is_numeric for a in dataset.attributes])
        if not numeric.any():
            return dataset
        x = dataset.x.copy()
        x[:, numeric] = signed_log(x[:, numeric])
        return dataset.replace(x=x)


class StandardiseTransform:
    """Zero-mean unit-variance scaling of numeric attributes.

    Statistics are estimated on the training data passed to
    :meth:`fit`; constant columns keep unit scale so they map to zero
    rather than NaN.
    """

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._numeric: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "StandardiseTransform":
        numeric = np.array([a.is_numeric for a in dataset.attributes])
        mean = np.zeros(dataset.n_attributes)
        scale = np.ones(dataset.n_attributes)
        if numeric.any() and len(dataset):
            with np.errstate(all="ignore"):
                col_mean = np.nanmean(dataset.x[:, numeric], axis=0)
                col_std = np.nanstd(dataset.x[:, numeric], axis=0)
            col_mean = np.where(np.isfinite(col_mean), col_mean, 0.0)
            col_std = np.where(
                np.isfinite(col_std) & (col_std > 0), col_std, 1.0
            )
            mean[numeric] = col_mean
            scale[numeric] = col_std
        self._mean, self._scale, self._numeric = mean, scale, numeric
        return self

    def apply(self, dataset: Dataset) -> Dataset:
        if self._mean is None or self._scale is None or self._numeric is None:
            raise RuntimeError("StandardiseTransform must be fitted before apply")
        if not self._numeric.any():
            return dataset
        x = dataset.x.copy()
        cols = self._numeric
        x[:, cols] = (x[:, cols] - self._mean[cols]) / self._scale[cols]
        return dataset.replace(x=x)

"""Class-imbalance treatments: undersampling, oversampling, SMOTE.

Fault injection datasets are heavily imbalanced -- most sampled states
do not lead to failure -- so Step 2 of the methodology rebalances the
training data before induction.  Section IV / V-C of the paper describe
three treatments, all implemented here:

* **random undersampling** of the majority class (sampling *without*
  replacement), parameterised by the percentage of majority instances
  *retained*; the paper sweeps 10 levels over [5, 100]%.
* **oversampling with replacement** of the minority class,
  parameterised by the percentage of synthetic minority instances
  *added* relative to the current minority count; the paper sweeps 15
  levels over [100, 1500]%.  This is the ``q = 0`` special case of
  SMOTE.
* **SMOTE**: each minority seed contributes ``r = level/100`` synthetic
  instances placed at ``s = t + q * (n - t)`` for a neighbour ``n``
  drawn (with replacement) from the seed's ``k`` nearest minority
  neighbours and ``q`` uniform on [0, 1].

All functions leave the input dataset untouched and return a new one.
Nominal attribute values of SMOTE-synthesised instances are copied from
the seed or the neighbour with equal probability (interpolating a value
index would be meaningless).
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.mining.cache import ContentCache, array_fingerprint, caching_disabled
from repro.mining.dataset import Dataset
from repro.mining.knn import NearestNeighbours

__all__ = [
    "SamplingError",
    "undersample_majority",
    "oversample_minority",
    "smote",
    "apply_sampling",
]


class SamplingError(ValueError):
    """Raised for invalid sampling parameters or degenerate datasets."""


# The paper's refinement grid sweeps SMOTE over k in [1, 15] against a
# fixed training fold, so the minority neighbour lists are computed once
# at the grid's largest k and *sliced* for every smaller k (per-seed
# neighbour lists are prefixes of one stable distance ordering; see
# NearestNeighbours.neighbour_table).  Keyed purely by minority-matrix
# content, so any two plans sharing a training fold share the table.
_TABLE_K = 15
_NEIGHBOUR_TABLES = ContentCache(maxsize=16, name="smote-neighbour-tables")


def _minority_neighbour_table(minority: Dataset, k: int) -> list[np.ndarray]:
    table_k = max(k, _TABLE_K)
    key = array_fingerprint(minority.x)
    cached = _NEIGHBOUR_TABLES.get(key)
    if cached is not None and cached[0] >= table_k:
        return cached[1]
    table = NearestNeighbours(minority).neighbour_table(table_k)
    _NEIGHBOUR_TABLES.put(key, (table_k, table))
    return table


def _split_by_class(dataset: Dataset, positive: int) -> tuple[np.ndarray, np.ndarray]:
    positive_idx = np.flatnonzero(dataset.y == positive)
    negative_idx = np.flatnonzero(dataset.y != positive)
    return positive_idx, negative_idx


def undersample_majority(
    dataset: Dataset,
    level: float,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Keep ``level`` percent of the majority (negative) class.

    ``level`` is a percentage in (0, 100]; sampling is without
    replacement, matching the paper's undersampling treatment.  The
    minority (positive) class is kept intact.
    """
    if not 0 < level <= 100:
        raise SamplingError(f"undersampling level must be in (0, 100], got {level}")
    positive_idx, negative_idx = _split_by_class(dataset, positive)
    keep = max(1, int(round(len(negative_idx) * level / 100.0)))
    keep = min(keep, len(negative_idx))
    kept_negative = rng.choice(negative_idx, size=keep, replace=False)
    selected = np.concatenate([positive_idx, kept_negative])
    return dataset.subset(rng.permutation(selected))


def oversample_minority(
    dataset: Dataset,
    level: float,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Add ``level`` percent synthetic copies of the minority class.

    Sampling is with replacement; ``level=300`` adds three copies of the
    minority class on average.  This is SMOTE with ``q = 0``.
    """
    if level <= 0:
        raise SamplingError(f"oversampling level must be positive, got {level}")
    positive_idx, _ = _split_by_class(dataset, positive)
    if len(positive_idx) == 0:
        raise SamplingError("cannot oversample: no minority instances")
    extra = int(round(len(positive_idx) * level / 100.0))
    if extra == 0:
        return dataset.copy()
    drawn = rng.choice(positive_idx, size=extra, replace=True)
    addition = dataset.subset(drawn)
    return dataset.concat(addition).shuffled(rng)


def smote(
    dataset: Dataset,
    level: float,
    k: int,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Synthetic Minority Over-sampling TEchnique (Chawla et al.).

    Each minority seed ``t`` contributes ``r = level / 100`` synthetic
    instances (the fractional remainder is realised stochastically):
    a neighbour ``n`` is drawn with replacement from ``t``'s ``k``
    nearest minority neighbours, and the synthetic instance is
    ``t + q * (n - t)`` with ``q`` uniform on [0, 1] for numeric
    attributes; nominal attributes take the seed's or neighbour's value
    with equal probability.
    """
    if level <= 0:
        raise SamplingError(f"SMOTE level must be positive, got {level}")
    if k < 1:
        raise SamplingError(f"SMOTE needs k >= 1, got {k}")
    positive_idx, _ = _split_by_class(dataset, positive)
    if len(positive_idx) == 0:
        raise SamplingError("cannot apply SMOTE: no minority instances")
    minority = dataset.subset(positive_idx)
    if len(minority) == 1:
        # A single seed has no neighbours to interpolate towards; fall
        # back to replication, the q=0 special case.
        return oversample_minority(dataset, level, rng, positive)

    if caching_disabled():
        # Pre-reuse reference path: an index queried seed by seed.
        index = NearestNeighbours(minority)
        table = None
    else:
        table = _minority_neighbour_table(minority, k)
    numeric = np.array([a.is_numeric for a in dataset.attributes])
    nominal = ~numeric
    n_nominal = int(np.count_nonzero(nominal))
    r_whole, r_frac = divmod(level / 100.0, 1.0)

    synthetic_chunks = []
    n_synthetic = 0
    for i in range(len(minority)):
        r = int(r_whole) + (1 if rng.random() < r_frac else 0)
        if r == 0:
            continue
        if table is None:
            neighbours = index.neighbours(minority.x[i], k, exclude=i)
        else:
            neighbours = table[i][:k]
        if len(neighbours) == 0:
            continue
        choices = rng.choice(neighbours, size=r, replace=True)
        seed = minority.x[i]
        others = minority.x[choices]
        # One seed's rows each consumed 1 + n_nominal uniforms in order
        # (the interpolation q, then the nominal coin vector), with no
        # other draw interleaved -- and Generator.random fills an array
        # from the very double stream repeated scalar calls consume, so
        # one batched draw replays the per-row sequence exactly.
        draws = rng.random(r * (1 + n_nominal)).reshape(r, 1 + n_nominal)
        q = draws[:, :1]
        block = np.repeat(seed[None, :], r, axis=0)
        block[:, numeric] = seed[numeric] + q * (others[:, numeric] - seed[numeric])
        if n_nominal:
            take_other = draws[:, 1:] < 0.5
            block[:, nominal] = np.where(take_other, others[:, nominal], seed[nominal])
        synthetic_chunks.append(block)
        n_synthetic += r

    if not synthetic_chunks:
        return dataset.copy()
    synthetic = Dataset(
        dataset.attributes,
        dataset.class_attribute,
        np.concatenate(synthetic_chunks, axis=0),
        np.full(n_synthetic, positive, dtype=np.int64),
        name=dataset.name,
    )
    return dataset.concat(synthetic).shuffled(rng)


def apply_sampling(
    dataset: Dataset,
    kind: str | None,
    level: float | None,
    k: int | None,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Dispatch a sampling configuration onto a dataset.

    ``kind`` is ``None`` (no resampling), ``"undersample"``,
    ``"oversample"`` (replacement) or ``"smote"``; this is the single
    entry point the Step-4 refinement grid drives.
    """
    if kind is None:
        return dataset
    if level is None:
        raise SamplingError(f"sampling kind {kind!r} requires a level")
    with obs.span("sampling.apply", kind=kind, level=level):
        if kind == "undersample":
            return undersample_majority(dataset, level, rng, positive)
        if kind == "oversample":
            return oversample_minority(dataset, level, rng, positive)
        if kind == "smote":
            if k is None:
                raise SamplingError("SMOTE requires a neighbour count k")
            return smote(dataset, level, k, rng, positive)
        raise SamplingError(f"unknown sampling kind {kind!r}")

"""Class-imbalance treatments: undersampling, oversampling, SMOTE.

Fault injection datasets are heavily imbalanced -- most sampled states
do not lead to failure -- so Step 2 of the methodology rebalances the
training data before induction.  Section IV / V-C of the paper describe
three treatments, all implemented here:

* **random undersampling** of the majority class (sampling *without*
  replacement), parameterised by the percentage of majority instances
  *retained*; the paper sweeps 10 levels over [5, 100]%.
* **oversampling with replacement** of the minority class,
  parameterised by the percentage of synthetic minority instances
  *added* relative to the current minority count; the paper sweeps 15
  levels over [100, 1500]%.  This is the ``q = 0`` special case of
  SMOTE.
* **SMOTE**: each minority seed contributes ``r = level/100`` synthetic
  instances placed at ``s = t + q * (n - t)`` for a neighbour ``n``
  drawn (with replacement) from the seed's ``k`` nearest minority
  neighbours and ``q`` uniform on [0, 1].

All functions leave the input dataset untouched and return a new one.
Nominal attribute values of SMOTE-synthesised instances are copied from
the seed or the neighbour with equal probability (interpolating a value
index would be meaningless).
"""

from __future__ import annotations

import numpy as np

from repro.mining.dataset import Dataset
from repro.mining.knn import NearestNeighbours

__all__ = [
    "SamplingError",
    "undersample_majority",
    "oversample_minority",
    "smote",
    "apply_sampling",
]


class SamplingError(ValueError):
    """Raised for invalid sampling parameters or degenerate datasets."""


def _split_by_class(dataset: Dataset, positive: int) -> tuple[np.ndarray, np.ndarray]:
    positive_idx = np.flatnonzero(dataset.y == positive)
    negative_idx = np.flatnonzero(dataset.y != positive)
    return positive_idx, negative_idx


def undersample_majority(
    dataset: Dataset,
    level: float,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Keep ``level`` percent of the majority (negative) class.

    ``level`` is a percentage in (0, 100]; sampling is without
    replacement, matching the paper's undersampling treatment.  The
    minority (positive) class is kept intact.
    """
    if not 0 < level <= 100:
        raise SamplingError(f"undersampling level must be in (0, 100], got {level}")
    positive_idx, negative_idx = _split_by_class(dataset, positive)
    keep = max(1, int(round(len(negative_idx) * level / 100.0)))
    keep = min(keep, len(negative_idx))
    kept_negative = rng.choice(negative_idx, size=keep, replace=False)
    selected = np.concatenate([positive_idx, kept_negative])
    return dataset.subset(rng.permutation(selected))


def oversample_minority(
    dataset: Dataset,
    level: float,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Add ``level`` percent synthetic copies of the minority class.

    Sampling is with replacement; ``level=300`` adds three copies of the
    minority class on average.  This is SMOTE with ``q = 0``.
    """
    if level <= 0:
        raise SamplingError(f"oversampling level must be positive, got {level}")
    positive_idx, _ = _split_by_class(dataset, positive)
    if len(positive_idx) == 0:
        raise SamplingError("cannot oversample: no minority instances")
    extra = int(round(len(positive_idx) * level / 100.0))
    if extra == 0:
        return dataset.copy()
    drawn = rng.choice(positive_idx, size=extra, replace=True)
    addition = dataset.subset(drawn)
    return dataset.concat(addition).shuffled(rng)


def smote(
    dataset: Dataset,
    level: float,
    k: int,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Synthetic Minority Over-sampling TEchnique (Chawla et al.).

    Each minority seed ``t`` contributes ``r = level / 100`` synthetic
    instances (the fractional remainder is realised stochastically):
    a neighbour ``n`` is drawn with replacement from ``t``'s ``k``
    nearest minority neighbours, and the synthetic instance is
    ``t + q * (n - t)`` with ``q`` uniform on [0, 1] for numeric
    attributes; nominal attributes take the seed's or neighbour's value
    with equal probability.
    """
    if level <= 0:
        raise SamplingError(f"SMOTE level must be positive, got {level}")
    if k < 1:
        raise SamplingError(f"SMOTE needs k >= 1, got {k}")
    positive_idx, _ = _split_by_class(dataset, positive)
    if len(positive_idx) == 0:
        raise SamplingError("cannot apply SMOTE: no minority instances")
    minority = dataset.subset(positive_idx)
    if len(minority) == 1:
        # A single seed has no neighbours to interpolate towards; fall
        # back to replication, the q=0 special case.
        return oversample_minority(dataset, level, rng, positive)

    index = NearestNeighbours(minority)
    numeric = np.array([a.is_numeric for a in dataset.attributes])
    r_whole, r_frac = divmod(level / 100.0, 1.0)

    synthetic_rows = []
    for i in range(len(minority)):
        r = int(r_whole) + (1 if rng.random() < r_frac else 0)
        if r == 0:
            continue
        neighbours = index.neighbours(minority.x[i], k, exclude=i)
        if len(neighbours) == 0:
            continue
        choices = rng.choice(neighbours, size=r, replace=True)
        seed = minority.x[i]
        for neighbour in choices:
            other = minority.x[neighbour]
            q = rng.random()
            row = seed.copy()
            row[numeric] = seed[numeric] + q * (other[numeric] - seed[numeric])
            if (~numeric).any():
                take_other = rng.random((~numeric).sum()) < 0.5
                nominal_values = np.where(
                    take_other, other[~numeric], seed[~numeric]
                )
                row[~numeric] = nominal_values
            synthetic_rows.append(row)

    if not synthetic_rows:
        return dataset.copy()
    synthetic = Dataset(
        dataset.attributes,
        dataset.class_attribute,
        np.asarray(synthetic_rows),
        np.full(len(synthetic_rows), positive, dtype=np.int64),
        name=dataset.name,
    )
    return dataset.concat(synthetic).shuffled(rng)


def apply_sampling(
    dataset: Dataset,
    kind: str | None,
    level: float | None,
    k: int | None,
    rng: np.random.Generator,
    positive: int = 1,
) -> Dataset:
    """Dispatch a sampling configuration onto a dataset.

    ``kind`` is ``None`` (no resampling), ``"undersample"``,
    ``"oversample"`` (replacement) or ``"smote"``; this is the single
    entry point the Step-4 refinement grid drives.
    """
    if kind is None:
        return dataset
    if level is None:
        raise SamplingError(f"sampling kind {kind!r} requires a level")
    if kind == "undersample":
        return undersample_majority(dataset, level, rng, positive)
    if kind == "oversample":
        return oversample_minority(dataset, level, rng, positive)
    if kind == "smote":
        if k is None:
            raise SamplingError("SMOTE requires a neighbour count k")
        return smote(dataset, level, k, rng, positive)
    raise SamplingError(f"unknown sampling kind {kind!r}")

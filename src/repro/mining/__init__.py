"""Data mining substrate (the reproduction's Weka analogue).

The DSN 2011 methodology uses the Weka Data Mining suite for Step 2
(preprocessing) and Step 3 (model generation).  Nothing from Weka or
scikit-learn is available here, so this subpackage implements the full
stack from scratch:

* :mod:`repro.mining.dataset` -- tabular dataset model with numeric and
  nominal attributes, instance weights and a nominal class attribute.
* :mod:`repro.mining.arff` -- reader/writer for the ARFF file format the
  paper converts PROPANE logs into.
* :mod:`repro.mining.tree` -- C4.5 decision tree induction (the paper's
  chosen symbolic pattern learner).
* :mod:`repro.mining.rules` -- rule induction (PRISM and a sequential
  covering learner), the paper's stated alternative symbolic learner.
* :mod:`repro.mining.bayes` / :mod:`repro.mining.logistic` -- the
  non-symbolic classifiers the paper names when motivating the signed
  logarithmic attribute mapping.
* :mod:`repro.mining.knn` -- k-nearest-neighbour search used by SMOTE.
* :mod:`repro.mining.sampling` -- random undersampling, oversampling
  with replacement and SMOTE, the class-imbalance treatments of
  Sections IV and V-C.
* :mod:`repro.mining.transforms` -- the signed log mapping g(x) and
  other attribute transformations.
* :mod:`repro.mining.metrics` -- confusion matrices and every evaluation
  metric Section IV defines (TPR/FPR, specificity/sensitivity,
  precision/recall/F1, geometric mean, trapezoid AUC, distance to the
  perfect classifier, expected misclassification cost, Ting instance
  weights, Breiman cost vectors).
* :mod:`repro.mining.crossval` -- stratified k-fold cross-validation.
"""

from repro.mining.dataset import Attribute, Dataset
from repro.mining.metrics import ConfusionMatrix
from repro.mining.tree import C45DecisionTree
from repro.mining.crossval import cross_validate, stratified_folds

__all__ = [
    "Attribute",
    "Dataset",
    "ConfusionMatrix",
    "C45DecisionTree",
    "cross_validate",
    "stratified_folds",
]

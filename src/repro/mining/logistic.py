"""Multinomial logistic regression.

The second non-symbolic learner the paper names alongside Naive Bayes
when motivating Step 2's logarithmic attribute mapping.  Trained by
full-batch gradient descent on the L2-regularised weighted cross
entropy with internal standardisation (fault-injection attributes span
extreme magnitudes; without scaling the optimiser would not move).

Nominal attributes are one-hot encoded internally; missing values are
imputed with the training mean (numeric) or contribute an all-zero
one-hot block (nominal).
"""

from __future__ import annotations

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset

__all__ = ["LogisticRegression"]


class LogisticRegression(Classifier):
    """Weighted multinomial logistic regression via gradient descent."""

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iter: int = 500,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol

    # ------------------------------------------------------------------
    # Feature encoding
    # ------------------------------------------------------------------
    def _design_matrix(self, x: np.ndarray, schema: Dataset) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        blocks = [np.ones((len(x), 1))]
        for j, attribute in enumerate(schema.attributes):
            column = x[:, j]
            if attribute.is_numeric:
                filled = np.where(np.isnan(column), self._impute[j], column)
                with np.errstate(over="ignore", invalid="ignore"):
                    scaled = (filled - self._mean[j]) / self._scale[j]
                # Clamp overflowed/huge features so the optimiser's
                # dot products stay finite.
                scaled = np.clip(np.nan_to_num(scaled, nan=0.0), -1e6, 1e6)
                blocks.append(scaled[:, None])
            else:
                onehot = np.zeros((len(x), len(attribute.values)))
                known = ~np.isnan(column)
                onehot[known, column[known].astype(np.int64)] = 1.0
                blocks.append(onehot)
        return np.hstack(blocks)

    def fit(self, dataset: Dataset) -> "LogisticRegression":
        if len(dataset) == 0:
            raise ValueError("cannot fit logistic regression on an empty dataset")
        self._remember_schema(dataset)
        n_attr = dataset.n_attributes
        self._impute = np.zeros(n_attr)
        self._mean = np.zeros(n_attr)
        self._scale = np.ones(n_attr)
        for j, attribute in enumerate(dataset.attributes):
            if not attribute.is_numeric:
                continue
            column = dataset.x[:, j]
            known = column[~np.isnan(column)]
            if known.size:
                # Bit-flipped magnitudes overflow the moment sums; an
                # overflowed statistic just means "huge", so clamp.
                with np.errstate(over="ignore"):
                    mean = float(known.mean())
                    std = float(known.std())
                if not np.isfinite(mean):
                    mean = float(np.sign(mean)) * 1e300
                if not np.isfinite(std) or std <= 0:
                    std = max(abs(mean), 1.0)
                self._impute[j] = mean
                self._mean[j] = mean
                self._scale[j] = std

        schema = self._check_fitted()
        design = self._design_matrix(dataset.x, schema)
        n, d = design.shape
        m = dataset.n_classes
        targets = np.zeros((n, m))
        targets[np.arange(n), dataset.y] = 1.0
        weights = dataset.weights[:, None]
        weight_total = dataset.weights.sum()

        coef = np.zeros((d, m))
        previous_loss = np.inf
        for _ in range(self.max_iter):
            probabilities = _softmax(design @ coef)
            gradient = design.T @ (weights * (probabilities - targets))
            gradient /= weight_total
            gradient[1:] += self.l2 * coef[1:]  # do not regularise the bias
            coef -= self.learning_rate * gradient
            loss = self._loss(probabilities, targets, dataset.weights, coef)
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self._coef = coef
        return self

    def _loss(
        self,
        probabilities: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        coef: np.ndarray,
    ) -> float:
        eps = 1e-12
        log_like = (targets * np.log(probabilities + eps)).sum(axis=1)
        data_term = -(weights * log_like).sum() / weights.sum()
        reg_term = 0.5 * self.l2 * float((coef[1:] ** 2).sum())
        return float(data_term + reg_term)

    def distribution(self, x: np.ndarray) -> np.ndarray:
        schema = self._check_fitted()
        design = self._design_matrix(x, schema)
        return _softmax(design @ self._coef)


def _softmax(scores: np.ndarray) -> np.ndarray:
    scores = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(scores)
    return exp / exp.sum(axis=1, keepdims=True)

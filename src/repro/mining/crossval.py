"""Stratified k-fold cross-validation (the paper's evaluation method).

Section VII-C: "the data was partitioned into 10 stratified samples,
then for each cross validation run, one of the partitions was used as
the test sample, whilst the other nine were used as the training set".
Tables III and IV report per-dataset *mean* FPR/TPR/AUC across the 10
folds plus the AUC *variance* (their ``Var`` column) and the mean tree
node count (their ``Comp`` column).

:func:`cross_validate` reproduces exactly that protocol, with two
methodology-critical details:

* any resampling/preprocessing is applied to the **training folds
  only** (resampling the test fold would leak synthetic instances and
  inflate the scores);
* fold assignment is stratified per class so the rare failure-inducing
  states appear in every test fold whenever there are at least k of
  them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro import observability as obs
from repro.mining.base import Classifier
from repro.mining.cache import ContentCache, array_fingerprint
from repro.mining.dataset import Dataset
from repro.mining.metrics import ConfusionMatrix

__all__ = ["FoldResult", "CrossValidationResult", "stratified_folds", "cross_validate"]

# Fold partitions depend only on the class vector, the fold count, and
# the generator's exact state, so they can be memoised without changing
# a single drawn number: a hit replays the stored partition *and*
# fast-forwards the generator to the state the computation would have
# left it in.  Keying on the pre-call state (not just the seed) keeps
# every caller semantics-identical -- a refine() trial seeded
# differently simply misses.
_FOLD_PARTITIONS = ContentCache(maxsize=32, name="stratified-fold-partitions")


@dataclasses.dataclass
class FoldResult:
    """Evaluation of one fold: its confusion matrix and model complexity."""

    fold: int
    confusion: ConfusionMatrix
    complexity: float

    @property
    def tpr(self) -> float:
        return self.confusion.true_positive_rate()

    @property
    def fpr(self) -> float:
        return self.confusion.false_positive_rate()

    @property
    def auc(self) -> float:
        return self.confusion.auc()


@dataclasses.dataclass
class CrossValidationResult:
    """Aggregate of all folds, exposing the paper's table columns."""

    folds: list[FoldResult]

    @property
    def mean_tpr(self) -> float:
        return float(np.mean([f.tpr for f in self.folds]))

    @property
    def mean_fpr(self) -> float:
        return float(np.mean([f.fpr for f in self.folds]))

    @property
    def mean_auc(self) -> float:
        return float(np.mean([f.auc for f in self.folds]))

    @property
    def auc_variance(self) -> float:
        """Population variance of the per-fold AUC (the ``Var`` column)."""
        return float(np.var([f.auc for f in self.folds]))

    @property
    def mean_complexity(self) -> float:
        """Mean model size across folds (the ``Comp`` column)."""
        return float(np.mean([f.complexity for f in self.folds]))

    def pooled_confusion(self) -> ConfusionMatrix:
        """Sum of the per-fold confusion matrices."""
        pooled = self.folds[0].confusion
        for fold in self.folds[1:]:
            pooled = pooled + fold.confusion
        return pooled

    def summary(self) -> dict[str, float]:
        return {
            "fpr": self.mean_fpr,
            "tpr": self.mean_tpr,
            "auc": self.mean_auc,
            "comp": self.mean_complexity,
            "var": self.auc_variance,
        }


def stratified_folds(
    dataset: Dataset, k: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Partition instance indices into ``k`` stratified folds.

    Within each class the (shuffled) instances are dealt round-robin to
    the folds, so fold class proportions match the dataset's as closely
    as integer counts allow.
    """
    if k < 2:
        raise ValueError("cross-validation needs at least 2 folds")
    if len(dataset) < k:
        raise ValueError(
            f"cannot make {k} folds from {len(dataset)} instances"
        )
    key = (array_fingerprint(dataset.y), dataset.n_classes, k,
           repr(rng.bit_generator.state))
    cached = _FOLD_PARTITIONS.get(key)
    if cached is not None:
        partition, post_state = cached
        rng.bit_generator.state = post_state
        return [fold.copy() for fold in partition]
    folds: list[list[int]] = [[] for _ in range(k)]
    offset = 0
    for cls in range(dataset.n_classes):
        members = np.flatnonzero(dataset.y == cls)
        members = members[rng.permutation(len(members))]
        for i, index in enumerate(members):
            folds[(offset + i) % k].append(int(index))
        # Continue dealing where the previous class stopped so small
        # classes do not all land in fold 0.
        offset += len(members)
    partition = [np.array(sorted(fold), dtype=np.int64) for fold in folds]
    _FOLD_PARTITIONS.put(key, (partition, rng.bit_generator.state))
    return [fold.copy() for fold in partition]


def cross_validate(
    dataset: Dataset,
    make_classifier: Callable[[], Classifier],
    k: int = 10,
    rng: np.random.Generator | None = None,
    preprocess: Callable[[Dataset, np.random.Generator], Dataset] | None = None,
    complexity: Callable[[Classifier], float] | None = None,
    positive: int = 1,
) -> CrossValidationResult:
    """Run stratified k-fold cross-validation.

    Parameters
    ----------
    make_classifier:
        Zero-argument factory producing a fresh classifier per fold.
    preprocess:
        Optional training-folds-only transformation (e.g. resampling);
        receives the training dataset and a fold-specific RNG.
    complexity:
        Optional model-size accessor (defaults to ``node_count`` when
        the classifier exposes one, else 0).
    positive:
        Class index considered positive (failure-inducing) for the
        confusion matrices.
    """
    rng = np.random.default_rng(0) if rng is None else rng
    with obs.span("crossval", k=k, instances=len(dataset)):
        # Warm the column presort once; the k order-preserving training
        # subsets below derive their sort orders from it instead of
        # re-sorting (see Dataset.presort).
        dataset.presort()
        fold_indices = stratified_folds(dataset, k, rng)
        all_indices = np.arange(len(dataset))
        results: list[FoldResult] = []
        for fold, test_idx in enumerate(fold_indices):
            with obs.span("crossval.fold", fold=fold):
                train_mask = np.ones(len(dataset), dtype=bool)
                train_mask[test_idx] = False
                train = dataset.subset(all_indices[train_mask])
                test = dataset.subset(test_idx)
                if preprocess is not None:
                    train = preprocess(
                        train, np.random.default_rng(rng.integers(2**63))
                    )
                model = make_classifier().fit(train)
                predicted = (
                    model.predict(test.x) if len(test) else np.empty(0, dtype=int)
                )
                confusion = ConfusionMatrix.from_predictions(
                    test.y,
                    predicted,
                    dataset.class_attribute.values,
                    weights=test.weights,
                    positive=positive,
                )
                if complexity is not None:
                    size = complexity(model)
                else:
                    size = float(getattr(model, "node_count", 0.0))
                results.append(FoldResult(fold, confusion, size))
    return CrossValidationResult(results)

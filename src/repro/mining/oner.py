"""OneR: the one-attribute rule baseline (Holte 1993).

A classic Weka sanity baseline: pick the single attribute whose
one-level rule makes the fewest training errors.  Numeric attributes
are bucketed greedily along the sorted column with a minimum bucket
size (Holte's ``SMALL``); nominal attributes map each value to its
majority class.  Useful as a floor in the learner ablation -- a mined
C4.5 predicate should comfortably beat the best single-variable rule,
and when it does not, the module effectively has a one-variable
failure signature (which the propagation analysis will also show).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset
from repro.mining.tree.induction import _threshold_between

__all__ = ["OneR"]


@dataclasses.dataclass
class _NumericRule:
    attribute_index: int
    thresholds: list[float]       # ascending bucket upper bounds
    classes: list[int]            # one class per bucket (len = len+1)
    default: int

    def predict(self, column: np.ndarray) -> np.ndarray:
        out = np.full(len(column), self.default, dtype=np.int64)
        known = ~np.isnan(column)
        buckets = np.searchsorted(
            np.asarray(self.thresholds), column[known], side="right"
        )
        out[known] = np.asarray(self.classes)[buckets]
        return out


@dataclasses.dataclass
class _NominalRule:
    attribute_index: int
    mapping: dict[int, int]
    default: int

    def predict(self, column: np.ndarray) -> np.ndarray:
        out = np.full(len(column), self.default, dtype=np.int64)
        known = ~np.isnan(column)
        values = column[known].astype(np.int64)
        out[known] = np.asarray(
            [self.mapping.get(int(v), self.default) for v in values]
        )
        return out


class OneR(Classifier):
    """Holte's 1R classifier.

    Parameters
    ----------
    min_bucket_weight:
        Minimum total instance weight per numeric bucket (Holte's
        SMALL parameter; default 6, his recommended value).
    """

    def __init__(self, min_bucket_weight: float = 6.0) -> None:
        if min_bucket_weight <= 0:
            raise ValueError("min_bucket_weight must be positive")
        self.min_bucket_weight = min_bucket_weight
        self._rule: _NumericRule | _NominalRule | None = None

    @property
    def chosen_attribute(self) -> int:
        """Column index of the selected attribute."""
        if self._rule is None:
            raise RuntimeError("OneR not fitted")
        return self._rule.attribute_index

    def fit(self, dataset: Dataset) -> "OneR":
        if len(dataset) == 0:
            raise ValueError("cannot fit OneR on an empty dataset")
        self._remember_schema(dataset)
        default = dataset.majority_class()
        best_rule: _NumericRule | _NominalRule | None = None
        best_errors = np.inf
        for j, attribute in enumerate(dataset.attributes):
            if attribute.is_numeric:
                rule = self._numeric_rule(dataset, j, default)
            else:
                rule = self._nominal_rule(dataset, j, default)
            if rule is None:
                continue
            predicted = rule.predict(dataset.x[:, j])
            errors = float(dataset.weights[predicted != dataset.y].sum())
            if errors < best_errors:
                best_errors = errors
                best_rule = rule
        if best_rule is None:
            best_rule = _NominalRule(0, {}, default)
        self._rule = best_rule
        return self

    def _nominal_rule(
        self, dataset: Dataset, j: int, default: int
    ) -> _NominalRule | None:
        attribute = dataset.attributes[j]
        column = dataset.x[:, j]
        known = ~np.isnan(column)
        if not known.any():
            return None
        counts = np.zeros((len(attribute.values), dataset.n_classes))
        np.add.at(
            counts,
            (column[known].astype(np.int64), dataset.y[known]),
            dataset.weights[known],
        )
        mapping = {
            v: int(np.argmax(counts[v]))
            for v in range(len(attribute.values))
            if counts[v].sum() > 0
        }
        return _NominalRule(j, mapping, default)

    def _numeric_rule(
        self, dataset: Dataset, j: int, default: int
    ) -> _NumericRule | None:
        column = dataset.x[:, j]
        known = ~np.isnan(column)
        if known.sum() < 2:
            return None
        values = column[known]
        y = dataset.y[known]
        w = dataset.weights[known]
        order = np.argsort(values, kind="stable")
        values, y, w = values[order], y[order], w[order]

        # Greedy bucketing: extend each bucket until its majority class
        # has at least min_bucket_weight *and* the next value differs.
        thresholds: list[float] = []
        classes: list[int] = []
        counts = np.zeros(dataset.n_classes)
        start = 0
        for i in range(len(values)):
            counts[y[i]] += w[i]
            boundary = i + 1 < len(values) and values[i + 1] > values[i]
            full = counts.max() >= self.min_bucket_weight
            if boundary and full:
                classes.append(int(np.argmax(counts)))
                # Overflow-safe midpoint (bit-flipped values hit 1e300).
                thresholds.append(
                    _threshold_between(values[i], values[i + 1])
                )
                counts = np.zeros(dataset.n_classes)
                start = i + 1
        # Trailing bucket.
        if start < len(values) or not classes:
            classes.append(int(np.argmax(counts)) if counts.sum() else default)
        else:
            classes.append(classes[-1])
        # Merge adjacent buckets with equal class (tidier rule).
        merged_t: list[float] = []
        merged_c: list[int] = [classes[0]]
        for t, c in zip(thresholds, classes[1:]):
            if c == merged_c[-1]:
                continue
            merged_t.append(t)
            merged_c.append(c)
        return _NumericRule(j, merged_t, merged_c, default)

    def distribution(self, x: np.ndarray) -> np.ndarray:
        schema = self._check_fitted()
        if self._rule is None:
            raise RuntimeError("OneR not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        predicted = self._rule.predict(x[:, self._rule.attribute_index])
        out = np.zeros((len(x), schema.n_classes))
        out[np.arange(len(x)), predicted] = 1.0
        return out

"""AdaBoost.M1 over shallow C4.5 trees.

Section IV's survey of cost-sensitive learning cites misclassification
cost-sensitive boosting (Fan et al. [33]); the plain AdaBoost.M1
algorithm it builds on is implemented here as an additional ensemble
learner for the A-2 learner ablation.  Because C4.5 already consumes
instance weights (it needs them for fractional missing values and for
Ting-style cost weighting), boosting composes with the existing tree
learner directly: each round reweights the training instances and fits
a depth-limited tree.

The ensemble is *not* a symbolic model -- a weighted vote of trees has
no faithful reading as a single first-order predicate -- so the
methodology reports built from it carry no predicate (exactly the
trade-off that made the paper choose symbolic learners).
"""

from __future__ import annotations

import math

import numpy as np

from repro.mining.base import Classifier
from repro.mining.dataset import Dataset
from repro.mining.tree.induction import C45DecisionTree

__all__ = ["AdaBoostM1"]


class AdaBoostM1(Classifier):
    """AdaBoost.M1 with depth-limited C4.5 trees as weak learners.

    Parameters
    ----------
    n_rounds:
        Maximum boosting rounds (stops early when a round's weighted
        error hits 0 or exceeds 1/2, per the algorithm).
    max_depth:
        Depth cap for the weak trees (1 = decision stumps).
    """

    def __init__(self, n_rounds: int = 20, max_depth: int = 2) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be at least 1")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.models: list[C45DecisionTree] = []
        self.alphas: list[float] = []

    def fit(self, dataset: Dataset) -> "AdaBoostM1":
        if len(dataset) == 0:
            raise ValueError("cannot boost on an empty dataset")
        self._remember_schema(dataset)
        self.models = []
        self.alphas = []
        weights = dataset.weights / dataset.weights.sum()
        for _ in range(self.n_rounds):
            round_data = dataset.with_weights(weights * len(dataset))
            weak = C45DecisionTree(
                max_depth=self.max_depth, prune=False
            ).fit(round_data)
            predicted = weak.predict(dataset.x)
            miss = predicted != dataset.y
            error = float(weights[miss].sum())
            if error <= 0:
                # Perfect weak learner: it alone decides.
                self.models = [weak]
                self.alphas = [1.0]
                break
            if error >= 0.5:
                if not self.models:
                    # Nothing better than chance: keep the single model
                    # with a zero-ish vote so prediction still works.
                    self.models = [weak]
                    self.alphas = [1e-10]
                break
            alpha = 0.5 * math.log((1.0 - error) / error)
            self.models.append(weak)
            self.alphas.append(alpha)
            # Reweight: misses up, hits down, renormalise.
            weights = weights * np.exp(np.where(miss, alpha, -alpha))
            weights = weights / weights.sum()
        return self

    def distribution(self, x: np.ndarray) -> np.ndarray:
        schema = self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        votes = np.zeros((len(x), schema.n_classes))
        for alpha, model in zip(self.alphas, self.models):
            predicted = model.predict(x)
            votes[np.arange(len(x)), predicted] += alpha
        totals = votes.sum(axis=1, keepdims=True)
        uniform = np.full_like(votes, 1.0 / schema.n_classes)
        with np.errstate(invalid="ignore"):
            out = np.where(totals > 0, votes / np.maximum(totals, 1e-300), uniform)
        return out

    @property
    def n_models(self) -> int:
        return len(self.models)

"""First-order detection predicates.

The paper's detectors are predicates over module variables, read off a
decision tree "by interpreting the decision tree as a conjunction of
disjunctions" (Section VIII) -- i.e. a boolean combination of atomic
attribute comparisons.  This module is the predicate algebra:

* atoms: :class:`Comparison` (``variable <op> value``) and the
  constants :class:`TruePredicate` / :class:`FalsePredicate`;
* connectives: :class:`And`, :class:`Or`;
* evaluation over ``dict`` states (runtime assertions) and over NumPy
  instance arrays (offline evaluation against a dataset);
* normalisation: flattening, duplicate removal and numeric-bound
  merging, so extracted predicates stay readable;
* rendering to Python source, so a generated detector can be pasted
  into a target program as an executable assertion.

Comparisons on a missing variable evaluate to ``False`` -- a detector
cannot flag what it cannot read, the conservative choice the rule
learners also make.  This holds on all three evaluation paths: dict
states, NumPy instance arrays (missing/NaN columns) and the rendered
source (which reads variables via ``state.get`` with a NaN default,
so pasted assertions cannot raise ``KeyError`` or flag on NaN).  The
:mod:`repro.runtime` compiler preserves the same semantics.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = [
    "Predicate",
    "PredicateVisitor",
    "Comparison",
    "And",
    "Or",
    "TruePredicate",
    "FalsePredicate",
    "PredicateError",
]

_OPS = {"<=", ">", "==", "!="}


class PredicateError(ValueError):
    """Raised for malformed predicates."""


class Predicate(abc.ABC):
    """Abstract detection predicate."""

    @abc.abstractmethod
    def evaluate(self, state: Mapping[str, object]) -> bool:
        """Evaluate against a module state dict (runtime-assertion use)."""

    @abc.abstractmethod
    def evaluate_rows(
        self, x: np.ndarray, attribute_index: Mapping[str, int]
    ) -> np.ndarray:
        """Vectorised evaluation over dataset rows.

        ``attribute_index`` maps variable names to columns of ``x``;
        nominal attributes must be pre-encoded the same way the
        comparison values were (the extractor guarantees this).
        """

    @abc.abstractmethod
    def variables(self) -> frozenset[str]:
        """Variable names the predicate reads."""

    @abc.abstractmethod
    def simplify(self) -> "Predicate":
        """Return an equivalent, normalised predicate."""

    @abc.abstractmethod
    def complexity(self) -> int:
        """Number of atomic comparisons."""

    def to_source(self, state_name: str = "state") -> str:
        """Render as a Python boolean expression over ``state``."""
        return self._source(state_name)

    @abc.abstractmethod
    def _source(self, state_name: str) -> str: ...

    def accept(self, visitor: "PredicateVisitor"):
        """Double-dispatch hook for :class:`PredicateVisitor`.

        Atoms outside the core algebra (user subclasses, ordering
        invariants, majority votes) fall through to
        :meth:`PredicateVisitor.generic_visit`, so analyses can treat
        them as opaque rather than mis-handling them.
        """
        return visitor.generic_visit(self)

    def __call__(self, state: Mapping[str, object]) -> bool:
        return self.evaluate(state)


class PredicateVisitor:
    """Base visitor over the predicate algebra.

    Dispatch happens through :meth:`Predicate.accept`; every ``visit_*``
    method defaults to :meth:`generic_visit`, so a visitor only
    overrides the node kinds it cares about.  The static analyses in
    :mod:`repro.analysis` are built on this.
    """

    def visit(self, predicate: Predicate):
        return predicate.accept(self)

    def visit_comparison(self, predicate: "Comparison"):
        return self.generic_visit(predicate)

    def visit_and(self, predicate: "And"):
        return self.generic_visit(predicate)

    def visit_or(self, predicate: "Or"):
        return self.generic_visit(predicate)

    def visit_true(self, predicate: "TruePredicate"):
        return self.generic_visit(predicate)

    def visit_false(self, predicate: "FalsePredicate"):
        return self.generic_visit(predicate)

    def generic_visit(self, predicate: Predicate):
        """Fallback for nodes without a specific handler."""
        raise NotImplementedError(
            f"{type(self).__name__} has no handler for "
            f"{type(predicate).__name__}"
        )


@dataclasses.dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always flags (complete, maximally inaccurate)."""

    def evaluate(self, state: Mapping[str, object]) -> bool:
        return True

    def evaluate_rows(self, x, attribute_index):
        return np.ones(len(np.atleast_2d(x)), dtype=bool)

    def variables(self) -> frozenset[str]:
        return frozenset()

    def simplify(self) -> Predicate:
        return self

    def complexity(self) -> int:
        return 0

    def _source(self, state_name: str) -> str:
        return "True"

    def accept(self, visitor: "PredicateVisitor"):
        return visitor.visit_true(self)

    def __str__(self) -> str:
        return "TRUE"


@dataclasses.dataclass(frozen=True)
class FalsePredicate(Predicate):
    """Never flags (accurate, maximally incomplete)."""

    def evaluate(self, state: Mapping[str, object]) -> bool:
        return False

    def evaluate_rows(self, x, attribute_index):
        return np.zeros(len(np.atleast_2d(x)), dtype=bool)

    def variables(self) -> frozenset[str]:
        return frozenset()

    def simplify(self) -> Predicate:
        return self

    def complexity(self) -> int:
        return 0

    def _source(self, state_name: str) -> str:
        return "False"

    def accept(self, visitor: "PredicateVisitor"):
        return visitor.visit_false(self)

    def __str__(self) -> str:
        return "FALSE"


@dataclasses.dataclass(frozen=True)
class Comparison(Predicate):
    """Atomic comparison ``variable <op> value``.

    ``value`` is a float for numeric variables.  For nominal/boolean
    variables the comparison is ``==``/``!=`` against the *encoded*
    value (0.0/1.0 for booleans); ``label`` carries the human-readable
    value string for rendering.
    """

    variable: str
    op: str
    value: float
    label: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")
        if not math.isfinite(self.value):
            raise PredicateError("comparison values must be finite")

    def evaluate(self, state: Mapping[str, object]) -> bool:
        if self.variable not in state:
            return False
        raw = state[self.variable]
        if isinstance(raw, bool):
            value = 1.0 if raw else 0.0
        else:
            try:
                value = float(raw)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return False
        if math.isnan(value):
            return False
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == "==":
            return value == self.value
        return value != self.value

    def evaluate_rows(self, x, attribute_index):
        x = np.atleast_2d(x)
        if self.variable not in attribute_index:
            return np.zeros(len(x), dtype=bool)
        column = x[:, attribute_index[self.variable]]
        with np.errstate(invalid="ignore"):
            if self.op == "<=":
                return column <= self.value
            if self.op == ">":
                return column > self.value
            if self.op == "==":
                return column == self.value
            return ~np.isnan(column) & (column != self.value)

    def variables(self) -> frozenset[str]:
        return frozenset((self.variable,))

    def simplify(self) -> Predicate:
        return self

    def complexity(self) -> int:
        return 1

    def _source(self, state_name: str) -> str:
        # ``.get`` with a NaN default keeps the rendered assertion
        # consistent with :meth:`evaluate`: a missing variable reads
        # as NaN and every comparison on NaN is False.  ``!=`` is
        # rendered as ``< or >`` because Python's ``nan != v`` is True.
        lookup = f"{state_name}.get({self.variable!r}, float('nan'))"
        if self.op == "!=":
            return f"({lookup} < {self.value!r} or {lookup} > {self.value!r})"
        return f"{lookup} {self.op} {self.value!r}"

    def accept(self, visitor: "PredicateVisitor"):
        return visitor.visit_comparison(self)

    def __str__(self) -> str:
        shown = self.label if self.label is not None else f"{self.value:.6g}"
        return f"{self.variable} {self.op} {shown}"


class _Compound(Predicate):
    """Shared behaviour of And/Or."""

    _symbol = "?"

    def __init__(self, children: Sequence[Predicate]) -> None:
        self.children: tuple[Predicate, ...] = tuple(children)

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for child in self.children:
            out |= child.variables()
        return out

    def complexity(self) -> int:
        return sum(child.complexity() for child in self.children)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __str__(self) -> str:
        if not self.children:
            return str(self.simplify())
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, _Compound) and len(child.children) > 1:
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)

    def _source(self, state_name: str) -> str:
        if not self.children:
            return self.simplify()._source(state_name)
        joiner = " and " if isinstance(self, And) else " or "
        parts = []
        for child in self.children:
            text = child._source(state_name)
            if isinstance(child, _Compound) and len(child.children) > 1:
                text = f"({text})"
            parts.append(text)
        return joiner.join(parts)


class And(_Compound):
    """Conjunction; empty conjunction is TRUE."""

    _symbol = "AND"

    def accept(self, visitor: "PredicateVisitor"):
        return visitor.visit_and(self)

    def evaluate(self, state: Mapping[str, object]) -> bool:
        return all(child.evaluate(state) for child in self.children)

    def evaluate_rows(self, x, attribute_index):
        x = np.atleast_2d(x)
        out = np.ones(len(x), dtype=bool)
        for child in self.children:
            out &= child.evaluate_rows(x, attribute_index)
        return out

    def simplify(self) -> Predicate:
        flat: list[Predicate] = []
        for child in (c.simplify() for c in self.children):
            if isinstance(child, FalsePredicate):
                return FalsePredicate()
            if isinstance(child, TruePredicate):
                continue
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        flat = _merge_bounds(flat, conjunction=True)
        flat = _dedupe(flat)
        if not flat:
            return TruePredicate()
        if len(flat) == 1:
            return flat[0]
        return And(flat)


class Or(_Compound):
    """Disjunction; empty disjunction is FALSE."""

    _symbol = "OR"

    def accept(self, visitor: "PredicateVisitor"):
        return visitor.visit_or(self)

    def evaluate(self, state: Mapping[str, object]) -> bool:
        return any(child.evaluate(state) for child in self.children)

    def evaluate_rows(self, x, attribute_index):
        x = np.atleast_2d(x)
        out = np.zeros(len(x), dtype=bool)
        for child in self.children:
            out |= child.evaluate_rows(x, attribute_index)
        return out

    def simplify(self) -> Predicate:
        flat: list[Predicate] = []
        for child in (c.simplify() for c in self.children):
            if isinstance(child, TruePredicate):
                return TruePredicate()
            if isinstance(child, FalsePredicate):
                continue
            if isinstance(child, Or):
                flat.extend(child.children)
            else:
                flat.append(child)
        flat = _merge_bounds(flat, conjunction=False)
        flat = _dedupe(flat)
        if not flat:
            return FalsePredicate()
        if len(flat) == 1:
            return flat[0]
        return Or(flat)


def _dedupe(children: list[Predicate]) -> list[Predicate]:
    seen: set[Predicate] = set()
    out: list[Predicate] = []
    for child in children:
        if child not in seen:
            seen.add(child)
            out.append(child)
    return out


def _merge_bounds(children: list[Predicate], conjunction: bool) -> list[Predicate]:
    """Merge redundant numeric bounds on the same variable.

    In a conjunction, ``x <= 5 AND x <= 7`` becomes ``x <= 5`` (the
    tightest bound wins); in a disjunction the loosest wins.  ``>``
    bounds merge symmetrically.  Other atoms pass through untouched.
    """
    upper: dict[str, Comparison] = {}
    lower: dict[str, Comparison] = {}
    rest: list[Predicate] = []
    order: list[tuple[str, str]] = []
    for child in children:
        if isinstance(child, Comparison) and child.op in ("<=", ">"):
            table = upper if child.op == "<=" else lower
            current = table.get(child.variable)
            if current is None:
                table[child.variable] = child
                order.append((child.variable, child.op))
            else:
                if child.op == "<=":
                    keep_new = (
                        child.value < current.value
                        if conjunction
                        else child.value > current.value
                    )
                else:
                    keep_new = (
                        child.value > current.value
                        if conjunction
                        else child.value < current.value
                    )
                if keep_new:
                    table[child.variable] = child
        else:
            rest.append(child)
    merged: list[Predicate] = []
    for variable, op in order:
        merged.append((upper if op == "<=" else lower)[variable])
    return merged + rest

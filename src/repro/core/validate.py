"""Runtime-assertion validation (Section VII-D, final paragraph).

"In order to further validate the correctness of the results
presented, a cross validation for each model had its predicate
implemented as a runtime assertion in its corresponding code location
... All fault injection experiments were then repeated to ensure that
the observed FPR and TPR values were commensurate with the rates
presented previously."

:class:`ValidationCampaign` repeats a campaign with a
:class:`~repro.core.detector.Detector` installed at the sampling probe:
on every probe occurrence from the injection onwards the detector's
predicate is evaluated against the live module state, and the run is
*flagged* if any evaluation fires.  The report cross-tabulates flags
against actual failures (observed TPR/FPR) and, as a bonus the offline
evaluation cannot provide, measures **detection latency** -- how many
probe occurrences after the injection the first detection happened.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.detector import Detector
from repro.injection.bitflip import BitFlip
from repro.injection.campaign import Campaign, CampaignConfig, ExperimentRecord
from repro.injection.instrument import InjectionHarness
from repro.mining.metrics import ConfusionMatrix

__all__ = ["ValidationCampaign", "ValidationReport", "RunVerdict"]


class _AssertingHarness(InjectionHarness):
    """Injection harness that also runs the detector at the sample probe.

    Two evaluation modes:

    * ``"single"`` (default) -- the assertion fires once, at the first
      sampling-probe occurrence at/after the injection.  This is the
      evaluation the predicate was *trained* for (each dataset
      instance is that state), so observed TPR/FPR are directly
      commensurate with the cross-validation estimates.
    * ``"continuous"`` -- the assertion runs at every occurrence from
      the injection onwards, as a permanently installed executable
      assertion would.  Accumulator-style variables drift across
      occurrences, so thresholds learned at the sampling point may
      mis-fire later; the gap between the two modes quantifies how
      location/time-specific a learned predicate is (cf. the paper's
      Section VI-A discussion of injection/sampling locations).

    ``monitor_all_probes`` runs the assertion at *every* instrumented
    probe rather than just the configured sampling probe -- the right
    semantics for composite detectors whose members guard different
    locations (:mod:`repro.core.composition`).
    """

    def __init__(
        self,
        detector: Detector,
        mode: str,
        *args,
        monitor_all_probes: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if mode not in ("single", "continuous"):
            raise ValueError(f"unknown validation mode {mode!r}")
        self._detector = detector
        self._mode = mode
        self._monitor_all = monitor_all_probes
        self._evaluated_once = False
        self.first_detection: int | None = None

    def _on_probe(self, key, occurrence, state):
        state = super()._on_probe(key, occurrence, state)
        at_monitored_probe = self._monitor_all or (
            self._sample_key is not None and key == self._sample_key
        )
        if (
            not at_monitored_probe
            or occurrence < self.injection_time
            or self.first_detection is not None
        ):
            return state
        if self._mode == "single" and self._evaluated_once:
            return state
        self._evaluated_once = True
        if self._detector.check(state):
            self.first_detection = occurrence
        return state


@dataclasses.dataclass
class RunVerdict:
    """Detector behaviour on one injected run."""

    record: ExperimentRecord
    flagged: bool
    detection_occurrence: int | None

    @property
    def latency(self) -> int | None:
        """Probe occurrences between injection and first detection."""
        if self.detection_occurrence is None:
            return None
        return self.detection_occurrence - self.record.injection_time


@dataclasses.dataclass
class ValidationReport:
    """Observed detector efficiency under re-injection."""

    verdicts: list[RunVerdict]
    confusion: ConfusionMatrix

    @property
    def observed_tpr(self) -> float:
        return self.confusion.true_positive_rate()

    @property
    def observed_fpr(self) -> float:
        return self.confusion.false_positive_rate()

    @property
    def mean_latency(self) -> float:
        """Mean detection latency over true positives (occurrences)."""
        latencies = [
            v.latency
            for v in self.verdicts
            if v.flagged and v.record.failed and v.latency is not None
        ]
        return float(np.mean(latencies)) if latencies else 0.0

    def commensurate_with(
        self, expected_tpr: float, expected_fpr: float, tolerance: float = 0.1
    ) -> bool:
        """The paper's check: observed rates match the CV estimates."""
        return (
            abs(self.observed_tpr - expected_tpr) <= tolerance
            and abs(self.observed_fpr - expected_fpr) <= tolerance
        )


class ValidationCampaign(Campaign):
    """A campaign with a runtime assertion installed."""

    def __init__(
        self,
        target,
        config: CampaignConfig,
        detector: Detector,
        mode: str = "single",
        monitor_all_probes: bool = False,
    ) -> None:
        super().__init__(target, config)
        self.detector = detector
        self.mode = mode
        self.monitor_all_probes = monitor_all_probes
        self._verdicts: list[RunVerdict] = []

    def _make_harness(self, flip: BitFlip, injection_time: int) -> InjectionHarness:
        return _AssertingHarness(
            self.detector,
            self.mode,
            self.config.injection_probe,
            flip,
            injection_time,
            sample_probe=self.config.sample_probe,
            monitor_all_probes=self.monitor_all_probes,
        )

    def _after_run(self, harness: InjectionHarness, record: ExperimentRecord) -> None:
        assert isinstance(harness, _AssertingHarness)
        self._verdicts.append(
            RunVerdict(
                record,
                flagged=harness.first_detection is not None,
                detection_occurrence=harness.first_detection,
            )
        )

    def validate(self) -> ValidationReport:
        """Run the campaign and report observed TPR/FPR/latency."""
        self._verdicts = []
        self.run()
        actual = np.array([v.record.failed for v in self._verdicts], dtype=np.int64)
        flagged = np.array([v.flagged for v in self._verdicts], dtype=np.int64)
        confusion = ConfusionMatrix.from_predictions(
            actual, flagged, ("nofail", "fail"), positive=1
        )
        return ValidationReport(list(self._verdicts), confusion)

"""Detector composition across program locations.

The paper treats one detector per location; a deployed system places
several (e.g. one at a module's entry and one at its exit) and must
combine their verdicts.  This module provides the standard
combinators, each a plain :class:`~repro.core.detector.Detector`-like
object so the validation machinery applies unchanged:

* :func:`any_of` -- flag when **any** member flags (union): maximises
  completeness, accumulates false positives;
* :func:`all_of` -- flag when **all** members flag (intersection):
  maximises accuracy, loses completeness;
* :func:`majority` -- flag when more than half the members flag: the
  classic voting middle ground (cf. the self-checks-and-voting study
  the paper cites [8]).

The members of a composite may guard *different* locations; evaluating
the composite on a single state dict asks every member about that
state (members whose variables are absent simply do not fire, thanks
to the predicate algebra's missing-variable semantics).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.detector import Detector
from repro.core.predicate import And, Or, Predicate

__all__ = ["CompositeDetector", "any_of", "all_of", "majority"]


class _MajorityPredicate(Predicate):
    """Flags when more than half the member predicates flag."""

    def __init__(self, members: Sequence[Predicate]) -> None:
        if not members:
            raise ValueError("majority vote needs at least one member")
        self.members = tuple(members)

    def evaluate(self, state: Mapping[str, object]) -> bool:
        votes = sum(1 for member in self.members if member.evaluate(state))
        return votes * 2 > len(self.members)

    def evaluate_rows(self, x, attribute_index):
        x = np.atleast_2d(x)
        votes = np.zeros(len(x), dtype=int)
        for member in self.members:
            votes += member.evaluate_rows(x, attribute_index).astype(int)
        return votes * 2 > len(self.members)

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for member in self.members:
            out |= member.variables()
        return out

    def simplify(self) -> Predicate:
        if len(self.members) == 1:
            return self.members[0].simplify()
        return _MajorityPredicate([m.simplify() for m in self.members])

    def complexity(self) -> int:
        return sum(member.complexity() for member in self.members)

    def _source(self, state_name: str) -> str:
        votes = " + ".join(
            f"bool({member._source(state_name)})" for member in self.members
        )
        return f"(({votes}) * 2 > {len(self.members)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _MajorityPredicate)
            and other.members == self.members
        )

    def __hash__(self) -> int:
        return hash(("majority", self.members))

    def __str__(self) -> str:
        body = " | ".join(f"[{member}]" for member in self.members)
        return f"MAJORITY({body})"


class CompositeDetector(Detector):
    """A detector built from member detectors."""

    def __init__(
        self,
        members: Sequence[Detector],
        predicate: Predicate,
        name: str,
    ) -> None:
        super().__init__(predicate, location=None, name=name)
        self.members = tuple(members)

    @property
    def member_names(self) -> tuple[str, ...]:
        return tuple(member.name for member in self.members)


def _check_members(members: Sequence[Detector]) -> None:
    if not members:
        raise ValueError("composition needs at least one detector")


def any_of(members: Sequence[Detector], name: str = "any_of") -> CompositeDetector:
    """Union: flag when any member's predicate flags."""
    _check_members(members)
    predicate = Or([member.predicate for member in members]).simplify()
    return CompositeDetector(members, predicate, name)


def all_of(members: Sequence[Detector], name: str = "all_of") -> CompositeDetector:
    """Intersection: flag only when every member's predicate flags."""
    _check_members(members)
    predicate = And([member.predicate for member in members]).simplify()
    return CompositeDetector(members, predicate, name)


def majority(members: Sequence[Detector], name: str = "majority") -> CompositeDetector:
    """Vote: flag when more than half the members flag."""
    _check_members(members)
    predicate = _MajorityPredicate(
        [member.predicate for member in members]
    )
    return CompositeDetector(members, predicate, name)

"""Model -> predicate extraction.

"Implementing an error detection mechanism based on a model generated
using our methodology reduces to the, almost trivial, process of
interpreting a decision tree" (Section VIII).  This module performs
that interpretation: every root-to-leaf path classifying a state as
*failure-inducing* becomes a conjunction of atomic comparisons, and the
predicate is the disjunction of those conjunctions.  Rule-set models
extract the same way from their rules for the positive class.

Nominal conditions are encoded as ``== index`` comparisons carrying
the value string as a display label, so the predicate evaluates
correctly against both dataset rows (encoded) and runtime state dicts
(booleans), and still renders readably.
"""

from __future__ import annotations

from repro.core.predicate import And, Comparison, FalsePredicate, Or, Predicate
from repro.mining.dataset import Attribute
from repro.mining.rules.rule import RuleSet
from repro.mining.tree.export import tree_to_rules
from repro.mining.tree.node import TreeNode

__all__ = ["tree_to_predicate", "ruleset_to_predicate"]


def tree_to_predicate(
    root: TreeNode,
    class_labels: tuple[str, ...],
    positive: int = 1,
) -> Predicate:
    """Extract the failure-detection predicate from a decision tree.

    Returns the simplified disjunction of the conjunctive paths whose
    leaves predict the positive (failure-inducing) class;
    :class:`~repro.core.predicate.FalsePredicate` when no leaf does.
    """
    disjuncts: list[Predicate] = []
    for rule in tree_to_rules(root, class_labels):
        if rule.class_index != positive:
            continue
        atoms: list[Predicate] = []
        for condition in rule.conditions:
            atoms.append(_condition_atom(
                condition.attribute, condition.op, condition.value
            ))
        disjuncts.append(And(atoms))
    if not disjuncts:
        return FalsePredicate()
    return Or(disjuncts).simplify()


def ruleset_to_predicate(ruleset: RuleSet, positive: int = 1) -> Predicate:
    """Extract the failure-detection predicate from a rule set.

    Decision-list semantics are approximated by the union of positive
    rules: a state is flagged when any positive-class rule covers it.
    (For the two-class detection setting this matches the list exactly
    whenever positive rules precede the default, which the inducers
    guarantee by learning minority classes first.)
    """
    disjuncts: list[Predicate] = []
    for rule in ruleset.rules:
        if rule.class_index != positive:
            continue
        atoms: list[Predicate] = []
        for condition in rule.conditions:
            if condition.attribute.is_nominal:
                atoms.append(_condition_atom(
                    condition.attribute, "==",
                    condition.attribute.value_of(int(condition.value)),
                ))
            else:
                atoms.append(_condition_atom(
                    condition.attribute, condition.op, condition.value
                ))
        disjuncts.append(And(atoms))
    if not disjuncts and ruleset.default_class == positive:
        # Degenerate model: everything defaults to the positive class.
        from repro.core.predicate import TruePredicate

        return TruePredicate()
    if not disjuncts:
        return FalsePredicate()
    return Or(disjuncts).simplify()


def _condition_atom(
    attribute: Attribute, op: str, value: float | str
) -> Comparison:
    if attribute.is_nominal:
        label = value if isinstance(value, str) else attribute.value_of(int(value))
        encoded = float(attribute.index_of(label))
        return Comparison(attribute.name, "==", encoded, label=label)
    assert not isinstance(value, str)
    return Comparison(attribute.name, op, float(value))

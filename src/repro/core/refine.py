"""Step 4: model refinement and optimisation.

"A total of 10 undersampling and 15 oversampling percentage levels
were used in model refinement.  These levels were distributed over the
range [5,100] and [100,1500] for undersampling and oversampling
respectively.  The number of nearest neighbours considered were
distributed over the range [1,15]" (Section VII-D).

:class:`RefinementGrid` enumerates those preprocessing plans (plain
oversampling-with-replacement is SMOTE's q=0 case and appears in
Table IV as entries without an N value, so the grid includes it), and
:func:`refine` evaluates each with stratified cross-validation,
keeping the plan with the best mean AUC -- ties broken towards higher
TPR, then smaller trees.

Alongside the data-level sweep, :func:`refine_predicate` is the
*model-level* half of Step 4: after extraction, the mined predicate is
rewritten to its provably-equivalent canonical form by the static
checker (:mod:`repro.analysis.simplify`) -- fewer atoms means a
cheaper runtime assertion with identical completeness and accuracy,
a refinement that costs no additional cross-validation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator

import numpy as np

from repro import observability as obs
from repro.core.preprocess import PreprocessingPlan
from repro.mining.base import Classifier
from repro.mining.crossval import CrossValidationResult, cross_validate
from repro.mining.dataset import Dataset

__all__ = [
    "RefinementGrid",
    "RefinementTrial",
    "RefinementResult",
    "refine",
    "refine_predicate",
]

#: The paper's sweep (Section VII-D).
PAPER_UNDERSAMPLE_LEVELS = (5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0, 100.0)
PAPER_OVERSAMPLE_LEVELS = tuple(float(v) for v in range(100, 1501, 100))
PAPER_NEIGHBOUR_COUNTS = tuple(range(1, 16))


@dataclasses.dataclass(frozen=True)
class RefinementGrid:
    """The Step 4 search space over preprocessing plans."""

    undersample_levels: tuple[float, ...] = PAPER_UNDERSAMPLE_LEVELS
    oversample_levels: tuple[float, ...] = PAPER_OVERSAMPLE_LEVELS
    neighbour_counts: tuple[int, ...] = PAPER_NEIGHBOUR_COUNTS
    include_plain_oversample: bool = True
    base_plan: PreprocessingPlan = PreprocessingPlan()

    @classmethod
    def paper(cls) -> "RefinementGrid":
        """The full grid of Section VII-D (10 + 15 + 15x15 plans)."""
        return cls()

    @classmethod
    def reduced(cls) -> "RefinementGrid":
        """A laptop-scale grid preserving the sweep's structure."""
        return cls(
            undersample_levels=(5.0, 25.0, 50.0, 85.0),
            oversample_levels=(100.0, 300.0, 700.0, 1200.0),
            neighbour_counts=(1, 5, 11),
        )

    def plans(self) -> Iterator[PreprocessingPlan]:
        """Enumerate every candidate plan (transforms inherited from
        the base plan so learner-specific mappings persist)."""
        base = self.base_plan
        for level in self.undersample_levels:
            yield dataclasses.replace(
                base, sampling="undersample", level=level, neighbours=None
            )
        for level in self.oversample_levels:
            if self.include_plain_oversample:
                yield dataclasses.replace(
                    base, sampling="oversample", level=level, neighbours=None
                )
            for k in self.neighbour_counts:
                yield dataclasses.replace(
                    base, sampling="smote", level=level, neighbours=k
                )

    def size(self) -> int:
        n_over = len(self.oversample_levels) * (
            len(self.neighbour_counts) + (1 if self.include_plain_oversample else 0)
        )
        return len(self.undersample_levels) + n_over


@dataclasses.dataclass
class RefinementTrial:
    """One evaluated plan."""

    plan: PreprocessingPlan
    evaluation: CrossValidationResult

    @property
    def key(self) -> tuple[float, float, float]:
        """Selection key: AUC, then TPR, then smaller complexity."""
        return (
            self.evaluation.mean_auc,
            self.evaluation.mean_tpr,
            -self.evaluation.mean_complexity,
        )


@dataclasses.dataclass
class RefinementResult:
    """Outcome of the grid search."""

    trials: list[RefinementTrial]
    best: RefinementTrial

    def ranked(self) -> list[RefinementTrial]:
        return sorted(self.trials, key=lambda t: t.key, reverse=True)


def refine(
    dataset: Dataset,
    make_classifier: Callable[[], Classifier],
    grid: RefinementGrid,
    folds: int = 10,
    seed: int = 0,
    complexity: Callable[[Classifier], float] | None = None,
    positive: int = 1,
    pool=None,
    journal=None,
) -> RefinementResult:
    """Evaluate every plan in the grid and return the trials + winner.

    Each plan gets its own deterministic RNG stream (derived from
    ``seed`` and the plan index) so results are reproducible and
    independent of grid ordering; resampling is applied to training
    folds only, inside the cross-validation.

    ``pool`` (a :class:`repro.orchestration.WorkerPool`) evaluates the
    trials in parallel and ``journal`` checkpoints them; both paths
    produce bit-identical results to the serial loop because every
    trial's RNG is already derived from its own (seed, index) identity.
    A :func:`repro.orchestration.configure`-d default pool is picked up
    automatically when the arguments can cross a process boundary.
    """
    if pool is None and journal is None:
        from repro.orchestration.pool import default_pool, picklable

        if picklable((dataset, make_classifier, complexity)):
            pool = default_pool()
            if pool is not None:
                try:
                    return refine(
                        dataset, make_classifier, grid, folds, seed,
                        complexity, positive, pool=pool,
                    )
                finally:
                    pool.close()
    if pool is not None or journal is not None:
        from repro.orchestration.grids import run_refinement

        return run_refinement(
            dataset,
            make_classifier,
            grid,
            folds=folds,
            seed=seed,
            complexity=complexity,
            positive=positive,
            pool=pool,
            journal=journal,
        )
    # Warm the column presort once for the whole sweep: every trial's
    # training folds (and any append-only resampling) derive their sort
    # orders from this one set instead of re-sorting per tree.
    dataset.presort()
    trials: list[RefinementTrial] = []
    with obs.span("refine.sweep", plans=grid.size(), folds=folds):
        for index, plan in enumerate(grid.plans()):
            rng = np.random.default_rng((seed, index))
            with obs.span("refine.trial", index=index, plan=plan.describe()):
                evaluation = cross_validate(
                    dataset,
                    make_classifier,
                    k=folds,
                    rng=rng,
                    preprocess=plan.apply,
                    complexity=complexity,
                    positive=positive,
                )
            trials.append(RefinementTrial(plan, evaluation))
    if not trials:
        raise ValueError("refinement grid is empty")
    best = max(trials, key=lambda t: t.key)
    return RefinementResult(trials, best)


def refine_predicate(predicate):
    """Model-level refinement: canonicalise an extracted predicate.

    Returns the :class:`repro.analysis.simplify.SimplificationResult`
    whose ``simplified`` predicate is provably equivalent to the input
    on every state (missing and NaN variables included) and carries
    the checker's clause verdicts -- an unsatisfiable or vacuous
    clause surfacing here means the mined model memorised an artefact
    of the campaign rather than a property of the module.
    """
    # Imported lazily: repro.core is a parent package of the predicate
    # algebra the analysis package builds on, so the import lives here
    # rather than at module scope.
    from repro.analysis.simplify import simplify_predicate

    return simplify_predicate(predicate)

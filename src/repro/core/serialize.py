"""Predicate and detector serialisation.

Generated detectors are deployment artefacts: the team that runs the
methodology is rarely the team that embeds the assertion, so the
predicate needs a stable interchange form.  This module round-trips
predicates (and detectors with their program location) through plain
JSON-compatible dictionaries:

* comparisons keep their variable, operator, value and display label;
* conjunctions/disjunctions nest;
* ordering-style custom atoms are not representable and are rejected
  explicitly rather than silently dropped.
"""

from __future__ import annotations

import json

from repro.core.detector import Detector
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)
from repro.injection.instrument import Location, Probe

__all__ = [
    "SerializationError",
    "predicate_to_dict",
    "predicate_from_dict",
    "predicate_to_json",
    "predicate_from_json",
    "detector_to_dict",
    "detector_from_dict",
    "detector_to_json",
    "detector_from_json",
]


class SerializationError(ValueError):
    """Raised for unserialisable predicates or malformed payloads."""


def predicate_to_dict(predicate: Predicate) -> dict:
    """Convert a predicate into a JSON-compatible dictionary."""
    if isinstance(predicate, TruePredicate):
        return {"type": "true"}
    if isinstance(predicate, FalsePredicate):
        return {"type": "false"}
    if isinstance(predicate, Comparison):
        out = {
            "type": "comparison",
            "variable": predicate.variable,
            "op": predicate.op,
            "value": predicate.value,
        }
        if predicate.label is not None:
            out["label"] = predicate.label
        return out
    if isinstance(predicate, And):
        return {
            "type": "and",
            "children": [predicate_to_dict(c) for c in predicate.children],
        }
    if isinstance(predicate, Or):
        return {
            "type": "or",
            "children": [predicate_to_dict(c) for c in predicate.children],
        }
    raise SerializationError(
        f"predicate type {type(predicate).__name__} has no JSON form"
    )


def predicate_from_dict(payload: dict) -> Predicate:
    """Rebuild a predicate from its dictionary form."""
    try:
        kind = payload["type"]
    except (TypeError, KeyError):
        raise SerializationError("predicate payload needs a 'type'") from None
    if kind == "true":
        return TruePredicate()
    if kind == "false":
        return FalsePredicate()
    if kind == "comparison":
        try:
            return Comparison(
                payload["variable"],
                payload["op"],
                float(payload["value"]),
                label=payload.get("label"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad comparison payload: {exc}") from exc
    if kind in ("and", "or"):
        children = payload.get("children")
        if not isinstance(children, list):
            raise SerializationError(f"'{kind}' payload needs children")
        rebuilt = [predicate_from_dict(c) for c in children]
        return And(rebuilt) if kind == "and" else Or(rebuilt)
    raise SerializationError(f"unknown predicate type {kind!r}")


def predicate_to_json(predicate: Predicate, indent: int | None = None) -> str:
    return json.dumps(predicate_to_dict(predicate), indent=indent)


def predicate_from_json(text: str) -> Predicate:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return predicate_from_dict(payload)


def detector_to_dict(detector: Detector) -> dict:
    """Serialise a detector (predicate + name + location)."""
    out = {
        "name": detector.name,
        "predicate": predicate_to_dict(detector.predicate),
    }
    if detector.location is not None:
        out["location"] = {
            "module": detector.location.module,
            "location": detector.location.location.value,
        }
    return out


def detector_from_dict(payload: dict) -> Detector:
    try:
        name = payload["name"]
        predicate = predicate_from_dict(payload["predicate"])
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"bad detector payload: {exc}") from exc
    location = None
    if "location" in payload:
        spec = payload["location"]
        try:
            location = Probe(spec["module"], Location(spec["location"]))
        except (TypeError, KeyError, ValueError) as exc:
            raise SerializationError(f"bad location payload: {exc}") from exc
    return Detector(predicate, location=location, name=name)


def detector_to_json(detector: Detector, indent: int | None = None) -> str:
    """One-detector JSON document (the registry stores many)."""
    return json.dumps(detector_to_dict(detector), indent=indent)


def detector_from_json(text: str) -> Detector:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return detector_from_dict(payload)

"""Error detection mechanisms (detectors).

"A detector component is a program component that asserts the validity
of a predicate in a program at a given location" (Section I).  A
:class:`Detector` packages an extracted predicate with its program
location and provides:

* the runtime-assertion form: call :meth:`Detector.check` with the
  module state at the location; ``True`` flags the state as
  failure-inducing;
* bookkeeping of evaluations/detections (so installed detectors can
  report their activity);
* offline efficiency accounting against labelled states:
  **completeness** (ability to flag erroneous states, the true
  positive rate) and **accuracy** (ability to avoid false positives,
  1 - FPR) -- the two efficiency dimensions of [3] that the paper's
  "efficient detector" combines.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.core.predicate import Predicate
from repro.injection.instrument import Probe
from repro.mining.dataset import Dataset
from repro.mining.metrics import ConfusionMatrix

__all__ = ["Detector", "DetectorEfficiency"]


@dataclasses.dataclass
class DetectorEfficiency:
    """Completeness/accuracy of a detector on labelled states."""

    confusion: ConfusionMatrix

    @property
    def completeness(self) -> float:
        """TPR: fraction of failure-inducing states flagged."""
        return self.confusion.true_positive_rate()

    @property
    def accuracy(self) -> float:
        """1 - FPR: fraction of benign states left unflagged."""
        return 1.0 - self.confusion.false_positive_rate()

    @property
    def is_perfect(self) -> bool:
        """A perfect detector is both complete and accurate [3]."""
        return self.completeness == 1.0 and self.accuracy == 1.0

    def __str__(self) -> str:
        return (
            f"completeness={self.completeness:.4f} "
            f"accuracy={self.accuracy:.4f}"
        )


class Detector:
    """A detection predicate located at a program point."""

    def __init__(
        self,
        predicate: Predicate,
        location: Probe | None = None,
        name: str = "detector",
    ) -> None:
        self._predicate = predicate
        self.location = location
        self.name = name
        self.evaluations = 0
        self.detections = 0
        self._compiled = None

    @property
    def predicate(self) -> Predicate:
        return self._predicate

    @predicate.setter
    def predicate(self, predicate: Predicate) -> None:
        # A new predicate invalidates the cached compilation; checks
        # fall back to the interpreted path until the next compile().
        if predicate is not self._predicate:
            self._compiled = None
        self._predicate = predicate

    def compile(self, *, check: bool = True, force: bool = False):
        """Lower the predicate for serving (see :mod:`repro.runtime`).

        Subsequent :meth:`check`/:meth:`flags_for` calls run the
        compiled evaluators; behaviour is bit-identical (enforced by
        the compiler's self-check) but much faster.  Returns the
        :class:`~repro.runtime.compile.CompiledPredicate`.

        The result is cached: repeat calls return it without paying
        the lowering and self-check again, until the predicate is
        reassigned (which invalidates the cache) or ``force=True``
        requests a fresh compilation.
        """
        if self._compiled is not None and not force:
            return self._compiled
        from repro.runtime.compile import compile_predicate

        self._compiled = compile_predicate(self.predicate, check=check)
        return self._compiled

    @property
    def compiled(self):
        """The compiled predicate, or None before :meth:`compile`."""
        return self._compiled

    def check(self, state: Mapping[str, object]) -> bool:
        """Runtime assertion: flag ``state`` as erroneous or not."""
        self.evaluations += 1
        if self._compiled is not None:
            flagged = self._compiled.evaluate(state)
        else:
            flagged = self.predicate.evaluate(state)
        if flagged:
            self.detections += 1
        return flagged

    def reset_counters(self) -> None:
        self.evaluations = 0
        self.detections = 0

    def flags_for(self, dataset: Dataset) -> np.ndarray:
        """Vectorised predicate evaluation over a dataset's rows."""
        index = {a.name: i for i, a in enumerate(dataset.attributes)}
        if self._compiled is not None:
            return self._compiled.evaluate_rows(dataset.x, index)
        return self.predicate.evaluate_rows(dataset.x, index)

    def efficiency_on(self, dataset: Dataset, positive: int = 1) -> DetectorEfficiency:
        """Completeness/accuracy against a labelled dataset."""
        flags = self.flags_for(dataset).astype(np.int64)
        confusion = ConfusionMatrix.from_predictions(
            dataset.y,
            flags,
            dataset.class_attribute.values,
            weights=dataset.weights,
            positive=positive,
        )
        return DetectorEfficiency(confusion)

    def to_source(self) -> str:
        """Executable-assertion source for the target program."""
        header = f"def {self.name}(state):"
        location = (
            f"    # install at: {self.location}\n" if self.location else ""
        )
        return (
            f"{header}\n"
            f"{location}"
            f"    return {self.predicate.to_source('state')}\n"
        )

    def __repr__(self) -> str:
        where = f" @ {self.location}" if self.location else ""
        return f"Detector({self.name!r}{where}: {self.predicate})"

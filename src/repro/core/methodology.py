"""The four-step methodology (Figure 1 of the paper).

:class:`Methodology` drives the pipeline end-to-end:

* :meth:`Methodology.step1_inject` -- run a fault injection campaign
  on a target system (delegates to :mod:`repro.injection`);
* :meth:`Methodology.step2_preprocess` -- apply a
  :class:`~repro.core.preprocess.PreprocessingPlan` (format
  transformation is implicit in ``CampaignResult.to_dataset``);
* :meth:`Methodology.step3_generate` -- induce and cross-validate the
  baseline model, extracting its detection predicate;
* :meth:`Methodology.step4_refine` -- grid-search sampling parameters
  for the most effective predicate.

:meth:`Methodology.run` chains steps 2-4 on an injection dataset and
returns a :class:`MethodologyOutcome` holding the baseline and refined
:class:`ModelReport` -- each carrying the Table III/IV row (FPR, TPR,
AUC, Comp, Var), the fitted model, and the extracted predicate ready
to wrap in a :class:`repro.core.detector.Detector`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import observability as obs
from repro.core.detector import Detector
from repro.core.extraction import ruleset_to_predicate, tree_to_predicate
from repro.core.predicate import Predicate
from repro.core.preprocess import (
    LEARNERS,
    LearnerFactory,
    PreprocessingPlan,
    default_plan_for,
    make_learner,
    model_complexity,
)
from repro.core.refine import RefinementGrid, RefinementResult, refine
from repro.injection.campaign import Campaign, CampaignConfig, CampaignResult
from repro.mining.base import Classifier
from repro.mining.crossval import CrossValidationResult, cross_validate
from repro.mining.dataset import Dataset
from repro.mining.rules.covering import SequentialCoveringRules
from repro.mining.rules.prism import Prism
from repro.mining.tree.induction import C45DecisionTree

__all__ = [
    "MethodologyConfig",
    "ModelReport",
    "MethodologyOutcome",
    "Methodology",
]


@dataclasses.dataclass(frozen=True)
class MethodologyConfig:
    """Methodology-wide settings.

    ``learner`` must be a symbolic learner for predicate extraction to
    succeed ("we focus on evaluating symbolic pattern learning
    algorithms ... as their outputs can be represented as first-order
    predicates"); non-symbolic learners are allowed for the ablation
    comparisons but yield reports without predicates.
    """

    learner: str = "c45"
    folds: int = 10
    seed: int = 0
    positive: int = 1

    def __post_init__(self) -> None:
        if self.learner not in LEARNERS:
            raise ValueError(
                f"unknown learner {self.learner!r}; available: {sorted(LEARNERS)}"
            )
        if self.folds < 2:
            raise ValueError("cross-validation needs at least 2 folds")


@dataclasses.dataclass
class ModelReport:
    """One evaluated (plan, model) pair: a row of Table III or IV."""

    learner: str
    plan: PreprocessingPlan
    evaluation: CrossValidationResult
    model: Classifier
    predicate: Predicate | None

    def summary(self) -> dict[str, float]:
        """The table columns: FPR, TPR, AUC, Comp, Var."""
        return self.evaluation.summary()

    @property
    def is_symbolic(self) -> bool:
        return self.predicate is not None

    def detector(self, location=None, name: str = "detector") -> Detector:
        if self.predicate is None:
            raise ValueError(
                f"learner {self.learner!r} is not symbolic; no predicate "
                "to install as a detector"
            )
        return Detector(self.predicate, location=location, name=name)


@dataclasses.dataclass
class MethodologyOutcome:
    """Result of running steps 2-4 on one injection dataset."""

    dataset_name: str
    baseline: ModelReport
    refined: ModelReport
    refinement: RefinementResult

    @property
    def improved(self) -> bool:
        """Did refinement improve on the baseline's mean AUC?"""
        return (
            self.refined.evaluation.mean_auc
            >= self.baseline.evaluation.mean_auc
        )


class Methodology:
    """The end-to-end methodology for generating efficient detectors."""

    def __init__(self, config: MethodologyConfig | None = None) -> None:
        self.config = config or MethodologyConfig()

    # ------------------------------------------------------------------
    # Step 1
    # ------------------------------------------------------------------
    def step1_inject(
        self,
        target,
        campaign_config: CampaignConfig,
        pool=None,
        journal=None,
    ) -> CampaignResult:
        """Run the fault injection campaign (Section V-B).

        ``pool``/``journal`` (see :mod:`repro.orchestration`) run the
        campaign sharded in parallel and checkpointed; the result is
        bit-identical to the serial campaign.
        """
        with obs.span("phase.campaign", target=target.name):
            return Campaign(target, campaign_config).run(
                pool=pool, journal=journal
            )

    # ------------------------------------------------------------------
    # Step 2
    # ------------------------------------------------------------------
    def step2_preprocess(
        self,
        dataset: Dataset,
        plan: PreprocessingPlan | None = None,
        rng: np.random.Generator | None = None,
    ) -> Dataset:
        """Apply a preprocessing plan (Section V-C).

        Note that in the evaluation pipeline the plan is re-applied to
        the training folds inside cross-validation; this method exists
        for the final full-data fit and for standalone use.
        """
        plan = plan if plan is not None else self.default_plan()
        rng = rng or np.random.default_rng(self.config.seed)
        return plan.apply(dataset, rng)

    def default_plan(self) -> PreprocessingPlan:
        return default_plan_for(self.config.learner)

    # ------------------------------------------------------------------
    # Step 3
    # ------------------------------------------------------------------
    def step3_generate(
        self, dataset: Dataset, plan: PreprocessingPlan | None = None
    ) -> ModelReport:
        """Induce, cross-validate and extract the baseline predicate."""
        plan = plan if plan is not None else self.default_plan()
        evaluation = cross_validate(
            dataset,
            LearnerFactory(self.config.learner),
            k=self.config.folds,
            rng=np.random.default_rng(self.config.seed),
            preprocess=plan.apply,
            complexity=model_complexity,
            positive=self.config.positive,
        )
        return self._final_report(dataset, plan, evaluation)

    # ------------------------------------------------------------------
    # Step 4
    # ------------------------------------------------------------------
    def step4_refine(
        self,
        dataset: Dataset,
        grid: RefinementGrid | None = None,
        pool=None,
        journal=None,
    ) -> RefinementResult:
        """Search sampling parameters for the most effective predicate.

        The grid trials are independent; ``pool`` evaluates them in
        parallel and ``journal`` checkpoints them (see
        :mod:`repro.orchestration`) with bit-identical results.
        """
        grid = grid if grid is not None else RefinementGrid.paper()
        grid = dataclasses.replace(grid, base_plan=self.default_plan())
        return refine(
            dataset,
            LearnerFactory(self.config.learner),
            grid,
            folds=self.config.folds,
            seed=self.config.seed,
            complexity=model_complexity,
            positive=self.config.positive,
            pool=pool,
            journal=journal,
        )

    # ------------------------------------------------------------------
    # End-to-end
    # ------------------------------------------------------------------
    def run(
        self,
        dataset: Dataset,
        grid: RefinementGrid | None = None,
        jobs: int | None = None,
        journal=None,
    ) -> MethodologyOutcome:
        """Steps 2-4 on an injection dataset.

        ``jobs`` runs the Step 4 grid search on that many worker
        processes (``None``/1 keeps the serial path); ``journal``
        checkpoints the trials for resumption.
        """
        with obs.span(
            "methodology.run", dataset=dataset.name, learner=self.config.learner
        ):
            with obs.span("phase.baseline"):
                baseline = self.step3_generate(dataset)
            with obs.span("phase.refine"):
                if (jobs is not None and jobs > 1) or journal is not None:
                    from repro.orchestration.pool import make_pool

                    pool = make_pool(jobs)
                    try:
                        refinement = self.step4_refine(
                            dataset, grid, pool=pool, journal=journal
                        )
                    finally:
                        pool.close()
                else:
                    refinement = self.step4_refine(dataset, grid)
            with obs.span("phase.finalize"):
                best = refinement.best
                # The refined candidate must actually beat the baseline
                # to be adopted; the paper reports the improved model in
                # Table IV.
                if best.evaluation.mean_auc >= baseline.evaluation.mean_auc:
                    refined = self._final_report(
                        dataset, best.plan, best.evaluation
                    )
                else:
                    refined = baseline
        return MethodologyOutcome(dataset.name, baseline, refined, refinement)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _final_report(
        self,
        dataset: Dataset,
        plan: PreprocessingPlan,
        evaluation: CrossValidationResult,
    ) -> ModelReport:
        """Fit on the full (preprocessed) data and extract the predicate."""
        rng = np.random.default_rng((self.config.seed, 0xF1A7))
        prepared = plan.apply(dataset, rng)
        model = make_learner(self.config.learner).fit(prepared)
        predicate = self._extract_predicate(model, dataset)
        return ModelReport(self.config.learner, plan, evaluation, model, predicate)

    def _extract_predicate(
        self, model: Classifier, dataset: Dataset
    ) -> Predicate | None:
        positive = self.config.positive
        if isinstance(model, C45DecisionTree):
            assert model.root is not None
            return tree_to_predicate(
                model.root, dataset.class_attribute.values, positive
            )
        if isinstance(model, (SequentialCoveringRules, Prism)):
            assert model.ruleset is not None
            return ruleset_to_predicate(model.ruleset, positive)
        return None

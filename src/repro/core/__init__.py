"""The paper's primary contribution: the four-step methodology.

This package turns fault injection data into efficient error detection
predicates, following Figure 1 of the paper:

1. **Fault injection analysis** -- delegated to
   :mod:`repro.injection`; :class:`repro.core.methodology.Methodology`
   drives it via ``step1_inject``.
2. **Algorithm selection & preprocessing** --
   :mod:`repro.core.preprocess`: format conversion (PROPANE-style log
   -> dataset -> ARFF), class-imbalance treatment, attribute
   transformations.
3. **Data mining / model generation** -- a symbolic learner (C4.5 by
   default) evaluated with 10-fold stratified cross-validation;
   :mod:`repro.core.extraction` reads the model off as a
   :class:`repro.core.predicate.Predicate`.
4. **Model refinement & optimisation** -- :mod:`repro.core.refine`:
   the grid search over sampling type/level and SMOTE neighbour count.

On top of the pipeline:

* :mod:`repro.core.detector` packages a predicate as an error
  detection mechanism (runtime assertion) with completeness/accuracy
  accounting;
* :mod:`repro.core.validate` re-runs fault injection with the detector
  installed as a runtime assertion at its program location, the
  paper's final validation step (Section VII-D), additionally
  measuring detection latency.
"""

from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)
from repro.core.extraction import ruleset_to_predicate, tree_to_predicate
from repro.core.detector import Detector
from repro.core.methodology import (
    Methodology,
    MethodologyConfig,
    MethodologyOutcome,
    ModelReport,
)
from repro.core.preprocess import PreprocessingPlan
from repro.core.refine import RefinementGrid, RefinementResult
from repro.core.validate import ValidationCampaign, ValidationReport

__all__ = [
    "And",
    "Comparison",
    "Detector",
    "FalsePredicate",
    "Methodology",
    "MethodologyConfig",
    "MethodologyOutcome",
    "ModelReport",
    "Or",
    "Predicate",
    "PreprocessingPlan",
    "RefinementGrid",
    "RefinementResult",
    "TruePredicate",
    "ValidationCampaign",
    "ValidationReport",
    "ruleset_to_predicate",
    "tree_to_predicate",
]

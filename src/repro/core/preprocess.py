"""Step 2: algorithm selection and preprocessing.

Section V-C lists three preprocessing aims: (1) transform the data
format for analysis, (2) address the class imbalance of fault
injection data, (3) apply learner-specific attribute transformations.
A :class:`PreprocessingPlan` captures (2) and (3) as a reusable,
serialisable recipe that the cross-validation harness applies to
training folds only; format transformation (1) is the
log -> dataset -> ARFF chain re-exported here for convenience.

The learner registry also lives here, because "the data preprocessing
that needs to be performed before learning is based upon the chosen
learning algorithm": plans carry the transform list appropriate for
their learner (e.g. the signed log mapping for Naive Bayes and
logistic regression).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.mining.bagging import Bagging
from repro.mining.base import Classifier
from repro.mining.bayes import NaiveBayes
from repro.mining.boosting import AdaBoostM1
from repro.mining.dataset import Dataset
from repro.mining.logistic import LogisticRegression
from repro.mining.knn import KNNClassifier
from repro.mining.oner import OneR
from repro.mining.rules import Prism, SequentialCoveringRules
from repro.mining.sampling import apply_sampling
from repro.mining.transforms import SignedLogTransform, StandardiseTransform
from repro.mining.tree import C45DecisionTree

__all__ = [
    "LEARNERS",
    "LearnerFactory",
    "PreprocessingPlan",
    "default_plan_for",
    "make_learner",
    "model_complexity",
]

#: Registry of learner factories by name.  Symbolic learners (the ones
#: the methodology extracts predicates from) are marked.
LEARNERS: dict[str, tuple[Callable[[], Classifier], bool]] = {
    "c45": (C45DecisionTree, True),
    "rules": (SequentialCoveringRules, True),
    "prism": (Prism, True),
    "naive-bayes": (NaiveBayes, False),
    "logistic": (LogisticRegression, False),
    "knn": (KNNClassifier, False),
    "adaboost": (AdaBoostM1, False),
    "bagging": (Bagging, False),
    "oner": (OneR, False),
}


def make_learner(name: str) -> Classifier:
    """Instantiate a registered learner by name."""
    try:
        factory, _ = LEARNERS[name]
    except KeyError:
        raise ValueError(
            f"unknown learner {name!r}; available: {sorted(LEARNERS)}"
        ) from None
    return factory()


@dataclasses.dataclass(frozen=True)
class LearnerFactory:
    """A picklable zero-argument classifier factory.

    Equivalent to ``lambda: make_learner(name)`` but able to cross a
    process boundary (lambdas cannot), so methodology steps can hand
    it to a :class:`repro.orchestration.ProcessPool`.  The
    ``fingerprint`` names the learner stably for checkpoint journals.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in LEARNERS:
            raise ValueError(
                f"unknown learner {self.name!r}; available: {sorted(LEARNERS)}"
            )

    def __call__(self) -> Classifier:
        return make_learner(self.name)

    @property
    def fingerprint(self) -> str:
        return f"learner:{self.name}"


def model_complexity(model: Classifier) -> float:
    """Model size: tree node count / rule condition count / 0."""
    for attribute in ("node_count", "condition_count"):
        value = getattr(model, attribute, None)
        if value is not None:
            return float(value)
    return 0.0


@dataclasses.dataclass(frozen=True)
class PreprocessingPlan:
    """A Step 2 recipe: imbalance treatment + attribute transforms.

    Parameters
    ----------
    sampling:
        ``None``, ``"undersample"``, ``"oversample"`` or ``"smote"``.
    level:
        Sampling percentage: majority retained for undersampling (the
        paper's range [5, 100]), minority added for over/SMOTE (the
        paper's range [100, 1500]).
    neighbours:
        SMOTE's k (paper range [1, 15]); ``None`` for the others.
    signed_log / standardise:
        Attribute transformations (Section V-C's g(x) and scaling).
    cost_ratio:
        Optional cost-sensitive alternative to resampling: weight the
        positive (failure-inducing) class ``cost_ratio`` times a
        negative instance via Ting's instance-weighting formula
        (Section IV).  May be combined with resampling, though the
        paper treats them as alternatives.
    """

    sampling: str | None = None
    level: float | None = None
    neighbours: int | None = None
    signed_log: bool = False
    standardise: bool = False
    cost_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.cost_ratio is not None and self.cost_ratio <= 0:
            raise ValueError("cost_ratio must be positive")

    def describe(self) -> str:
        """The Table IV style 'S' / 'N' description of the plan."""
        parts: list[str] = []
        if self.sampling is not None:
            tag = {"undersample": "U", "oversample": "O", "smote": "O"}[
                self.sampling
            ]
            text = f"{self.level:g}({tag})"
            if self.neighbours is not None:
                text += f" N={self.neighbours}"
            parts.append(text)
        if self.cost_ratio is not None:
            parts.append(f"cost={self.cost_ratio:g}")
        if self.signed_log:
            parts.append("log")
        if self.standardise:
            parts.append("std")
        return " ".join(parts) if parts else "-"

    def apply(self, dataset: Dataset, rng: np.random.Generator) -> Dataset:
        """Apply the plan (transforms, then weighting, then resampling).

        Must only ever be applied to *training* data; the
        cross-validation harness guarantees this.
        """
        out = dataset
        if self.signed_log:
            out = SignedLogTransform().fit(out).apply(out)
        if self.standardise:
            out = StandardiseTransform().fit(out).apply(out)
        if self.cost_ratio is not None:
            from repro.mining.metrics import ting_instance_weights

            weights = ting_instance_weights(
                out.y, np.array([1.0, self.cost_ratio])
            )
            out = out.with_weights(out.weights * weights)
        out = apply_sampling(out, self.sampling, self.level, self.neighbours, rng)
        return out


def default_plan_for(learner: str) -> PreprocessingPlan:
    """Baseline plan for a learner (Section VII-B: "no technique was
    employed to enhance the learning algorithm", except the log
    mapping the paper prescribes for the distribution-sensitive
    learners)."""
    if learner in ("naive-bayes", "logistic"):
        return PreprocessingPlan(signed_log=True, standardise=learner == "logistic")
    return PreprocessingPlan()

"""Conversion of campaign records into mining datasets.

The paper's Step 2 begins with "a purpose-built software tool ... used
to automatically convert from the PROPANE logging format to the format
used by the Weka Data Mining Suite".  This module is that tool for the
reproduction: it turns :class:`repro.injection.campaign.CampaignResult`
records (or parsed log files) into :class:`repro.mining.dataset.Dataset`
objects, mapping

* ``float64`` / ``int32`` / ``int64`` variables to numeric attributes,
* ``bool`` variables to nominal ``{false, true}`` attributes,
* the failure label to the nominal class ``{nofail, fail}`` with
  ``fail`` as the positive (failure-inducing) class, index 1.

Non-finite float values (a bit flip in the exponent easily produces
``inf`` or ``nan``) are mapped to large-magnitude sentinels rather than
dropped: a NaN attribute value would be treated as *missing* by the
learners, but "the variable became non-finite" is precisely the kind of
erroneous state a detector must see.
"""

from __future__ import annotations

import math

import numpy as np

from repro.injection.campaign import CampaignResult
from repro.injection.instrument import VariableSpec
from repro.mining.dataset import Attribute, Dataset

__all__ = [
    "CLASS_ATTRIBUTE",
    "FAIL",
    "NOFAIL",
    "NON_FINITE_SENTINEL",
    "attributes_for_specs",
    "encode_state",
    "records_to_dataset",
]

NOFAIL = "nofail"
FAIL = "fail"
CLASS_ATTRIBUTE = Attribute.nominal("class", (NOFAIL, FAIL))

# Sentinel magnitude for +/-inf and NaN float samples.  Far beyond any
# value the targets produce, but finite, so split thresholds such as
# "speed <= 1e200" can separate exploded values from sane ones.
NON_FINITE_SENTINEL = 1e300


def attributes_for_specs(specs: tuple[VariableSpec, ...]) -> list[Attribute]:
    """Mining attributes corresponding to a module's variable specs."""
    attributes = []
    for spec in specs:
        if spec.kind == "bool":
            attributes.append(Attribute.nominal(spec.name, ("false", "true")))
        else:
            attributes.append(Attribute.numeric(spec.name))
    return attributes


def encode_state(
    state, specs: tuple[VariableSpec, ...]
) -> list[float]:
    """Encode one sampled module state as a dataset row."""
    row: list[float] = []
    for spec in specs:
        if spec.name not in state:
            row.append(math.nan)  # variable not observable: missing
            continue
        value = state[spec.name]
        if spec.kind == "bool":
            row.append(1.0 if value else 0.0)
        else:
            encoded = float(value)
            if math.isnan(encoded):
                encoded = NON_FINITE_SENTINEL
            elif math.isinf(encoded):
                encoded = math.copysign(NON_FINITE_SENTINEL, encoded)
            row.append(encoded)
    return row


def records_to_dataset(
    result: CampaignResult,
    name: str | None = None,
    label_mode: str = "failure",
) -> Dataset:
    """Build the labelled dataset of a campaign.

    One instance per injected run that reached the sampling probe.
    With ``label_mode="failure"`` (the paper's target function) the
    label is ``fail`` when the run violated the failure specification;
    with ``"deviation"`` it is ``fail`` when the sampled state deviated
    from the golden run's state at the same occurrence (the §VIII
    alternative).
    """
    if label_mode not in ("failure", "deviation"):
        raise ValueError(f"unknown label mode {label_mode!r}")
    specs = result.variable_specs
    attributes = attributes_for_specs(specs)
    sampled = [r for r in result.records if r.sample is not None]
    labels = [
        1 if (r.failed if label_mode == "failure" else r.deviated) else 0
        for r in sampled
    ]
    # Column-wise assembly: one pass per attribute, with the
    # non-finite sentinel mapping applied as vectorized masks instead
    # of per-cell branches.  Bit-identical to encoding each state with
    # :func:`encode_state` (the scalar reference, kept for spot reads).
    columns: list[np.ndarray] = []
    for spec in specs:
        raw = [r.sample.get(spec.name) for r in sampled]
        if spec.kind == "bool":
            column = np.asarray(
                [0.0 if v is None else (1.0 if v else 0.0) for v in raw],
                dtype=np.float64,
            )
        else:
            column = np.asarray(
                [0.0 if v is None else float(v) for v in raw],
                dtype=np.float64,
            )
            nan_mask = np.isnan(column)
            column[nan_mask] = NON_FINITE_SENTINEL
            inf_mask = np.isinf(column)
            column[inf_mask] = np.copysign(
                NON_FINITE_SENTINEL, column[inf_mask]
            )
        # Missing variables stay NaN: the learners' notion of missing,
        # distinct from a value that *became* NaN (sentinel above).
        missing = np.fromiter(
            (v is None for v in raw), dtype=bool, count=len(raw)
        )
        column[missing] = np.nan
        columns.append(column)
    if sampled and columns:
        x = np.column_stack(columns)
    else:
        x = np.empty((len(sampled), len(attributes)))
    sampling = getattr(result, "sampling", None)  # absent on ParsedLog
    if sampling is not None:
        # Record that estimated (interval, not exact) rates fed a
        # mining step; the low-sample-stratum lint escalates strata
        # whose intervals straddle the decision boundary once mined.
        sampling.mined = True
    dataset_name = name or (
        f"{result.target_name}-{result.config.module}-"
        f"{result.config.injection_location}-{result.config.sample_location}"
    )
    return Dataset(
        attributes,
        CLASS_ATTRIBUTE,
        x,
        np.asarray(labels, dtype=np.int64),
        name=dataset_name,
    )

"""Statistical sampling campaigns: estimate instead of exhaust.

The paper's Step 1 enumerates the injection space -- every (variable,
bit, injection time, test case) cell -- exhaustively, which caps how
large a campaign can be.  ZOFI-style statistical fault injection shows
the quantities the methodology actually consumes (per-variable outcome
-class rates, failure skew, crash fractions) can be estimated to tight
confidence intervals from a randomized sample at a fraction of the
cost.  This module adds that mode:

* **stratified draws** over the full cell enumeration, strata keyed by
  injection variable (the paper's natural outcome-class axis: Table
  III's skew is per-variable).  Draws are made at ``(variable, bit)``
  pair granularity -- one pair is exactly one orchestration shard, so
  sampled and exhaustive campaigns write and reuse the *same* journal
  entries (the shard ids stay anchored to the full enumeration, like
  the pruned campaign's);
* **online confidence intervals** per (stratum, outcome class):
  Wilson score by default, exact Clopper-Pearson on request, both via
  :func:`repro.analysis.coverage.coverage_estimate`;
* an **early-stop rule**: a stratum stops drawing once every outcome
  class's interval half-width is at or below the configured target
  (or its population is exhausted, or an explicit cell cap is hit).
  The draw order is derived from the seed and the stratum *identity*
  -- never from worker count or schedule -- so a resumed campaign
  replays the identical sequence of draws and decisions, with journal
  shards answering instantly.

Every sampled cell's record is produced by the ordinary shard
executor, so it is bit-identical to the record the exhaustive campaign
would have produced for that cell.  The assembled record list keeps
the canonical enumeration order restricted to the sampled subset.
"""

from __future__ import annotations

import dataclasses
import math
import random
from collections.abc import Mapping

from repro import observability as obs
from repro.injection.campaign import ExperimentRecord
from repro.injection.golden import GoldenRun, golden_runs_for
from repro.observability import names

__all__ = [
    "OUTCOME_CLASSES",
    "SamplingSpec",
    "ClassEstimate",
    "StratumEstimate",
    "SamplingReport",
    "outcome_class",
    "proportion_interval",
    "plan_strata",
    "run_sampled_campaign",
]

#: Canonical outcome classes of one injected run, the estimands of a
#: sampled campaign.  ``fail`` means the failure specification was
#: violated without the run crashing; a crash is its own class (it is
#: also a failure by the campaign's definition, so the spec-violation
#: rate of a stratum is ``fail + crash``).
OUTCOME_CLASSES = ("ok", "fail", "crash")


def outcome_class(record: ExperimentRecord) -> str:
    if record.crashed:
        return "crash"
    return "fail" if record.failed else "ok"


def proportion_interval(
    count: int, n: int, method: str, confidence: float
) -> tuple[float, float]:
    """Two-sided binomial interval for ``count`` successes out of ``n``."""
    from repro.analysis.coverage import coverage_estimate

    estimate = coverage_estimate(count, n, confidence)
    if method == "wilson":
        return estimate.wilson_low, estimate.wilson_high
    if method == "clopper-pearson":
        return estimate.exact_low, estimate.exact_high
    raise ValueError(
        f"unknown interval method {method!r}; "
        "expected 'wilson' or 'clopper-pearson'"
    )


@dataclasses.dataclass(frozen=True)
class SamplingSpec:
    """Parameters of one sampling campaign.

    Parameters
    ----------
    ci:
        Interval estimator: ``"wilson"`` (default) or the exact
        ``"clopper-pearson"``.
    confidence:
        Two-sided confidence level of every reported interval.
    target_halfwidth:
        The early-stop rule: a stratum stops drawing once every
        outcome class's interval half-width is <= this target.
    min_cells:
        Per-stratum floor of sampled cells before the stop rule may
        fire (guards against a lucky tiny sample stopping a stratum).
    round_cells:
        Cells requested per stratum per round, rounded up to whole
        ``(variable, bit)`` pairs -- the draw (and journal-shard)
        granularity.
    max_cells:
        Optional per-stratum cap; a stratum that hits it reports
        ``stopped="capped"`` with whatever width it reached.
    seed:
        Root of every stratum's draw order (via
        :func:`repro.orchestration.tasks.derive_seed` on the stratum
        identity, so the order is schedule- and worker-independent).
    boundary:
        The outcome-class decision boundary consumed by the
        ``low-sample-stratum`` lint rule: an estimate whose interval
        straddles it cannot say which side the true rate is on.
    """

    ci: str = "wilson"
    confidence: float = 0.95
    target_halfwidth: float = 0.05
    min_cells: int = 32
    round_cells: int = 256
    max_cells: int | None = None
    seed: int = 0
    boundary: float = 0.5

    def __post_init__(self) -> None:
        if self.ci not in ("wilson", "clopper-pearson"):
            raise ValueError(f"unknown interval method {self.ci!r}")
        if not 0 < self.confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        if not 0 < self.target_halfwidth < 0.5:
            raise ValueError("target_halfwidth must be in (0, 0.5)")
        if self.min_cells < 1 or self.round_cells < 1:
            raise ValueError("min_cells and round_cells must be >= 1")
        if self.max_cells is not None and self.max_cells < self.min_cells:
            raise ValueError("max_cells must be >= min_cells")

    def to_dict(self) -> dict:
        payload = {
            "ci": self.ci,
            "confidence": self.confidence,
            "target_halfwidth": self.target_halfwidth,
            "min_cells": self.min_cells,
            "round_cells": self.round_cells,
            "seed": self.seed,
            "boundary": self.boundary,
        }
        if self.max_cells is not None:
            payload["max_cells"] = self.max_cells
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SamplingSpec":
        return cls(
            ci=payload.get("ci", "wilson"),
            confidence=float(payload.get("confidence", 0.95)),
            target_halfwidth=float(payload.get("target_halfwidth", 0.05)),
            min_cells=int(payload.get("min_cells", 32)),
            round_cells=int(payload.get("round_cells", 256)),
            max_cells=(
                None
                if payload.get("max_cells") is None
                else int(payload["max_cells"])
            ),
            seed=int(payload.get("seed", 0)),
            boundary=float(payload.get("boundary", 0.5)),
        )


@dataclasses.dataclass(frozen=True)
class ClassEstimate:
    """One outcome class's estimated rate within one stratum."""

    count: int
    rate: float
    low: float
    high: float

    @property
    def halfwidth(self) -> float:
        return (self.high - self.low) / 2.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "rate": self.rate,
            "low": self.low,
            "high": self.high,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ClassEstimate":
        return cls(
            count=int(payload["count"]),
            rate=float(payload["rate"]),
            low=float(payload["low"]),
            high=float(payload["high"]),
        )


@dataclasses.dataclass
class StratumEstimate:
    """Per-stratum coverage estimate with full interval provenance."""

    stratum: str                      # injection variable name
    population: int                   # cells in the stratum's space
    sampled: int                      # cells actually executed
    classes: dict[str, ClassEstimate]
    method: str
    confidence: float
    target_halfwidth: float
    stopped: str                      # "converged" | "exhausted" | "capped"
    exact_cells: int = 0              # synthesized (prune) cells, exact
    exact_counts: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def halfwidth(self) -> float:
        """Widest class interval: the stratum's effective precision."""
        return max(e.halfwidth for e in self.classes.values())

    def straddles(self, boundary: float) -> list[str]:
        """Outcome classes whose interval contains ``boundary``."""
        return [
            cls_name
            for cls_name, e in sorted(self.classes.items())
            if e.low < boundary < e.high
        ]

    def to_dict(self) -> dict:
        return {
            "stratum": self.stratum,
            "population": self.population,
            "sampled": self.sampled,
            "classes": {
                name: e.to_dict() for name, e in sorted(self.classes.items())
            },
            "method": self.method,
            "confidence": self.confidence,
            "target_halfwidth": self.target_halfwidth,
            "stopped": self.stopped,
            "exact_cells": self.exact_cells,
            "exact_counts": dict(sorted(self.exact_counts.items())),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StratumEstimate":
        return cls(
            stratum=payload["stratum"],
            population=int(payload["population"]),
            sampled=int(payload["sampled"]),
            classes={
                name: ClassEstimate.from_dict(entry)
                for name, entry in payload["classes"].items()
            },
            method=payload["method"],
            confidence=float(payload["confidence"]),
            target_halfwidth=float(payload["target_halfwidth"]),
            stopped=payload["stopped"],
            exact_cells=int(payload.get("exact_cells", 0)),
            exact_counts={
                k: int(v) for k, v in payload.get("exact_counts", {}).items()
            },
        )


@dataclasses.dataclass
class SamplingReport:
    """What a sampled campaign measured, and how hard it had to work."""

    spec: SamplingSpec
    strata: list[StratumEstimate]
    cells_total: int          # full enumeration size (the space sampled)
    cells_sampled: int        # cells executed for real
    rounds: int
    mined: bool = False       # set when a mining dataset consumed this

    @property
    def sampled_fraction(self) -> float:
        return self.cells_sampled / self.cells_total if self.cells_total else 0.0

    def stratum(self, name: str) -> StratumEstimate | None:
        for estimate in self.strata:
            if estimate.stratum == name:
                return estimate
        return None

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "strata": [s.to_dict() for s in self.strata],
            "cells_total": self.cells_total,
            "cells_sampled": self.cells_sampled,
            "rounds": self.rounds,
            "mined": self.mined,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SamplingReport":
        return cls(
            spec=SamplingSpec.from_dict(payload.get("spec", {})),
            strata=[
                StratumEstimate.from_dict(s) for s in payload.get("strata", ())
            ],
            cells_total=int(payload["cells_total"]),
            cells_sampled=int(payload["cells_sampled"]),
            rounds=int(payload.get("rounds", 0)),
            mined=bool(payload.get("mined", False)),
        )


def plan_strata(
    campaign, spec: SamplingSpec, pairs=None
) -> dict[str, list[tuple[str, str, int]]]:
    """The per-stratum draw order over the (restricted) pair space.

    Returns ``{variable: [(variable, kind, bit), ...]}`` where each
    list is the stratum's full pair population in its seeded draw
    order.  The order depends only on ``spec.seed`` and the stratum's
    identity (target, module, variable), so it is identical for any
    pool, worker count, shard schedule, or resume point.
    """
    # Deferred: repro.orchestration reaches repro.core.detector, which
    # imports repro.injection -- a top-level import here would close
    # that cycle while repro.injection.__init__ is still initializing.
    from repro.orchestration.campaigns import plan_pairs
    from repro.orchestration.tasks import derive_seed

    population = plan_pairs(campaign) if pairs is None else list(pairs)
    strata: dict[str, list] = {}
    for pair in population:
        strata.setdefault(pair[0], []).append(pair)
    config = campaign.config
    for variable, stratum_pairs in strata.items():
        identity = (
            f"sample:{campaign.target.name}:{config.module}"
            f"@{config.injection_location}:{variable}"
        )
        rng = random.Random(derive_seed(spec.seed, identity))
        rng.shuffle(stratum_pairs)
    return strata


def _estimate_stratum(
    variable: str,
    population: int,
    records: list[ExperimentRecord],
    spec: SamplingSpec,
    stopped: str,
    exact_records: list[ExperimentRecord] | None = None,
) -> StratumEstimate:
    n = len(records)
    classes: dict[str, ClassEstimate] = {}
    counts = {name: 0 for name in OUTCOME_CLASSES}
    for record in records:
        counts[outcome_class(record)] += 1
    for name in OUTCOME_CLASSES:
        count = counts[name]
        if n:
            low, high = proportion_interval(count, n, spec.ci, spec.confidence)
            rate = count / n
        else:
            low, high, rate = 0.0, 1.0, 0.0
        classes[name] = ClassEstimate(count, rate, low, high)
    exact_counts: dict[str, int] = {}
    for record in exact_records or ():
        name = outcome_class(record)
        exact_counts[name] = exact_counts.get(name, 0) + 1
    return StratumEstimate(
        stratum=variable,
        population=population,
        sampled=n,
        classes=classes,
        method=spec.ci,
        confidence=spec.confidence,
        target_halfwidth=spec.target_halfwidth,
        stopped=stopped,
        exact_cells=len(exact_records or ()),
        exact_counts=exact_counts,
    )


def _converged(records: list[ExperimentRecord], spec: SamplingSpec) -> bool:
    """The early-stop rule over one stratum's sampled cells so far."""
    n = len(records)
    if n < spec.min_cells:
        return False
    counts = {name: 0 for name in OUTCOME_CLASSES}
    for record in records:
        counts[outcome_class(record)] += 1
    for count in counts.values():
        low, high = proportion_interval(count, n, spec.ci, spec.confidence)
        if (high - low) / 2.0 > spec.target_halfwidth:
            return False
    return True


def run_sampled_campaign(
    campaign,
    spec: SamplingSpec,
    pool=None,
    journal=None,
    prune_plan=None,
    golden_runs: dict[int, GoldenRun] | None = None,
    store=None,
):
    """Execute a stratified sampling campaign and return its result.

    ``store`` (a :class:`repro.injection.store.CampaignStore`) is
    threaded through every per-round :func:`run_campaign` call: drawn
    pairs whose shards an earlier campaign -- exhaustive, pruned or
    sampled -- already stored load instead of executing, and freshly
    executed draws are stored for later campaigns.  Store addresses
    are pair-anchored, so the seeded draw order composes with the
    store without affecting which records a cell produces.

    ``prune_plan`` (a :class:`repro.analysis.prune.PrunePlan`)
    restricts draws to the statically live classes: dead points are
    synthesized outright, equivalence-class members are synthesized
    whenever their representative was drawn, and only live +
    representative pairs consume sampling budget.  Synthesized cells
    are *exact* (the prune contract), so they are reported separately
    from the sampled estimates.

    The returned :class:`~repro.injection.campaign.CampaignResult`
    carries the records of every sampled (and synthesized) cell in
    canonical enumeration order, plus a :class:`SamplingReport` in its
    ``sampling`` field.
    """
    from repro.injection.campaign import CampaignResult
    from repro.orchestration.campaigns import plan_pairs, run_campaign
    from repro.orchestration.pool import SerialPool

    config = campaign.config
    if golden_runs is None:
        golden_runs = golden_runs_for(campaign.target, config.test_cases)
    full_pairs = plan_pairs(campaign)
    runs_per_pair = len(config.injection_times) * len(config.test_cases)
    if runs_per_pair == 0:
        raise ValueError("campaign has no injection times or test cases")

    with obs.span(
        names.SAMPLE_PLAN, target=campaign.target.name, ci=spec.ci
    ) as plan_span:
        if prune_plan is not None:
            executable = prune_plan.executed_pairs()
        else:
            executable = list(full_pairs)
        strata = plan_strata(campaign, spec, pairs=executable)
        plan_span.count("strata", len(strata))
        plan_span.count("cells", len(executable) * runs_per_pair)

    pairs_per_round = max(1, math.ceil(spec.round_cells / runs_per_pair))
    taken = {variable: 0 for variable in strata}
    stopped: dict[str, str] = {}
    stratum_records: dict[str, list[ExperimentRecord]] = {
        variable: [] for variable in strata
    }
    executed: dict[tuple[str, int], list[ExperimentRecord]] = {}
    if pool is None:
        pool = SerialPool()

    rounds = 0
    round_orchestrations: list[dict] = []
    while len(stopped) < len(strata):
        batch: list[tuple[str, str, int]] = []
        drawn_by_stratum: dict[str, list] = {}
        for variable in sorted(strata):
            if variable in stopped:
                continue
            order = strata[variable]
            start = taken[variable]
            draw = order[start:start + pairs_per_round]
            if spec.max_cells is not None:
                room = spec.max_cells - start * runs_per_pair
                draw = draw[: max(0, math.ceil(room / runs_per_pair))]
            drawn_by_stratum[variable] = draw
            batch.extend(draw)
        if not batch:
            # Every open stratum is out of budget or population.
            for variable in sorted(strata):
                if variable not in stopped:
                    stopped[variable] = (
                        "exhausted"
                        if taken[variable] >= len(strata[variable])
                        else "capped"
                    )
            break
        rounds += 1
        with obs.span(
            names.SAMPLE_ROUND, round=rounds, pairs=len(batch)
        ) as round_span:
            partial = run_campaign(
                campaign,
                pool=pool,
                journal=journal,
                shard_size=1,  # one pair per shard: the anchored unit
                pairs=batch,
                golden_runs=golden_runs,
                store=store,
            )
            round_orchestrations.append(
                getattr(partial, "orchestration", None) or {}
            )
            for index, (name, _kind, bit) in enumerate(batch):
                records = partial.records[
                    index * runs_per_pair:(index + 1) * runs_per_pair
                ]
                executed[(name, bit)] = records
                stratum_records[name].extend(records)
            round_span.count(
                names.COUNTER_SAMPLED_CELLS, len(batch) * runs_per_pair
            )
        for variable, draw in drawn_by_stratum.items():
            taken[variable] += len(draw)
            sampled_cells = len(stratum_records[variable])
            if _converged(stratum_records[variable], spec):
                stopped[variable] = "converged"
            elif taken[variable] >= len(strata[variable]):
                stopped[variable] = "exhausted"
            elif (
                spec.max_cells is not None
                and sampled_cells >= spec.max_cells
            ):
                stopped[variable] = "capped"

    with obs.span(
        names.SAMPLE_ESTIMATE, target=campaign.target.name
    ) as estimate_span:
        records, exact_by_stratum = _assemble(
            campaign, full_pairs, executed, prune_plan, golden_runs
        )
        # Report every variable of the full enumeration, including
        # fully-pruned ones whose stratum has an empty sampling frame
        # (population 0) and only exact synthesized cells.
        strata_estimates = [
            _estimate_stratum(
                variable,
                len(strata.get(variable, ())) * runs_per_pair,
                stratum_records.get(variable, []),
                spec,
                stopped.get(variable, "exhausted"),
                exact_by_stratum.get(variable),
            )
            for variable in sorted({pair[0] for pair in full_pairs})
        ]
        cells_sampled = sum(len(r) for r in stratum_records.values())
        report = SamplingReport(
            spec=spec,
            strata=strata_estimates,
            cells_total=len(full_pairs) * runs_per_pair,
            cells_sampled=cells_sampled,
            rounds=rounds,
        )
        estimate_span.count(names.COUNTER_SAMPLED_CELLS, cells_sampled)
        estimate_span.count(
            names.COUNTER_CONVERGED_STRATA,
            sum(1 for s in strata_estimates if s.stopped == "converged"),
        )

    result = CampaignResult(
        campaign.target.name,
        config,
        records,
        golden_runs,
        campaign.variable_specs,
        sampling=report,
    )
    orchestration = _merge_orchestrations(round_orchestrations)
    if orchestration is not None:
        result.orchestration = orchestration  # type: ignore[attr-defined]
    return result


def _merge_orchestrations(rounds: list[dict]) -> dict | None:
    """Round-by-round orchestration summaries folded into one (counts
    summed, quarantined ids concatenated, store deltas summed)."""
    rounds = [entry for entry in rounds if entry]
    if not rounds:
        return None
    merged: dict = {
        key: sum(entry.get(key, 0) for entry in rounds)
        for key in ("tasks", "executed", "cached", "stored")
    }
    merged["quarantined"] = [
        task_id for entry in rounds for task_id in entry.get("quarantined", ())
    ]
    merged["jobs"] = max(entry.get("jobs", 1) for entry in rounds)
    deltas = [entry["store"] for entry in rounds if "store" in entry]
    if deltas:
        merged["store"] = {
            key: sum(delta.get(key, 0) for delta in deltas)
            for key in ("hits", "misses", "invalidated", "writes")
        }
    return merged


def _assemble(
    campaign,
    full_pairs,
    executed: dict[tuple[str, int], list[ExperimentRecord]],
    prune_plan,
    golden_runs: dict[int, GoldenRun],
):
    """Record list in canonical enumeration order, restricted to the
    sampled subset (plus synthesized prune cells), and the synthesized
    records grouped by stratum."""
    config = campaign.config
    records: list[ExperimentRecord] = []
    exact_by_stratum: dict[str, list[ExperimentRecord]] = {}
    if prune_plan is None:
        for name, _kind, bit in full_pairs:
            chunk = executed.get((name, bit))
            if chunk is not None:
                records.extend(chunk)
        return records, exact_by_stratum

    from repro.analysis.prune import _synthesize_dead, _synthesize_member
    from repro.injection.bitflip import BitFlip

    for point in prune_plan.points:
        if point.verdict in ("live", "representative"):
            chunk = executed.get((point.variable, point.bit))
            if chunk is not None:
                records.extend(chunk)
            continue
        flip = BitFlip(point.variable, point.kind, point.bit)
        synthesized: list[ExperimentRecord] = []
        if point.verdict == "dead":
            for injection_time in config.injection_times:
                for tc in config.test_cases:
                    synthesized.append(
                        _synthesize_dead(
                            campaign, flip, injection_time, tc, golden_runs[tc]
                        )
                    )
        else:  # member: exact only when its representative was drawn
            rep = executed.get((point.variable, point.representative_bit))
            if rep is None:
                continue
            index = 0
            for injection_time in config.injection_times:
                for tc in config.test_cases:
                    synthesized.append(
                        _synthesize_member(
                            campaign,
                            flip,
                            injection_time,
                            golden_runs[tc],
                            rep[index],
                        )
                    )
                    index += 1
        records.extend(synthesized)
        exact_by_stratum.setdefault(point.variable, []).extend(synthesized)
    return records, exact_by_stratum

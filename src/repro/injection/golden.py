"""Golden run capture.

PROPANE compares every injected run against a *golden run*: "a
reproducible fault-free run of the system for a given test case,
capturing information about the state of the system during execution"
(Section VI-E).  :class:`GoldenRun` stores both the observable output
(for failure specifications of the golden-diff kind) and the full
sequence of probe samples (so sampling locations can be chosen after
the fact, and so deviation-based analyses remain possible).

Golden capture is pure in (target, test case): targets are
deterministic per test case, so two captures of the same pair are
bit-identical.  :func:`golden_runs_for` therefore memoises captures in
a content-addressed :class:`~repro.mining.cache.ContentCache` keyed by
the target's configuration fingerprint -- a campaign re-run (exhaustive
after sampled, pruned after exhaustive, a benchmark's before/after
pair) reuses the fault-free executions instead of re-deriving them.
"""

from __future__ import annotations

import dataclasses

from repro.injection.instrument import GoldenHarness, Probe, StateSample
from repro.mining.cache import ContentCache

__all__ = ["GoldenRun", "capture_golden_run", "golden_runs_for", "GOLDEN_CACHE"]


@dataclasses.dataclass
class GoldenRun:
    """Fault-free reference execution of one test case."""

    test_case: int
    output: object
    samples: list[StateSample]

    def __post_init__(self) -> None:
        self._by_probe: dict[tuple, list[StateSample]] = {}
        self._by_occurrence: dict[tuple, dict[int, StateSample]] = {}

    def __getstate__(self) -> dict:
        # Probe indexes are derived data; rebuild them lazily on the
        # other side of a pickle instead of shipping them to workers.
        state = dict(self.__dict__)
        state.pop("_by_probe", None)
        state.pop("_by_occurrence", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._by_probe = {}
        self._by_occurrence = {}

    def samples_at(self, probe: Probe) -> list[StateSample]:
        """Samples of one probe, indexed once per (run, probe).

        A FlightGear golden run crosses its probes ~10,000 times and a
        shard consults it once per injected run, so the linear scan is
        cached -- the batch golden-state reuse of the shard data plane.
        """
        cached = self._by_probe.get(probe.key)
        if cached is None:
            cached = [s for s in self.samples if s.probe == probe]
            self._by_probe[probe.key] = cached
        return cached

    def sample_at(self, probe: Probe, occurrence: int) -> StateSample | None:
        """The sample of ``probe`` at one occurrence, O(1) after warmup."""
        index = self._by_occurrence.get(probe.key)
        if index is None:
            index = {s.occurrence: s for s in self.samples_at(probe)}
            self._by_occurrence[probe.key] = index
        return index.get(occurrence)


def capture_golden_run(target, test_case: int) -> GoldenRun:
    """Execute ``test_case`` on ``target`` fault-free and record it.

    ``target`` follows the :class:`repro.targets.base.TargetSystem`
    protocol: ``run(test_case, harness)`` returns the observable output
    and drives the harness probes as a side effect.
    """
    harness = GoldenHarness()
    output = target.run(test_case, harness)
    return GoldenRun(test_case, output, harness.samples)


#: Process-local memo of golden captures, keyed by
#: ``(target.fingerprint(), test_case)``.  Registered with the global
#: cache registry, so :func:`repro.mining.cache.clear_reuse_caches`
#: and ``reuse_caches_disabled()`` govern it like every reuse cache.
GOLDEN_CACHE = ContentCache(maxsize=64, name="golden")


def golden_runs_for(target, test_cases) -> dict[int, GoldenRun]:
    """Golden runs for every test case, through the content cache.

    The cache key is the target's configuration fingerprint plus the
    test case number -- where the golden run came from (which campaign,
    which mode, which process first needed it) never matters, only what
    it is.  A hit returns the exact object a fresh capture would
    produce, so cached and uncached campaigns stay bit-identical.
    """
    fingerprinter = getattr(target, "fingerprint", None)
    fingerprint = fingerprinter() if fingerprinter is not None else None
    if fingerprint is None:
        # Duck-typed target without the protocol, or one whose state
        # is not content-addressable: capture directly, never cache.
        return {tc: capture_golden_run(target, tc) for tc in test_cases}
    runs: dict[int, GoldenRun] = {}
    for tc in test_cases:
        key = (fingerprint, tc)
        golden = GOLDEN_CACHE.get(key)
        if golden is None:
            golden = capture_golden_run(target, tc)
            GOLDEN_CACHE.put(key, golden)
        runs[tc] = golden
    return runs

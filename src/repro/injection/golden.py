"""Golden run capture.

PROPANE compares every injected run against a *golden run*: "a
reproducible fault-free run of the system for a given test case,
capturing information about the state of the system during execution"
(Section VI-E).  :class:`GoldenRun` stores both the observable output
(for failure specifications of the golden-diff kind) and the full
sequence of probe samples (so sampling locations can be chosen after
the fact, and so deviation-based analyses remain possible).
"""

from __future__ import annotations

import dataclasses

from repro.injection.instrument import GoldenHarness, Probe, StateSample

__all__ = ["GoldenRun", "capture_golden_run"]


@dataclasses.dataclass
class GoldenRun:
    """Fault-free reference execution of one test case."""

    test_case: int
    output: object
    samples: list[StateSample]

    def samples_at(self, probe: Probe) -> list[StateSample]:
        return [s for s in self.samples if s.probe == probe]


def capture_golden_run(target, test_case: int) -> GoldenRun:
    """Execute ``test_case`` on ``target`` fault-free and record it.

    ``target`` follows the :class:`repro.targets.base.TargetSystem`
    protocol: ``run(test_case, harness)`` returns the observable output
    and drives the harness probes as a side effect.
    """
    harness = GoldenHarness()
    output = target.run(test_case, harness)
    return GoldenRun(test_case, output, harness.samples)

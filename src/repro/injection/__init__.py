"""Fault injection environment (the reproduction's PROPANE analogue).

The paper performs its Step 1 with PROPANE (Propagation Analysis
Environment, Hiller et al. 2002): golden runs, single transient
bit-flip injection into instrumented module variables, state sampling
at module entry/exit, logging, and conversion of logs into data mining
input.  This subpackage rebuilds that pipeline for the Python target
systems of :mod:`repro.targets`:

* :mod:`repro.injection.instrument` -- probe points, variable specs and
  the harness interface instrumented targets call at module boundaries;
* :mod:`repro.injection.bitflip` -- the transient data value fault
  model: single bit flips in IEEE-754 doubles, fixed-width two's
  complement integers and booleans;
* :mod:`repro.injection.golden` -- golden (fault-free) run capture;
* :mod:`repro.injection.campaign` -- the experiment driver enumerating
  test cases x variables x bit positions x injection times;
* :mod:`repro.injection.logfmt` -- the PROPANE-style experiment log
  format (writer and parser);
* :mod:`repro.injection.readout` -- log/record conversion into
  :class:`repro.mining.dataset.Dataset` instances (the paper's
  PROPANE-to-ARFF conversion step);
* :mod:`repro.injection.failure` -- golden-run-diff failure
  specifications;
* :mod:`repro.injection.store` -- the persistent content-addressed
  campaign store that makes ``Campaign.run(store=...)`` a delta
  operation over module edits.
"""

from repro.injection.instrument import (
    GoldenHarness,
    Harness,
    InjectionHarness,
    Location,
    Probe,
    StateSample,
    VariableSpec,
)
from repro.injection.bitflip import (
    BitFlip,
    bit_width,
    flip_bit,
    flip_bits_batch,
    flip_values_batch,
)
from repro.injection.golden import GoldenRun, golden_runs_for
from repro.injection.campaign import Campaign, CampaignConfig, ExperimentRecord
from repro.injection.sampling import (
    SamplingReport,
    SamplingSpec,
    StratumEstimate,
    run_sampled_campaign,
)
from repro.injection.store import CampaignStore, StoreEligibilityWarning

__all__ = [
    "BitFlip",
    "Campaign",
    "CampaignConfig",
    "CampaignStore",
    "ExperimentRecord",
    "GoldenHarness",
    "GoldenRun",
    "Harness",
    "InjectionHarness",
    "Location",
    "Probe",
    "SamplingReport",
    "SamplingSpec",
    "StateSample",
    "StoreEligibilityWarning",
    "StratumEstimate",
    "VariableSpec",
    "bit_width",
    "flip_bit",
    "flip_bits_batch",
    "flip_values_batch",
    "golden_runs_for",
    "run_sampled_campaign",
]

"""The transient data value fault model: single bit flips.

Section III-B: "We assume a transient data value fault model, which
occurs when internal variables of a system hold erroneous values.  The
transient fault model is generally used to model hardware faults in
which bit flips occur in memory areas".

Variables come in three machine representations, declared per variable
by :class:`repro.injection.instrument.VariableSpec`:

* ``float64`` -- IEEE-754 double precision, 64 flippable bits (flips in
  the exponent produce the huge magnitudes that make fault-injection
  data so skewed; flips in the sign/mantissa produce subtle errors);
* ``int32`` / ``int64`` -- two's complement, 32/64 flippable bits
  (Python ints are unbounded, so targets declare the C-like width their
  variable would occupy and values wrap accordingly);
* ``bool`` -- a single flippable bit.
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np

__all__ = [
    "BitFlip",
    "FaultModelError",
    "bit_width",
    "flip_bit",
    "flip_bits_batch",
    "flip_values_batch",
]


class FaultModelError(ValueError):
    """Raised for invalid bit positions or unsupported variable kinds."""


_WIDTHS = {"float64": 64, "int64": 64, "int32": 32, "bool": 1}


def bit_width(kind: str) -> int:
    """Number of flippable bits for a variable kind."""
    try:
        return _WIDTHS[kind]
    except KeyError:
        raise FaultModelError(f"unsupported variable kind {kind!r}") from None


def flip_bit(value: float | int | bool, kind: str, bit: int) -> float | int | bool:
    """Return ``value`` with bit ``bit`` of its representation flipped.

    Bit 0 is the least significant bit of the representation; for
    ``float64`` bit 63 is the sign bit and bits 52-62 the exponent.
    """
    width = bit_width(kind)
    if not 0 <= bit < width:
        raise FaultModelError(f"bit {bit} out of range for {kind} (width {width})")
    if kind == "bool":
        return not bool(value)
    if kind == "float64":
        (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
        bits ^= 1 << bit
        (flipped,) = struct.unpack("<d", struct.pack("<Q", bits))
        return flipped
    # Two's complement integer of the declared width.
    mask = (1 << width) - 1
    bits = int(value) & mask
    bits ^= 1 << bit
    if bits >= 1 << (width - 1):
        bits -= 1 << width
    return bits


def _pack(values, kind: str) -> np.ndarray:
    """Unsigned bit-pattern view of ``values`` for XOR flipping."""
    if kind == "float64":
        return np.asarray(values, dtype=np.float64).view(np.uint64).copy()
    width = bit_width(kind)
    mask = (1 << width) - 1
    # Python ints are unbounded, so wrap into the declared width before
    # entering the fixed-width array (object dtype keeps exact values).
    packed = [int(v) & mask for v in np.asarray(values, dtype=object).ravel()]
    return np.asarray(packed, dtype=np.uint64)


def _unpack(bits: np.ndarray, kind: str) -> list:
    """Inverse of :func:`_pack`: Python values with exact semantics."""
    if kind == "float64":
        return [float(v) for v in bits.view(np.float64)]
    width = bit_width(kind)
    sign = 1 << (width - 1)
    out = []
    for raw in bits.tolist():
        out.append(raw - (1 << width) if raw >= sign else raw)
    return out


def flip_bits_batch(value: float | int | bool, kind: str, bits) -> list:
    """``[flip_bit(value, kind, b) for b in bits]`` as one packed XOR.

    The whole-shard data plane: instead of one struct pack/unpack per
    cell, the value's bit pattern is packed once and every requested
    position is flipped by a single vectorized XOR over a uint64 view.
    Bit-identical to :func:`flip_bit` for every kind, including NaN
    payloads, signed zeros and two's-complement wrap.
    """
    positions = np.asarray(list(bits), dtype=np.int64)
    if positions.size == 0:
        return []
    width = bit_width(kind)
    if int(positions.min()) < 0 or int(positions.max()) >= width:
        bad = next(b for b in positions.tolist() if not 0 <= b < width)
        raise FaultModelError(
            f"bit {bad} out of range for {kind} (width {width})"
        )
    if kind == "bool":
        return [not bool(value)] * len(positions)
    packed = _pack([value], kind)[0]
    flipped = packed ^ (np.uint64(1) << positions.astype(np.uint64))
    return _unpack(flipped, kind)


def flip_values_batch(values, kind: str, bit: int) -> list:
    """``[flip_bit(v, kind, bit) for v in values]`` as one packed XOR.

    The companion shape: one bit position applied to a whole vector of
    golden values (a (variable, bit) pair across every test case and
    injection time at once).
    """
    width = bit_width(kind)
    if not 0 <= bit < width:
        raise FaultModelError(f"bit {bit} out of range for {kind} (width {width})")
    values = list(values)
    if not values:
        return []
    if kind == "bool":
        return [not bool(v) for v in values]
    flipped = _pack(values, kind) ^ np.uint64(1 << bit)
    return _unpack(flipped, kind)


@dataclasses.dataclass(frozen=True)
class BitFlip:
    """A single injection: flip ``bit`` of ``variable`` of kind ``kind``."""

    variable: str
    kind: str
    bit: int

    def __post_init__(self) -> None:
        if not 0 <= self.bit < bit_width(self.kind):
            raise FaultModelError(
                f"bit {self.bit} out of range for kind {self.kind!r}"
            )

    def apply(self, value: float | int | bool) -> float | int | bool:
        return flip_bit(value, self.kind, self.bit)

    def __str__(self) -> str:
        return f"{self.variable}[{self.kind}]^bit{self.bit}"

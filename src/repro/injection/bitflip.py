"""The transient data value fault model: single bit flips.

Section III-B: "We assume a transient data value fault model, which
occurs when internal variables of a system hold erroneous values.  The
transient fault model is generally used to model hardware faults in
which bit flips occur in memory areas".

Variables come in three machine representations, declared per variable
by :class:`repro.injection.instrument.VariableSpec`:

* ``float64`` -- IEEE-754 double precision, 64 flippable bits (flips in
  the exponent produce the huge magnitudes that make fault-injection
  data so skewed; flips in the sign/mantissa produce subtle errors);
* ``int32`` / ``int64`` -- two's complement, 32/64 flippable bits
  (Python ints are unbounded, so targets declare the C-like width their
  variable would occupy and values wrap accordingly);
* ``bool`` -- a single flippable bit.
"""

from __future__ import annotations

import dataclasses
import struct

__all__ = ["BitFlip", "FaultModelError", "bit_width", "flip_bit"]


class FaultModelError(ValueError):
    """Raised for invalid bit positions or unsupported variable kinds."""


_WIDTHS = {"float64": 64, "int64": 64, "int32": 32, "bool": 1}


def bit_width(kind: str) -> int:
    """Number of flippable bits for a variable kind."""
    try:
        return _WIDTHS[kind]
    except KeyError:
        raise FaultModelError(f"unsupported variable kind {kind!r}") from None


def flip_bit(value: float | int | bool, kind: str, bit: int) -> float | int | bool:
    """Return ``value`` with bit ``bit`` of its representation flipped.

    Bit 0 is the least significant bit of the representation; for
    ``float64`` bit 63 is the sign bit and bits 52-62 the exponent.
    """
    width = bit_width(kind)
    if not 0 <= bit < width:
        raise FaultModelError(f"bit {bit} out of range for {kind} (width {width})")
    if kind == "bool":
        return not bool(value)
    if kind == "float64":
        (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
        bits ^= 1 << bit
        (flipped,) = struct.unpack("<d", struct.pack("<Q", bits))
        return flipped
    # Two's complement integer of the declared width.
    mask = (1 << width) - 1
    bits = int(value) & mask
    bits ^= 1 << bit
    if bits >= 1 << (width - 1):
        bits -= 1 << width
    return bits


@dataclasses.dataclass(frozen=True)
class BitFlip:
    """A single injection: flip ``bit`` of ``variable`` of kind ``kind``."""

    variable: str
    kind: str
    bit: int

    def __post_init__(self) -> None:
        if not 0 <= self.bit < bit_width(self.kind):
            raise FaultModelError(
                f"bit {self.bit} out of range for kind {self.kind!r}"
            )

    def apply(self, value: float | int | bool) -> float | int | bool:
        return flip_bit(value, self.kind, self.bit)

    def __str__(self) -> str:
        return f"{self.variable}[{self.kind}]^bit{self.bit}"

"""Fault injection campaign driver (the PROPANE experiment loop).

Section VI: for each instrumented module the paper generates datasets
by running, for every test case, a golden run plus one injected run per
(variable, bit position, injection time) combination -- "each injected
run entailed a single bit-flip in a variable at one of these positions,
i.e. no multiple injection were performed".  The observable output of
every injected run is checked against the failure specification, and
the module state sampled at the configured sampling location becomes a
labelled instance: *failure-inducing* or *non-failure-inducing*.

:class:`Campaign` reproduces that loop.  The sampled instance of a run
is the state recorded at the sampling probe occurrence closest after
the injection (for entry-injection/entry-sampling this is the corrupted
state itself, "sampled straight after the injection" as in the paper's
discussion of Hiller's setup).  Runs that crash before reaching the
sampling probe produce no instance but are counted as failures in the
campaign statistics.

The paper's full scale (250 test cases x all 64 bits x 4 times per
variable) is supported but configurable; the experiment drivers use a
documented reduced scale (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import math
import struct
from collections.abc import Mapping

from repro import observability as obs
from repro.injection.bitflip import BitFlip, bit_width
from repro.injection.golden import GoldenRun, golden_runs_for
from repro.injection.instrument import (
    InjectionHarness,
    Location,
    Probe,
    StateSample,
    VariableSpec,
)

__all__ = ["CampaignConfig", "ExperimentRecord", "CampaignResult", "Campaign"]


def _encode_value(value: float | int | bool) -> float | int | bool | str:
    """JSON-safe encoding of a sample value.

    Bools and ints pass through; floats become their raw IEEE-754 bits
    as a hex string so the round trip is exact even for NaN payloads
    and denormals (sample values are never plain strings, so the
    encoding is unambiguous).
    """
    if isinstance(value, (bool, int)):
        return value
    (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    return f"0x{bits:016x}"


def _decode_value(token: float | int | bool | str) -> float | int | bool:
    if isinstance(token, str):
        (value,) = struct.unpack("<d", struct.pack("<Q", int(token, 16)))
        return value
    if isinstance(token, float):  # tolerate plain floats
        return token
    return token


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one fault injection campaign (one Table II row).

    Parameters
    ----------
    module:
        Instrumented module to inject into and sample from.
    injection_location / sample_location:
        Entry/exit combination; Table II uses (entry, entry),
        (entry, exit) and (exit, exit).
    test_cases:
        Numbered test cases to run (deterministic per number).
    injection_times:
        Zero-based occurrence indices of the injection probe at which
        to inject (3 for FG, 4 for 7Z/MG in the paper).
    variables:
        Variable names to target (default: all of the module's).
    bits:
        Bit positions to flip.  Either a shared tuple (positions beyond
        a variable's width are skipped, so ``range(16)`` works across
        mixed-width variables) or a mapping from variable kind
        (``"float64"``, ``"int32"``, ...) to a tuple, so campaigns can
        cover integer words densely and float mantissas sparsely.
        Default: every bit of each variable's representation, as in the
        paper.
    prune:
        ``"static"`` classifies every injection point with
        :mod:`repro.analysis.prune` before running and synthesizes
        records for provably dead/equivalent points instead of
        executing them (bit-identical to the exhaustive campaign);
        ``None`` (default) enumerates exhaustively.
    audit_fraction / audit_seed:
        When pruning, the seeded fraction of pruned cells re-injected
        for real to validate the static verdicts (a contradiction
        raises :class:`repro.analysis.prune.PruneContradiction`).
    """

    module: str
    injection_location: Location
    sample_location: Location
    test_cases: tuple[int, ...]
    injection_times: tuple[int, ...]
    variables: tuple[str, ...] | None = None
    bits: tuple[int, ...] | Mapping[str, tuple[int, ...]] | None = None
    prune: str | None = None
    audit_fraction: float = 0.05
    audit_seed: int = 0

    @property
    def injection_probe(self) -> Probe:
        return Probe(self.module, self.injection_location)

    @property
    def sample_probe(self) -> Probe:
        return Probe(self.module, self.sample_location)

    def to_dict(self) -> dict:
        """JSON-compatible form (used by journals and ``repro lint``)."""
        bits: object
        if isinstance(self.bits, Mapping):
            bits = {kind: list(b) for kind, b in sorted(self.bits.items())}
        elif self.bits is not None:
            bits = list(self.bits)
        else:
            bits = None
        payload = {
            "module": self.module,
            "injection_location": self.injection_location.value,
            "sample_location": self.sample_location.value,
            "test_cases": list(self.test_cases),
            "injection_times": list(self.injection_times),
            "variables": None if self.variables is None else list(self.variables),
            "bits": bits,
        }
        # Prune settings are serialized only when enabled, so configs
        # (and the shard fingerprints derived from them) predating the
        # prune field round-trip unchanged.
        if self.prune is not None:
            payload["prune"] = self.prune
            payload["audit_fraction"] = self.audit_fraction
            payload["audit_seed"] = self.audit_seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignConfig":
        bits = payload.get("bits")
        if isinstance(bits, Mapping):
            bits = {kind: tuple(b) for kind, b in bits.items()}
        elif bits is not None:
            bits = tuple(bits)
        variables = payload.get("variables")
        return cls(
            module=payload["module"],
            injection_location=Location(payload["injection_location"]),
            sample_location=Location(payload["sample_location"]),
            test_cases=tuple(payload["test_cases"]),
            injection_times=tuple(payload["injection_times"]),
            variables=None if variables is None else tuple(variables),
            bits=bits,
            prune=payload.get("prune"),
            audit_fraction=float(payload.get("audit_fraction", 0.05)),
            audit_seed=int(payload.get("audit_seed", 0)),
        )


@dataclasses.dataclass
class ExperimentRecord:
    """Outcome of one injected run.

    ``deviated`` is the alternative error notion of the paper's
    Discussion section: whether the sampled state differs from the
    golden run's state at the same probe occurrence -- "any deviation
    from a fault-free execution" -- independent of whether the run went
    on to violate the failure specification.
    """

    test_case: int
    flip: BitFlip
    injection_time: int
    sample: Mapping[str, float | int | bool] | None
    failed: bool
    crashed: bool
    temporal_impact: int
    deviated: bool = False

    @property
    def has_instance(self) -> bool:
        """Whether this run contributes an instance to the dataset."""
        return self.sample is not None

    def to_dict(self) -> dict:
        """JSON-compatible form; float samples keep their exact bits."""
        return {
            "test_case": self.test_case,
            "flip": {
                "variable": self.flip.variable,
                "kind": self.flip.kind,
                "bit": self.flip.bit,
            },
            "injection_time": self.injection_time,
            "sample": None if self.sample is None else {
                name: _encode_value(value)
                for name, value in self.sample.items()
            },
            "failed": self.failed,
            "crashed": self.crashed,
            "temporal_impact": self.temporal_impact,
            "deviated": self.deviated,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentRecord":
        flip = payload["flip"]
        sample = payload["sample"]
        return cls(
            test_case=int(payload["test_case"]),
            flip=BitFlip(flip["variable"], flip["kind"], int(flip["bit"])),
            injection_time=int(payload["injection_time"]),
            sample=None if sample is None else {
                name: _decode_value(token) for name, token in sample.items()
            },
            failed=bool(payload["failed"]),
            crashed=bool(payload["crashed"]),
            temporal_impact=int(payload["temporal_impact"]),
            deviated=bool(payload.get("deviated", False)),
        )


@dataclasses.dataclass
class CampaignResult:
    """All records of a campaign plus its configuration and statistics.

    ``sampling`` is set by sampled campaigns
    (:mod:`repro.injection.sampling`): the per-stratum interval
    estimates and the spec that produced them.  When present,
    ``records`` holds only the sampled (plus prune-synthesized) subset
    of the enumeration, in canonical order.
    """

    target_name: str
    config: CampaignConfig
    records: list[ExperimentRecord]
    golden_runs: dict[int, GoldenRun]
    variable_specs: tuple[VariableSpec, ...]
    sampling: object | None = None  # repro.injection.sampling.SamplingReport

    @property
    def n_runs(self) -> int:
        return len(self.records)

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.records if r.failed)

    @property
    def n_crashes(self) -> int:
        return sum(1 for r in self.records if r.crashed)

    @property
    def failure_rate(self) -> float:
        return self.n_failures / self.n_runs if self.records else 0.0

    def to_dataset(self, name: str | None = None, label_mode: str = "failure"):
        """Convert to a mining dataset (see :mod:`repro.injection.readout`).

        ``label_mode="failure"`` (the paper's target function) labels an
        instance positive when the run violated the failure spec;
        ``"deviation"`` labels it positive when the sampled state
        deviated from the golden run's (the alternative notion of the
        paper's Discussion section).
        """
        from repro.injection import readout

        return readout.records_to_dataset(self, name, label_mode)

    def to_dict(self) -> dict:
        """JSON-compatible form of the whole campaign.

        Like the PROPANE log format, golden runs are not persisted
        (their outputs are arbitrary Python objects); everything the
        analysis consumes -- config, variable specs, records -- round
        trips exactly.
        """
        payload = {
            "format": "repro.injection.campaign",
            "target": self.target_name,
            "config": self.config.to_dict(),
            "variable_specs": [
                {"name": spec.name, "kind": spec.kind}
                for spec in self.variable_specs
            ],
            "records": [record.to_dict() for record in self.records],
        }
        # Sampling reports are serialized only when present, so
        # exhaustive campaign documents round-trip unchanged.
        if self.sampling is not None:
            payload["sampling"] = self.sampling.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignResult":
        sampling = None
        if payload.get("sampling") is not None:
            from repro.injection.sampling import SamplingReport

            sampling = SamplingReport.from_dict(payload["sampling"])
        return cls(
            target_name=payload["target"],
            config=CampaignConfig.from_dict(payload["config"]),
            records=[
                ExperimentRecord.from_dict(r) for r in payload["records"]
            ],
            golden_runs={},
            variable_specs=tuple(
                VariableSpec(spec["name"], spec["kind"])
                for spec in payload["variable_specs"]
            ),
            sampling=sampling,
        )


class Campaign:
    """Runs a fault injection campaign against one target system."""

    def __init__(self, target, config: CampaignConfig) -> None:
        target.check_module(config.module)
        self.target = target
        self.config = config
        # Dataset attributes come from what the *sampling* probe sees;
        # flips can only target what the *injection* probe sees.
        self.variable_specs: tuple[VariableSpec, ...] = target.variables_of(
            config.module, config.sample_location
        )
        self.injectable_specs: tuple[VariableSpec, ...] = target.variables_of(
            config.module, config.injection_location
        )
        known = {spec.name for spec in self.injectable_specs}
        if config.variables is not None:
            unknown = set(config.variables) - known
            if unknown:
                raise ValueError(
                    f"unknown injectable variables for module "
                    f"{config.module!r} at {config.injection_location}: "
                    f"{sorted(unknown)}"
                )

    def _targeted_specs(self) -> tuple[VariableSpec, ...]:
        if self.config.variables is None:
            return self.injectable_specs
        wanted = set(self.config.variables)
        return tuple(s for s in self.injectable_specs if s.name in wanted)

    def store_key_base(self) -> dict | None:
        """The store key shared by every shard of this campaign.

        Everything that determines a shard's records except the
        shard's own pairs: the injected module's source-closure
        fingerprint, the failure-spec fingerprint, both probe sets,
        and the config slice.  The variable/bit selection (and the
        prune/audit settings, which never change an executed record)
        is deliberately absent -- a shard's pairs carry it, so
        campaigns slicing the same space differently share store
        entries.  ``None`` when the target is not store-eligible
        (see :meth:`repro.targets.base.TargetSystem.module_sources`).
        """
        module_fp = self.target.module_fingerprint(self.config.module)
        failure_fp = self.target.failure_fingerprint()
        if module_fp is None or failure_fp is None:
            return None
        config = self.config.to_dict()
        for key in ("prune", "audit_fraction", "audit_seed", "variables", "bits"):
            config.pop(key, None)
        return {
            "schema": 1,
            "target": self.target.name,
            "module_fingerprint": module_fp,
            "failure_fingerprint": failure_fp,
            "probes": {
                "injection": [
                    [spec.name, spec.kind] for spec in self.injectable_specs
                ],
                "sample": [
                    [spec.name, spec.kind] for spec in self.variable_specs
                ],
            },
            "config": config,
        }

    def plan_delta(self, store, shard_size: int = 1) -> dict:
        """Classify this campaign's shards against a store, running
        nothing: how much of the campaign a ``run(store=...)`` would
        load versus execute.  ``stored``/``invalidated``/``missing``
        partition the shard count (``invalidated`` shards have a
        superseded generation in the store -- the module was edited;
        ``missing`` shards are cold)."""
        from repro.injection.store import logical_id_of
        from repro.orchestration.campaigns import plan_shards
        from repro.orchestration.tasks import fingerprint_of

        base = self.store_key_base()
        plan = {
            "eligible": base is not None,
            "shards": 0,
            "stored": 0,
            "invalidated": 0,
            "missing": 0,
        }
        if base is None:
            return plan
        index = store._load_index()["logical"]
        for shard in plan_shards(self, shard_size):
            key = {**base, "pairs": [list(pair) for pair in shard]}
            fingerprint = fingerprint_of(key)
            plan["shards"] += 1
            if store.contains(fingerprint):
                plan["stored"] += 1
            elif index.get(logical_id_of(key)) is not None:
                plan["invalidated"] += 1
            else:
                plan["missing"] += 1
        return plan

    def _bits_for(self, spec: VariableSpec) -> tuple[int, ...]:
        width = bit_width(spec.kind)
        bits = self.config.bits
        if bits is None:
            return tuple(range(width))
        if isinstance(bits, Mapping):
            chosen = bits.get(spec.kind)
            if chosen is None:
                return tuple(range(width))
            return tuple(b for b in chosen if 0 <= b < width)
        return tuple(b for b in bits if 0 <= b < width)

    def _make_harness(self, flip: BitFlip, injection_time: int) -> InjectionHarness:
        """Harness factory; overridable (e.g. to add runtime assertions)."""
        return InjectionHarness(
            self.config.injection_probe,
            flip,
            injection_time,
            sample_probe=self.config.sample_probe,
        )

    def run(
        self,
        pool=None,
        journal=None,
        shard_size: int = 1,
        prune: str | None = None,
        audit_fraction: float | None = None,
        audit_seed: int | None = None,
        mode: str = "exhaustive",
        ci: str = "wilson",
        target_halfwidth: float = 0.05,
        confidence: float = 0.95,
        sample_seed: int = 0,
        sampling=None,
        store=None,
    ) -> CampaignResult:
        """Execute the full campaign and return its records.

        With no arguments the campaign runs serially in-process, as the
        paper's loop does.  ``pool`` (a
        :class:`repro.orchestration.WorkerPool`) shards the campaign
        into independent run-batches and executes them in parallel --
        the merged records are bit-identical to the serial path for any
        worker count.  ``journal`` (a
        :class:`repro.orchestration.Journal`) checkpoints each
        completed shard so a killed campaign resumes without
        re-executing finished work.  When neither is given, a pool
        configured via :func:`repro.orchestration.configure` (the
        experiments CLI's ``--jobs``) is picked up automatically.

        ``prune="static"`` (or ``config.prune``) runs the statically
        pruned campaign: provably dead or class-equivalent injection
        points synthesize their records from golden runs and class
        representatives instead of executing, then a seeded
        ``audit_fraction`` of the pruned cells is re-injected for real
        and checked against the synthesized records (see
        :mod:`repro.analysis.prune`).  The record list stays
        bit-identical to the exhaustive campaign's.

        ``mode="sample"`` runs a statistical sampling campaign instead
        of the exhaustive enumeration (see
        :mod:`repro.injection.sampling`): stratified seeded draws over
        the same cell space, with online ``ci`` intervals
        (``"wilson"`` or ``"clopper-pearson"``) at ``confidence`` and
        an early-stop once every stratum's class intervals are within
        ``target_halfwidth``.  The result's ``sampling`` field carries
        the per-stratum estimates; its records are the sampled subset
        in canonical order, each bit-identical to the exhaustive
        campaign's record for the same cell.  ``sampling`` (a
        :class:`~repro.injection.sampling.SamplingSpec`) overrides the
        individual knobs for full control.  Sampling composes with
        ``prune="static"``: draws are restricted to the statically
        live classes, dead and member cells are synthesized exactly
        (the prune audit does not run in sample mode -- pruned cells
        are already a separate exactness tier).

        ``store`` (a :class:`repro.injection.store.CampaignStore`)
        makes the run *compositional*: every shard's records are
        addressed by the injected module's source-closure fingerprint
        (plus failure spec, probes, config slice and pairs), so after
        editing one target module only that module's shards re-execute
        -- everything else loads from the store and merges in canonical
        order, bit-identical to a fresh exhaustive run.  Targets opt in
        by declaring per-module source closures
        (:meth:`~repro.targets.base.TargetSystem.module_sources`);
        ineligible targets warn and run storeless.  The store composes
        with journals, pools, ``prune="static"`` and ``mode="sample"``
        in both directions.

        Campaign subclasses that observe per-run harness state through
        :meth:`_after_run` (e.g. the validation campaign) are forced
        onto in-process execution, since a worker process's harness
        observations would be lost with the worker.  For the same
        reason they refuse pruning and sampling: a synthesized or
        undrawn run never executes, so the hook would silently miss
        it.
        """
        if mode not in ("exhaustive", "sample"):
            raise ValueError(f"unknown campaign mode {mode!r}")
        prune_mode = prune if prune is not None else (self.config.prune or "none")
        if prune_mode not in ("none", "static"):
            raise ValueError(f"unknown prune mode {prune_mode!r}")
        if mode == "sample":
            if type(self)._after_run is not Campaign._after_run:
                raise ValueError(
                    "campaigns observing per-run harness state via "
                    "_after_run cannot sample: undrawn runs never execute"
                )
            if sampling is None:
                from repro.injection.sampling import SamplingSpec

                sampling = SamplingSpec(
                    ci=ci,
                    confidence=confidence,
                    target_halfwidth=target_halfwidth,
                    seed=sample_seed,
                )
            return self._run_sampled(pool, journal, sampling, prune_mode, store)
        if prune_mode == "static":
            if type(self)._after_run is not Campaign._after_run:
                raise ValueError(
                    "campaigns observing per-run harness state via "
                    "_after_run cannot prune: synthesized runs never "
                    "execute"
                )
            fraction = (
                self.config.audit_fraction
                if audit_fraction is None
                else audit_fraction
            )
            seed = self.config.audit_seed if audit_seed is None else audit_seed
            owns_pool = False
            if pool is None:
                from repro.orchestration.pool import default_pool

                pool = default_pool()
                owns_pool = pool is not None
            try:
                return self._run_pruned(
                    pool, journal, shard_size, fraction, seed, store
                )
            finally:
                if owns_pool:
                    pool.close()
        if pool is None:
            from repro.orchestration.pool import default_pool

            pool = default_pool()
            if pool is None:
                if journal is None and store is None:
                    return self._run_serial()
                return self._run_orchestrated(None, journal, shard_size, store)
            try:
                return self._run_orchestrated(pool, journal, shard_size, store)
            finally:
                pool.close()
        return self._run_orchestrated(pool, journal, shard_size, store)

    def _run_sampled(
        self, pool, journal, spec, prune_mode: str, store=None
    ) -> CampaignResult:
        """The statistical sampling campaign (optionally prune-composed)."""
        from repro.injection.sampling import run_sampled_campaign

        golden_runs = golden_runs_for(self.target, self.config.test_cases)
        prune_plan = None
        if prune_mode == "static":
            from repro.analysis import prune as prune_mod
            from repro.observability import names

            with obs.span(names.PRUNE_PLAN, target=self.target.name) as span:
                prune_plan = prune_mod.plan_prune(self, golden_runs=golden_runs)
                counts = prune_plan.counts
                span.count("points", len(prune_plan.points))
                span.count(names.COUNTER_PRUNED, counts["dead"] + counts["member"])
        owns_pool = False
        if pool is None:
            from repro.orchestration.pool import default_pool

            pool = default_pool()
            owns_pool = pool is not None
        try:
            return run_sampled_campaign(
                self,
                spec,
                pool=pool,
                journal=journal,
                prune_plan=prune_plan,
                golden_runs=golden_runs,
                store=store,
            )
        finally:
            if owns_pool:
                pool.close()

    def _run_serial(self) -> CampaignResult:
        """The paper's strictly serial experiment loop."""
        with obs.span(
            "campaign.serial", target=self.target.name
        ) as campaign_span:
            golden_runs = golden_runs_for(self.target, self.config.test_cases)
            records: list[ExperimentRecord] = []
            for spec in self._targeted_specs():
                for bit in self._bits_for(spec):
                    flip = BitFlip(spec.name, spec.kind, bit)
                    for injection_time in self.config.injection_times:
                        for tc in self.config.test_cases:
                            records.append(
                                self._run_one(
                                    flip, injection_time, tc, golden_runs[tc]
                                )
                            )
            campaign_span.count("runs", len(records))
            campaign_span.count(
                "failures", sum(1 for r in records if r.failed)
            )
        return CampaignResult(
            self.target.name,
            self.config,
            records,
            golden_runs,
            self.variable_specs,
        )

    def _run_orchestrated(
        self, pool, journal, shard_size: int, store=None
    ) -> CampaignResult:
        from repro.orchestration.campaigns import run_campaign
        from repro.orchestration.pool import SerialPool

        if (
            pool is not None
            and getattr(pool, "jobs", 1) > 1
            and type(self)._after_run is not Campaign._after_run
        ):
            # Observation hooks need the runs in this process.
            pool = SerialPool(metrics=getattr(pool, "metrics", None))
        return run_campaign(
            self, pool=pool, journal=journal, shard_size=shard_size, store=store
        )

    def _run_pruned(
        self,
        pool,
        journal,
        shard_size: int,
        audit_fraction: float,
        audit_seed: int,
        store=None,
    ) -> CampaignResult:
        """The statically pruned campaign: plan, execute the remainder,
        synthesize the rest, audit.  Bit-identical to `_run_serial`."""
        from repro.analysis import prune as prune_mod
        from repro.observability import names

        with obs.span(names.PRUNE_PLAN, target=self.target.name) as plan_span:
            golden_runs = golden_runs_for(self.target, self.config.test_cases)
            plan = prune_mod.plan_prune(self, golden_runs=golden_runs)
            counts = plan.counts
            plan_span.count("points", len(plan.points))
            plan_span.count(names.COUNTER_PRUNED, counts["dead"] + counts["member"])

        pairs = plan.executed_pairs()
        orchestration = None
        if pool is None and journal is None and store is None:
            executed = self._execute_pairs(pairs, golden_runs)
        else:
            from repro.orchestration.campaigns import run_campaign

            partial = run_campaign(
                self,
                pool=pool,
                journal=journal,
                shard_size=shard_size,
                pairs=pairs,
                golden_runs=golden_runs,
                store=store,
            )
            orchestration = getattr(partial, "orchestration", None)
            runs_per_pair = len(self.config.injection_times) * len(
                self.config.test_cases
            )
            executed = {
                (name, bit): partial.records[
                    index * runs_per_pair : (index + 1) * runs_per_pair
                ]
                for index, (name, _kind, bit) in enumerate(pairs)
            }

        with obs.span(
            names.PRUNE_SYNTHESIZE, target=self.target.name
        ) as synth_span:
            records = prune_mod.assemble_records(self, plan, executed)
            synth_span.count(
                "synthesized", len(records) - len(pairs) * plan.runs_per_point
            )

        with obs.span(names.PRUNE_AUDIT, target=self.target.name) as audit_span:
            audit = prune_mod.audit_records(
                self, plan, records, audit_fraction, audit_seed
            )
            audit_span.count(names.COUNTER_AUDITED, audit["audited"])
            audit_span.count(
                names.COUNTER_CONTRADICTIONS, audit["contradictions"]
            )

        result = CampaignResult(
            self.target.name,
            self.config,
            records,
            golden_runs,
            self.variable_specs,
        )
        result.prune = {  # type: ignore[attr-defined]
            "mode": "static",
            **counts,
            "runs_planned": plan.runs_planned,
            "runs_executed": plan.runs_executed,
            "runs_pruned": plan.runs_pruned,
            "pruned_fraction": plan.pruned_fraction,
            "audit": audit,
        }
        if orchestration is not None:
            result.orchestration = orchestration  # type: ignore[attr-defined]
        return result

    def _execute_pairs(
        self,
        pairs,
        golden_runs: dict[int, GoldenRun],
    ) -> dict[tuple[str, int], list[ExperimentRecord]]:
        """Serial inner loops for an explicit (variable, kind, bit) list."""
        executed: dict[tuple[str, int], list[ExperimentRecord]] = {}
        for name, kind, bit in pairs:
            flip = BitFlip(name, kind, bit)
            records: list[ExperimentRecord] = []
            for injection_time in self.config.injection_times:
                for tc in self.config.test_cases:
                    records.append(
                        self._run_one(flip, injection_time, tc, golden_runs[tc])
                    )
            executed[(name, bit)] = records
        return executed

    def _run_one(
        self,
        flip: BitFlip,
        injection_time: int,
        test_case: int,
        golden: GoldenRun,
        injected_hint: tuple | None = None,
    ) -> ExperimentRecord:
        harness = self._make_harness(flip, injection_time)
        if injected_hint is not None and getattr(
            harness, "injected_hint", None
        ) is None:
            # Precomputed (golden value, flipped value) from the shard
            # data plane's vectorized XOR; the harness verifies the
            # live value matches before using it, so the hint can only
            # skip work, never change a record.
            harness.injected_hint = injected_hint
        crashed = False
        try:
            output = self.target.run(test_case, harness)
            failed = self.target.is_failure(golden.output, output)
        except Exception:
            # An injected fault crashed the target: a specification
            # violation by definition (no valid output was produced).
            crashed = True
            failed = True
        sample = self._pick_sample(harness, injection_time)
        temporal_impact = max(
            0, harness.occurrences(self.config.injection_probe) - injection_time
        )
        record = ExperimentRecord(
            test_case=test_case,
            flip=flip,
            injection_time=injection_time,
            sample=sample.variables if sample is not None else None,
            failed=failed,
            crashed=crashed,
            temporal_impact=temporal_impact,
            deviated=self._deviated(golden, sample),
        )
        self._after_run(harness, record)
        return record

    def _deviated(self, golden: GoldenRun, sample: StateSample | None) -> bool:
        """Golden-diff of the sampled state itself (Discussion §VIII)."""
        if sample is None:
            return True  # never reached the probe: maximal deviation
        reference = golden.sample_at(self.config.sample_probe, sample.occurrence)
        if reference is None:
            return True  # golden run has no matching occurrence
        return not _states_equal(reference.variables, sample.variables)

    def _after_run(self, harness: InjectionHarness, record: ExperimentRecord) -> None:
        """Hook for subclasses that observe each run's harness (e.g. the
        runtime-assertion validation of Section VII-D)."""

    def _pick_sample(
        self, harness: InjectionHarness, injection_time: int
    ) -> StateSample | None:
        """The instance state: first sample at/after the injection time.

        Entry->exit sampling of the same invocation shares the
        occurrence index with the injection probe, so "at or after the
        injection occurrence" selects the state right after the fault
        was introduced in all three Table II location combinations.
        """
        for sample in harness.samples:
            if sample.occurrence >= injection_time:
                return sample
        return None


def _states_equal(
    a: Mapping[str, float | int | bool], b: Mapping[str, float | int | bool]
) -> bool:
    if a.keys() != b.keys():
        return False
    for name, value in a.items():
        other = b[name]
        if isinstance(value, float) and isinstance(other, float):
            if math.isnan(value) and math.isnan(other):
                continue
        if value != other:
            return False
    return True

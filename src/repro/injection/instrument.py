"""Instrumentation model: probes, variable specs and harnesses.

PROPANE instruments a target so that, at chosen code locations, state
can be *sampled* (logged) or a fault *injected*.  In this reproduction
a target module is instrumented by calling::

    state = harness.probe("Gear", Location.ENTRY, state)

at its entry point and exit point, where ``state`` is a dict of the
module's non-composite variables (Section III-A's system model).  The
harness may record the state, mutate it (inject a bit flip), or both;
the module must continue executing with the returned dict.

The two concrete harnesses are:

* :class:`GoldenHarness` -- records samples, never mutates: produces a
  golden run;
* :class:`InjectionHarness` -- additionally flips one bit of one
  variable at the *n*-th occurrence of the injection probe (the
  occurrence index is the paper's "injection time": a control-loop
  iteration for FlightGear, a file index for 7-Zip/Mp3Gain).  To keep
  long-loop targets cheap it only records samples from the injection
  time onwards, up to a configurable budget -- the campaign uses the
  first sample at/after the injection.

Sampling is restricted to a configured probe so that each dataset
corresponds to one (injection location, sampling location) pair as in
Table II.

The probe call is the hot path of every campaign (a FlightGear run
crosses it ~10,000 times), so occurrence bookkeeping uses plain
``(module, location)`` tuples internally.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from collections.abc import Mapping

from repro.injection.bitflip import BitFlip, bit_width

__all__ = [
    "Location",
    "Probe",
    "VariableSpec",
    "StateSample",
    "Harness",
    "GoldenHarness",
    "InjectionHarness",
    "InstrumentationError",
]


class InstrumentationError(RuntimeError):
    """Raised when a target violates the instrumentation contract."""


class Location(enum.Enum):
    """Module code locations where probes can be placed."""

    ENTRY = "entry"
    EXIT = "exit"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Probe:
    """A (module, location) instrumentation point."""

    module: str
    location: Location

    @property
    def key(self) -> tuple[str, Location]:
        return (self.module, self.location)

    def __str__(self) -> str:
        return f"{self.module}@{self.location}"


@dataclasses.dataclass(frozen=True)
class VariableSpec:
    """Declared machine representation of one instrumented variable."""

    name: str
    kind: str = "float64"  # float64 | int64 | int32 | bool

    def __post_init__(self) -> None:
        bit_width(self.kind)  # validates the kind

    @property
    def bits(self) -> int:
        return bit_width(self.kind)


@dataclasses.dataclass(frozen=True)
class StateSample:
    """One sampled module state: the instances of the mining datasets."""

    probe: Probe
    occurrence: int
    variables: Mapping[str, float | int | bool]


class Harness:
    """Base harness: counts probe occurrences and records samples.

    ``sample_probe`` selects which probe is logged (one per dataset, as
    in Table II); ``None`` records every probe, which golden runs use
    so any sampling location can be read off later.
    """

    def __init__(self, sample_probe: Probe | None = None) -> None:
        self.sample_probe = sample_probe
        self._sample_key = None if sample_probe is None else sample_probe.key
        self.samples: list[StateSample] = []
        self._occurrences: dict[tuple[str, Location], int] = {}

    def probe(
        self,
        module: str,
        location: Location,
        variables: Mapping[str, float | int | bool],
    ) -> dict[str, float | int | bool]:
        """Called by instrumented targets at module boundaries."""
        key = (module, location)
        occurrence = self._occurrences.get(key, 0)
        self._occurrences[key] = occurrence + 1
        state = dict(variables)
        state = self._on_probe(key, occurrence, state)
        if (
            self._sample_key is None or key == self._sample_key
        ) and self._should_sample(key, occurrence):
            self.samples.append(
                StateSample(Probe(module, location), occurrence, dict(state))
            )
        return state

    def _on_probe(
        self,
        key: tuple[str, Location],
        occurrence: int,
        state: dict[str, float | int | bool],
    ) -> dict[str, float | int | bool]:
        return state

    def _should_sample(self, key: tuple[str, Location], occurrence: int) -> bool:
        return True

    def occurrences(self, probe: Probe) -> int:
        """Number of times ``probe`` has fired so far."""
        return self._occurrences.get(probe.key, 0)

    def samples_at(self, probe: Probe) -> list[StateSample]:
        return [s for s in self.samples if s.probe == probe]


class GoldenHarness(Harness):
    """Fault-free recording harness (records all probes by default)."""


class InjectionHarness(Harness):
    """Harness that flips one bit at one occurrence of one probe.

    Parameters
    ----------
    injection_probe:
        Where to inject (module + entry/exit).
    flip:
        Which variable/kind/bit to corrupt.
    injection_time:
        Zero-based occurrence index of ``injection_probe`` at which the
        flip is applied.
    sample_probe:
        Which probe's states to record (the dataset's sampling
        location).
    sample_budget:
        How many samples to keep, starting at the injection time (the
        campaign consumes the first; a larger budget supports latency
        analyses).  ``None`` keeps every sample from the injection time
        onwards.
    injected_hint:
        Optional ``(expected_original, injected_value)`` pair
        precomputed by the shard data plane (one vectorized XOR over
        the golden values of a whole shard, see
        :func:`repro.injection.bitflip.flip_values_batch`).  The hint
        is used only when the live state's value provably has the same
        bit pattern as ``expected_original``; any mismatch falls back
        to :meth:`BitFlip.apply`, so the hint can never change a
        record.
    """

    def __init__(
        self,
        injection_probe: Probe,
        flip: BitFlip,
        injection_time: int,
        sample_probe: Probe | None = None,
        sample_budget: int | None = 4,
        injected_hint: tuple | None = None,
    ) -> None:
        super().__init__(sample_probe)
        self.injection_probe = injection_probe
        self._injection_key = injection_probe.key
        self.flip = flip
        self.injection_time = injection_time
        self.sample_budget = sample_budget
        self.injected_hint = injected_hint
        self.injected = False
        self.injected_value: float | int | bool | None = None
        self.original_value: float | int | bool | None = None

    def _apply_flip(self, original):
        """The precomputed injected value when it provably applies."""
        hint = self.injected_hint
        if hint is not None:
            expected, injected = hint
            if type(original) is type(expected):
                if isinstance(original, float):
                    # Equal non-zero floats share one bit pattern; the
                    # copysign check separates 0.0 from -0.0 and NaN
                    # (never ==) always falls through to the flip.
                    if original == expected and math.copysign(
                        1.0, original
                    ) == math.copysign(1.0, expected):
                        return injected
                elif original == expected:
                    return injected
        return self.flip.apply(original)

    def _on_probe(
        self,
        key: tuple[str, Location],
        occurrence: int,
        state: dict[str, float | int | bool],
    ) -> dict[str, float | int | bool]:
        if (
            not self.injected
            and occurrence == self.injection_time
            and key == self._injection_key
        ):
            if self.flip.variable not in state:
                raise InstrumentationError(
                    f"variable {self.flip.variable!r} not exposed at "
                    f"{key[0]}@{key[1]}"
                )
            self.original_value = state[self.flip.variable]
            self.injected_value = self._apply_flip(self.original_value)
            state[self.flip.variable] = self.injected_value
            self.injected = True
        return state

    def _should_sample(self, key: tuple[str, Location], occurrence: int) -> bool:
        if occurrence < self.injection_time:
            return False
        if self.sample_budget is not None and len(self.samples) >= self.sample_budget:
            return False
        return True

"""PROPANE-style experiment log format.

PROPANE persists every injection experiment to log files which are
later converted for analysis; the paper's Step 2 explicitly includes
that conversion.  This module defines the reproduction's equivalent
on-disk format -- line-oriented, human-readable, lossless for
everything the analysis needs -- plus its parser.

Format (one campaign per file)::

    #PROPANE-LOG v1
    #target 7Z
    #module FHandle
    #inject entry
    #sample exit
    #var buf_len int32
    #var crc float64
    RUN tc=3 var=buf_len kind=int32 bit=5 time=2 failed=1 crashed=0 impact=7
    S buf_len=17 crc=0x3ff0000000000000
    RUN tc=3 var=crc kind=float64 bit=63 time=0 failed=0 crashed=0 impact=9
    S -

Float values are hex-encoded (``float.hex``-style via ``0x`` raw bits)
so the round trip is exact even for NaN payloads and denormals; bools
are ``0``/``1``; ints are decimal.  ``S -`` marks a run that never
reached the sampling probe.
"""

from __future__ import annotations

import dataclasses
import struct
from collections.abc import Iterable

from repro.injection.bitflip import BitFlip
from repro.injection.campaign import CampaignConfig, CampaignResult, ExperimentRecord
from repro.injection.instrument import Location, VariableSpec

__all__ = ["LogFormatError", "write_log", "read_log", "ParsedLog"]

_MAGIC = "#PROPANE-LOG v1"


class LogFormatError(ValueError):
    """Raised on malformed log input."""


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
def _encode_value(value: float | int | bool, kind: str) -> str:
    if kind == "bool":
        return "1" if value else "0"
    if kind == "float64":
        (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
        return f"0x{bits:016x}"
    return str(int(value))


def _decode_value(token: str, kind: str) -> float | int | bool:
    if kind == "bool":
        return token == "1"
    if kind == "float64":
        if not token.startswith("0x"):
            return float(token)  # tolerate plain floats
        (value,) = struct.unpack("<d", struct.pack("<Q", int(token, 16)))
        return value
    return int(token)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_log(result: CampaignResult, fp) -> None:
    """Serialise a campaign result to a file-like object."""
    config = result.config
    fp.write(_MAGIC + "\n")
    fp.write(f"#target {result.target_name}\n")
    fp.write(f"#module {config.module}\n")
    fp.write(f"#inject {config.injection_location}\n")
    fp.write(f"#sample {config.sample_location}\n")
    for spec in result.variable_specs:
        fp.write(f"#var {spec.name} {spec.kind}\n")
    kinds = {spec.name: spec.kind for spec in result.variable_specs}
    for record in result.records:
        fp.write(
            "RUN "
            f"tc={record.test_case} "
            f"var={record.flip.variable} "
            f"kind={record.flip.kind} "
            f"bit={record.flip.bit} "
            f"time={record.injection_time} "
            f"failed={int(record.failed)} "
            f"crashed={int(record.crashed)} "
            f"impact={record.temporal_impact} "
            f"deviated={int(record.deviated)}\n"
        )
        if record.sample is None:
            fp.write("S -\n")
        else:
            cells = " ".join(
                f"{name}={_encode_value(value, kinds.get(name, 'float64'))}"
                for name, value in record.sample.items()
            )
            fp.write(f"S {cells}\n")


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ParsedLog:
    """A campaign log read back from disk.

    Mirrors :class:`repro.injection.campaign.CampaignResult` closely
    enough that :func:`repro.injection.readout.records_to_dataset`
    accepts it (same attribute names), minus the golden runs, which are
    not persisted.
    """

    target_name: str
    config: CampaignConfig
    records: list[ExperimentRecord]
    variable_specs: tuple[VariableSpec, ...]

    def to_dataset(self, name: str | None = None):
        from repro.injection import readout

        return readout.records_to_dataset(self, name)  # type: ignore[arg-type]


def read_log(fp: Iterable[str]) -> ParsedLog:
    """Parse a campaign log written by :func:`write_log`."""
    lines = iter(fp)
    first = next(lines, None)
    if first is None or first.strip() != _MAGIC:
        raise LogFormatError("missing PROPANE-LOG magic header")

    target_name = ""
    module = ""
    inject_location: Location | None = None
    sample_location: Location | None = None
    specs: list[VariableSpec] = []
    records: list[ExperimentRecord] = []
    pending: dict[str, str] | None = None
    test_cases: set[int] = set()
    times: set[int] = set()

    def finish_pending(sample) -> None:
        nonlocal pending
        assert pending is not None
        records.append(
            ExperimentRecord(
                test_case=int(pending["tc"]),
                flip=BitFlip(pending["var"], pending["kind"], int(pending["bit"])),
                injection_time=int(pending["time"]),
                sample=sample,
                failed=pending["failed"] == "1",
                crashed=pending["crashed"] == "1",
                temporal_impact=int(pending["impact"]),
                # Older logs predate the deviation field; default to 0.
                deviated=pending.get("deviated", "0") == "1",
            )
        )
        test_cases.add(int(pending["tc"]))
        times.add(int(pending["time"]))
        pending = None

    kinds: dict[str, str] = {}
    for lineno, raw in enumerate(lines, start=2):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            fields = line[1:].split()
            if not fields:
                continue
            key = fields[0]
            if key == "target":
                target_name = fields[1]
            elif key == "module":
                module = fields[1]
            elif key == "inject":
                inject_location = Location(fields[1])
            elif key == "sample":
                sample_location = Location(fields[1])
            elif key == "var":
                spec = VariableSpec(fields[1], fields[2])
                specs.append(spec)
                kinds[spec.name] = spec.kind
            else:
                raise LogFormatError(f"line {lineno}: unknown header {key!r}")
            continue
        if line.startswith("RUN "):
            if pending is not None:
                raise LogFormatError(f"line {lineno}: RUN without sample line")
            pending = dict(
                field.split("=", 1) for field in line[len("RUN "):].split()
            )
            continue
        if line.startswith("S"):
            if pending is None:
                raise LogFormatError(f"line {lineno}: sample without RUN")
            body = line[1:].strip()
            if body == "-":
                finish_pending(None)
            else:
                sample: dict[str, float | int | bool] = {}
                for cell in body.split():
                    name, token = cell.split("=", 1)
                    sample[name] = _decode_value(token, kinds.get(name, "float64"))
                finish_pending(sample)
            continue
        raise LogFormatError(f"line {lineno}: unrecognised line {line!r}")

    if pending is not None:
        raise LogFormatError("log truncated: RUN without sample line")
    if inject_location is None or sample_location is None or not module:
        raise LogFormatError("incomplete log header")
    config = CampaignConfig(
        module=module,
        injection_location=inject_location,
        sample_location=sample_location,
        test_cases=tuple(sorted(test_cases)),
        injection_times=tuple(sorted(times)),
    )
    return ParsedLog(target_name, config, records, tuple(specs))

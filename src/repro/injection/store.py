"""Persistent content-addressed campaign-result store.

FastFlip (PAPERS.md) composes per-section error analysis incrementally:
after a program edit, only the modified section re-analyzes.  This
module is that idea applied to Step 1 of the methodology.  A
:class:`CampaignStore` persists campaign shard results keyed by a
*store key* that names everything determining the shard's records:

* the target module's **source closure fingerprint**
  (:meth:`repro.targets.base.TargetSystem.module_fingerprint`:
  AST-normalized sources of the code the module executes, plus the
  instance state shared across modules),
* the **failure specification fingerprint**
  (:meth:`~repro.targets.base.TargetSystem.failure_fingerprint`),
* the **probe sets** visible at the injection and sampling locations,
* the campaign **config slice** (module, locations, injection times,
  test cases -- but *not* the variable/bit selection: the shard's
  ``pairs`` carry those, so campaigns slicing the same space
  differently share shards),
* the shard's ``pairs`` (its cut of the canonical enumeration).

The fingerprint of that key is the shard's content address.  Editing
one target module changes only that module's source-closure
fingerprint, so every other module's shards keep their addresses and
load from the store -- ``Campaign.run(store=...)`` becomes a delta
operation, bit-identical to a fresh exhaustive run (the differential
contract proved by ``tests/injection/test_store.py``).

Invalidation bookkeeping: the key fields above split into *content*
fields (module/failure fingerprints, probes -- the parts an edit
changes) and *identity* fields (everything else).  The fingerprint of
the identity fields is the shard's **logical id**: the slice of
injection space it covers, stable across edits.  ``index.json`` maps
each logical id to its latest generation, so the store can tell a
*cold* miss (slice never ran) from an *invalidated* one (a superseded
generation exists) and ``gc()`` can drop stale generations.

Layout (all writes atomic: temp file + ``os.replace``)::

    <root>/index.json            logical id -> latest fingerprint
    <root>/shards/<fp>.json      one shard's records + its full key

The store assumes a single writer at a time (the campaign process);
readers are safe concurrently because shard files are immutable once
written and the index is replaced atomically.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile

__all__ = [
    "CampaignStore",
    "StoreEligibilityWarning",
    "StoreEntry",
    "logical_id_of",
]

STORE_FORMAT = "repro.injection.store"
SHARD_FORMAT = "repro.injection.store.shard"
VERSION = 1

#: Key fields that change when a target module (or its failure spec)
#: is edited.  The remaining fields identify the injection-space slice
#: itself -- its logical id -- stable across edits.
CONTENT_FIELDS = ("module_fingerprint", "failure_fingerprint", "probes")


class StoreEligibilityWarning(RuntimeWarning):
    """A store was requested for a target that cannot fingerprint its
    module sources; the campaign proceeds without the store."""


def logical_id_of(key: dict) -> str:
    """Identity of the injection-space slice a key covers.

    Drops the content fields, so two generations of the same slice
    (before and after a module edit) share a logical id while their
    content addresses differ.
    """
    # Deferred: importing repro.orchestration at module scope would
    # close the cycle core.detector -> injection -> orchestration ->
    # runtime -> core.detector.
    from repro.orchestration.tasks import fingerprint_of

    return fingerprint_of(
        {k: v for k, v in key.items() if k not in CONTENT_FIELDS}
    )


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored shard (no records)."""

    fingerprint: str
    logical_id: str
    sequence: int
    target: str
    module: str
    pairs: int
    records: int
    stale: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class CampaignStore:
    """Content-addressed persistence for campaign shard results.

    ``counters`` tallies this instance's traffic: ``hits`` (shard
    loaded), ``misses`` (cold: no generation of the slice exists),
    ``invalidated`` (a *different* generation exists -- the slice's
    module was edited since it was stored) and ``writes`` (new shard
    files).  The three read counters are disjoint, so
    ``hits + misses + invalidated`` is the number of lookups.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.counters = {"hits": 0, "misses": 0, "invalidated": 0, "writes": 0}

    # -- paths ---------------------------------------------------------
    @property
    def _shards_dir(self) -> pathlib.Path:
        return self.root / "shards"

    @property
    def _index_path(self) -> pathlib.Path:
        return self.root / "index.json"

    def shard_path(self, fingerprint: str) -> pathlib.Path:
        return self._shards_dir / f"{fingerprint}.json"

    # -- index ---------------------------------------------------------
    def _load_index(self) -> dict:
        try:
            payload = json.loads(self._index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return self._rebuild_index()
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT
            or not isinstance(payload.get("logical"), dict)
        ):
            return self._rebuild_index()
        return payload

    def _rebuild_index(self) -> dict:
        """Recover the index by scanning shard files (latest = highest
        write sequence); an empty or missing store yields an empty
        index rather than an error."""
        logical: dict[str, dict] = {}
        sequence = 0
        for payload in self._iter_shards():
            sequence = max(sequence, int(payload.get("sequence", 0)))
            lid = payload.get("logical")
            current = logical.get(lid)
            if current is None or payload.get("sequence", 0) > current["sequence"]:
                logical[lid] = {
                    "fingerprint": payload["fingerprint"],
                    "sequence": int(payload.get("sequence", 0)),
                }
        index = {
            "format": STORE_FORMAT,
            "version": VERSION,
            "sequence": sequence,
            "logical": logical,
        }
        if self.root.exists():
            self._write_json(self._index_path, index)
        return index

    def _iter_shards(self):
        try:
            paths = sorted(self._shards_dir.glob("*.json"))
        except OSError:
            return
        for path in paths:
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(payload, dict)
                and payload.get("format") == SHARD_FORMAT
                and payload.get("fingerprint") == path.stem
            ):
                yield payload

    def _write_json(self, path: pathlib.Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- read/write ----------------------------------------------------
    def contains(self, fingerprint: str) -> bool:
        """Whether a shard with this content address exists (does not
        touch the counters -- it is the planner's peek, not a lookup)."""
        return self.shard_path(fingerprint).is_file()

    def fetch(self, fingerprint: str, key: dict) -> list | None:
        """Records of the shard at ``fingerprint``, or ``None``.

        A miss consults the index to classify itself: ``invalidated``
        when another generation of the same slice is stored (the
        module was edited), ``misses`` when the slice is cold.
        """
        path = self.shard_path(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            payload = None
        if (
            isinstance(payload, dict)
            and payload.get("format") == SHARD_FORMAT
            and payload.get("fingerprint") == fingerprint
        ):
            self.counters["hits"] += 1
            return payload["records"]
        lid = logical_id_of(key)
        latest = self._load_index()["logical"].get(lid)
        if latest is not None and latest.get("fingerprint") != fingerprint:
            self.counters["invalidated"] += 1
        else:
            self.counters["misses"] += 1
        return None

    def put(self, fingerprint: str, key: dict, records: list) -> bool:
        """Store one shard's records under its content address.

        Idempotent: an existing shard is left untouched (content
        addressing makes overwrites meaningless).  Returns whether a
        new shard file was written.
        """
        if self.contains(fingerprint):
            return False
        index = self._load_index()
        sequence = int(index.get("sequence", 0)) + 1
        lid = logical_id_of(key)
        self._write_json(
            self.shard_path(fingerprint),
            {
                "format": SHARD_FORMAT,
                "version": VERSION,
                "fingerprint": fingerprint,
                "logical": lid,
                "sequence": sequence,
                "key": key,
                "records": records,
            },
        )
        index["sequence"] = sequence
        index["logical"][lid] = {
            "fingerprint": fingerprint,
            "sequence": sequence,
        }
        self._write_json(self._index_path, index)
        self.counters["writes"] += 1
        return True

    # -- inspection / maintenance --------------------------------------
    def entries(self) -> list[StoreEntry]:
        """Metadata of every stored shard, stale generations included."""
        index = self._load_index()["logical"]
        entries = []
        for payload in self._iter_shards():
            key = payload.get("key") or {}
            lid = payload.get("logical")
            latest = index.get(lid, {}).get("fingerprint")
            entries.append(
                StoreEntry(
                    fingerprint=payload["fingerprint"],
                    logical_id=lid,
                    sequence=int(payload.get("sequence", 0)),
                    target=str(key.get("target", "?")),
                    module=str(key.get("config", {}).get("module", "?")),
                    pairs=len(payload.get("key", {}).get("pairs", ())),
                    records=len(payload.get("records", ())),
                    stale=latest != payload["fingerprint"],
                )
            )
        return entries

    def stale_entries(self) -> list[StoreEntry]:
        """Shards superseded by a newer generation of their slice."""
        return [entry for entry in self.entries() if entry.stale]

    def gc(self, dry_run: bool = False) -> list[str]:
        """Remove stale shard generations; returns their fingerprints.

        Live shards (each slice's latest generation) are never
        touched, so a delta run after ``gc()`` behaves identically.
        """
        from repro import observability as obs
        from repro.observability import names

        with obs.span(names.STORE_GC, root=str(self.root)) as span:
            stale = self.stale_entries()
            if not dry_run:
                for entry in stale:
                    try:
                        self.shard_path(entry.fingerprint).unlink()
                    except OSError:
                        pass
            span.count(names.COUNTER_STORE_STALE, len(stale))
        return [entry.fingerprint for entry in stale]

    def summary(self) -> dict:
        """One-shot inspection payload for ``repro store inspect``."""
        entries = self.entries()
        slices: dict[tuple[str, str], dict] = {}
        for entry in entries:
            row = slices.setdefault(
                (entry.target, entry.module),
                {
                    "target": entry.target,
                    "module": entry.module,
                    "shards": 0,
                    "records": 0,
                    "stale": 0,
                },
            )
            row["shards"] += 1
            row["records"] += entry.records
            row["stale"] += int(entry.stale)
        return {
            "format": STORE_FORMAT,
            "version": VERSION,
            "root": str(self.root),
            "shards": len(entries),
            "stale": sum(1 for e in entries if e.stale),
            "records": sum(e.records for e in entries),
            "slices": [slices[label] for label in sorted(slices)],
        }

"""Predicate compilation: lowering the AST to fast evaluators.

``Predicate.evaluate`` walks the AST per state and ``evaluate_rows``
walks it per batch with a dict lookup per atom; both are fine offline
but dominate the cost of a deployed detector.  This module lowers the
predicate algebra once, ahead of serving, into:

* a **batch evaluator**: a closure tree over NumPy column views with
  the comparison operator specialised at lowering time (no AST walk,
  no per-atom branching at evaluation time);
* a **scalar closure**: generated Python source run through
  :func:`compile` -- each variable is read once via
  :func:`repro.runtime.pack.state_value` and the comparisons are plain
  expressions, so per-state checks skip the interpreter's dispatch.

Both forms preserve the algebra's missing/NaN semantics (comparisons
on a missing or NaN variable are ``False``, including ``!=``, which is
lowered to ``< or >`` so NaN cannot sneak through).

Compilation never fails: atoms outside the core algebra (ordering
invariants, majority votes, user subclasses) and any lowering whose
self-check disagrees with the interpreted path fall back to the
interpreted evaluators, flagged via ``CompiledPredicate.mode`` and
``fallback_reason`` so the metrics layer can report which detectors
run slow.

Before lowering, the predicate is run through the static simplifier
(:func:`repro.analysis.simplify.simplify_predicate`, disable with
``simplify=False``): the *lowered* form is the provably-equivalent
canonical predicate, while ``CompiledPredicate.predicate`` stays the
original.  The self-check battery is built from -- and compared
against -- the **original** interpreted predicate, so it doubles as an
independent equivalence check of the simplification itself.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Callable, Mapping

import numpy as np

from repro.analysis.simplify import simplify_predicate
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)
from repro.runtime.pack import build_index, pack_states, state_value

__all__ = ["CompiledPredicate", "compile_predicate"]

_NAN = float("nan")


class _Unsupported(Exception):
    """Internal: the predicate contains an atom we cannot lower."""


@dataclasses.dataclass
class CompiledPredicate:
    """A predicate lowered for serving.

    ``mode`` is ``"compiled"`` when both the batch and scalar lowered
    forms are in use, ``"interpreted"`` when evaluation fell back to
    the AST walk (``fallback_reason`` says why).  Either way the
    observable behaviour is identical to ``Predicate.evaluate`` /
    ``Predicate.evaluate_rows``.
    """

    predicate: Predicate
    mode: str
    scalar_source: str | None
    _scalar: Callable[[Mapping[str, object]], bool]
    _batch: Callable[[dict[str, np.ndarray], int], np.ndarray] | None
    fallback_reason: str | None = None
    #: The provably-equivalent predicate actually lowered (the original
    #: when simplification was disabled or changed nothing).  Batch
    #: packing only needs *its* variables.
    lowered: Predicate = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.lowered is None:
            self.lowered = self.predicate

    @property
    def is_compiled(self) -> bool:
        return self.mode == "compiled"

    def evaluate(self, state: Mapping[str, object]) -> bool:
        """Scalar check, bit-identical to ``Predicate.evaluate``."""
        return self._scalar(state)

    def __call__(self, state: Mapping[str, object]) -> bool:
        return self._scalar(state)

    def evaluate_rows(
        self, x: np.ndarray, attribute_index: Mapping[str, int]
    ) -> np.ndarray:
        """Batch check, bit-identical to ``Predicate.evaluate_rows``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if self._batch is None:
            return self.predicate.evaluate_rows(x, attribute_index)
        columns = {
            name: x[:, attribute_index[name]]
            for name in self.lowered.variables()
            if name in attribute_index
        }
        return self._batch(columns, len(x))


# ----------------------------------------------------------------------
# Batch lowering: closure tree over column views
# ----------------------------------------------------------------------
def _batch_le(column: np.ndarray, value: float) -> np.ndarray:
    return column <= value


def _batch_gt(column: np.ndarray, value: float) -> np.ndarray:
    return column > value


def _batch_eq(column: np.ndarray, value: float) -> np.ndarray:
    return column == value


def _batch_ne(column: np.ndarray, value: float) -> np.ndarray:
    return ~np.isnan(column) & (column != value)


_BATCH_OPS = {"<=": _batch_le, ">": _batch_gt, "==": _batch_eq, "!=": _batch_ne}


def _lower_batch(
    predicate: Predicate,
) -> Callable[[dict[str, np.ndarray], int], np.ndarray]:
    if isinstance(predicate, TruePredicate):
        return lambda columns, n: np.ones(n, dtype=bool)
    if isinstance(predicate, FalsePredicate):
        return lambda columns, n: np.zeros(n, dtype=bool)
    if isinstance(predicate, Comparison):
        op = _BATCH_OPS[predicate.op]
        variable, value = predicate.variable, predicate.value

        def atom(columns, n, variable=variable, value=value, op=op):
            column = columns.get(variable)
            if column is None:
                return np.zeros(n, dtype=bool)
            with np.errstate(invalid="ignore"):
                return op(column, value)

        return atom
    if isinstance(predicate, (And, Or)):
        children = [_lower_batch(child) for child in predicate.children]
        if isinstance(predicate, And):

            def conjunction(columns, n, children=children):
                out = np.ones(n, dtype=bool)
                for child in children:
                    out &= child(columns, n)
                return out

            return conjunction

        def disjunction(columns, n, children=children):
            out = np.zeros(n, dtype=bool)
            for child in children:
                out |= child(columns, n)
            return out

        return disjunction
    raise _Unsupported(
        f"{type(predicate).__name__} is outside the core algebra"
    )


# ----------------------------------------------------------------------
# Scalar lowering: generated source through compile()
# ----------------------------------------------------------------------
def _scalar_expression(predicate: Predicate, names: Mapping[str, str]) -> str:
    if isinstance(predicate, TruePredicate):
        return "True"
    if isinstance(predicate, FalsePredicate):
        return "False"
    if isinstance(predicate, Comparison):
        local = names[predicate.variable]
        if predicate.op == "!=":
            # NaN-safe inequality: NaN compares False on both sides.
            return (
                f"({local} < {predicate.value!r}"
                f" or {local} > {predicate.value!r})"
            )
        return f"{local} {predicate.op} {predicate.value!r}"
    if isinstance(predicate, (And, Or)):
        if not predicate.children:
            return "True" if isinstance(predicate, And) else "False"
        joiner = " and " if isinstance(predicate, And) else " or "
        return joiner.join(
            f"({_scalar_expression(child, names)})"
            for child in predicate.children
        )
    raise _Unsupported(
        f"{type(predicate).__name__} is outside the core algebra"
    )


def _lower_scalar(
    predicate: Predicate,
) -> tuple[Callable[[Mapping[str, object]], bool], str]:
    variables = sorted(predicate.variables())
    names = {variable: f"v{i}" for i, variable in enumerate(variables)}
    reads = "".join(
        f"    {names[variable]} = _value(state, {variable!r})\n"
        for variable in variables
    )
    source = (
        "def _detector(state, _value=_value):\n"
        f"{reads}"
        f"    return bool({_scalar_expression(predicate, names)})\n"
    )
    namespace: dict[str, object] = {"_value": state_value}
    exec(compile(source, "<repro.runtime.compile>", "exec"), namespace)
    return namespace["_detector"], source  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Correctness self-check
# ----------------------------------------------------------------------
def _battery(predicate: Predicate) -> list[dict[str, object]]:
    """Deterministic states probing every threshold, NaN and absence."""
    thresholds: dict[str, set[float]] = {v: set() for v in predicate.variables()}

    def collect(node: Predicate) -> None:
        if isinstance(node, Comparison):
            thresholds.setdefault(node.variable, set()).add(node.value)
        elif isinstance(node, (And, Or)):
            for child in node.children:
                collect(child)

    collect(predicate)
    candidates: dict[str, list[float]] = {}
    for variable, values in thresholds.items():
        pool = {0.0}
        for value in values:
            pool.update((value - 1.0, value, value + 1.0))
        candidates[variable] = sorted(pool) + [_NAN]
    variables = sorted(candidates)
    states: list[dict[str, object]] = [{}, {v: _NAN for v in variables}]
    if variables:
        # Exhaust small cross-products; sample larger ones determin-
        # istically (missing-variable states included via the final
        # candidate slot).
        pools = [candidates[v] + [None] for v in variables]
        combos = itertools.product(*pools)
        total = 1
        for pool in pools:
            total *= len(pool)
        if total > 256:
            rng = np.random.default_rng(0)
            combos = (
                tuple(pool[rng.integers(len(pool))] for pool in pools)
                for _ in range(256)
            )
        for combo in combos:
            states.append(
                {
                    variable: value
                    for variable, value in zip(variables, combo)
                    if value is not None
                }
            )
    return states


def _self_check(
    predicate: Predicate,
    scalar: Callable[[Mapping[str, object]], bool],
    batch: Callable[[dict[str, np.ndarray], int], np.ndarray],
) -> str | None:
    """Compare lowered evaluators with the interpreted path.

    Returns None when bit-identical over the battery, else a reason.
    """
    states = _battery(predicate)
    expected = [bool(predicate.evaluate(state)) for state in states]
    for state, want in zip(states, expected):
        if bool(scalar(state)) != want:
            return f"scalar lowering disagrees on {state!r}"
    index = build_index(predicate.variables())
    x = pack_states(states, index)
    interpreted = predicate.evaluate_rows(x, index).astype(bool)
    columns = {name: x[:, column] for name, column in index.items()}
    compiled = np.asarray(batch(columns, len(states)), dtype=bool)
    if not np.array_equal(interpreted, compiled):
        return "batch lowering disagrees with evaluate_rows"
    # The packed-array path must also agree with the dict path: NaN
    # packing stands in for missing variables.
    if interpreted.tolist() != expected:
        return "row semantics disagree with dict semantics"
    empty = np.asarray(batch({}, len(states)), dtype=bool)
    if not np.array_equal(
        empty, predicate.evaluate_rows(x, {}).astype(bool)
    ):
        return "unknown-variable semantics disagree"
    return None


def _interpreted(predicate: Predicate, reason: str) -> CompiledPredicate:
    return CompiledPredicate(
        predicate=predicate,
        mode="interpreted",
        scalar_source=None,
        _scalar=predicate.evaluate,
        _batch=None,
        fallback_reason=reason,
    )


def compile_predicate(
    predicate: Predicate, *, check: bool = True, simplify: bool = True
) -> CompiledPredicate:
    """Lower ``predicate`` for serving.

    With ``simplify=True`` (the default) the static simplifier runs
    first and the canonical equivalent form is what gets lowered --
    fewer atoms, and often fewer variables to pack.  With
    ``check=True`` (the default) the lowered evaluators are verified
    bit-identical to the **original** interpreted predicate over a
    threshold/NaN/missing battery before being trusted; any
    disagreement -- or any atom outside the core algebra -- degrades
    to interpreted evaluation rather than failing.
    """
    lowered = predicate
    if simplify:
        try:
            lowered = simplify_predicate(predicate).simplified
        except Exception:
            lowered = predicate  # never let analysis break serving
    try:
        batch = _lower_batch(lowered)
        scalar, source = _lower_scalar(lowered)
    except _Unsupported as exc:
        if lowered is not predicate:
            # The simplifier may have exposed an opaque atom it kept
            # verbatim; the original may still fail the same way.
            return compile_predicate(predicate, check=check, simplify=False)
        return _interpreted(predicate, str(exc))
    if check:
        reason = _self_check(predicate, scalar, batch)
        if reason is not None:
            if lowered is not predicate:
                return compile_predicate(predicate, check=check, simplify=False)
            return _interpreted(predicate, f"self-check failed: {reason}")
    return CompiledPredicate(
        predicate=predicate,
        mode="compiled",
        scalar_source=source,
        _scalar=scalar,
        _batch=batch,
        fallback_reason=None,
        lowered=lowered,
    )

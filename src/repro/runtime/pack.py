"""State packing: module state dicts -> instance arrays.

The serving engine evaluates detectors over micro-batches, so incoming
states (the dicts a :class:`~repro.injection.instrument.Probe` samples)
must be packed into the ``(n, d)`` float arrays the vectorised
predicate path consumes.  Packing fixes the missing/NaN convention in
one place:

* a variable absent from a state packs as NaN;
* non-numeric values (``None``, unparseable strings) pack as NaN;
* booleans pack as 0.0/1.0, matching the extractor's encoding.

Every comparison on NaN evaluates to ``False`` in both the compiled
and interpreted paths, so NaN-as-missing keeps the predicate algebra's
"a detector cannot flag what it cannot read" semantics.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["build_index", "pack_states", "state_value"]

_NAN = float("nan")
_MISSING = object()


def state_value(state: Mapping[str, object], variable: str) -> float:
    """Read one variable as a float, NaN when missing or non-numeric.

    This is the scalar twin of :func:`pack_states`: the generated
    scalar closures evaluate comparisons against exactly this value,
    so the dict-state, generated-source and instance-array paths stay
    bit-identical.
    """
    raw = state.get(variable, _MISSING)
    if raw is _MISSING:
        return _NAN
    if isinstance(raw, bool):
        return 1.0 if raw else 0.0
    try:
        return float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return _NAN


def build_index(variables: Iterable[str]) -> dict[str, int]:
    """Deterministic variable -> column mapping (sorted by name)."""
    return {name: i for i, name in enumerate(sorted(set(variables)))}


def pack_states(
    states: Sequence[Mapping[str, object]],
    attribute_index: Mapping[str, int],
) -> np.ndarray:
    """Pack state dicts into an ``(n, d)`` float64 instance array."""
    width = (max(attribute_index.values()) + 1) if attribute_index else 0
    x = np.full((len(states), width), _NAN, dtype=np.float64)
    for row, state in enumerate(states):
        for variable, column in attribute_index.items():
            value = state_value(state, variable)
            if not math.isnan(value):
                x[row, column] = value
    return x

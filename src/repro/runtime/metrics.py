"""Runtime observability for served detectors.

DETOx-style experience (PAPERS.md) is that detector configurations are
only worth deploying when their runtime cost is continuously measured;
this module is the measuring half of the serving engine:

* per-detector **evaluation counts** (states checked), **detection
  counts** (states flagged) and **fault counts** (batches lost to a
  crashing predicate);
* per-detector **latency histograms** over fixed log-spaced buckets
  (about 18% resolution from 100 ns to ~85 s), answering p50/p95/p99
  without storing samples -- constant memory no matter the traffic;
* a plain-dict :meth:`RuntimeMetrics.report` suitable for JSON export
  or a scrape endpoint, no collector dependency.

Latencies are recorded per micro-batch (the engine's unit of work);
``per_state`` in the report divides by the states served so the two
cost views -- batch overhead and amortised per-check cost -- are both
visible.
"""

from __future__ import annotations

import bisect
import dataclasses
import math

__all__ = ["LatencyHistogram", "DetectorStats", "RuntimeMetrics"]


def _default_bounds() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: 1e-7 s .. ~85 s, ratio ~1.18."""
    bounds = []
    value = 1e-7
    while value < 100.0:
        bounds.append(value)
        value *= 1.18
    return tuple(bounds)


_BOUNDS = _default_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation."""

    __slots__ = ("bounds", "counts", "overflow", "count", "total",
                 "minimum", "maximum")

    def __init__(self, bounds: tuple[float, ...] = _BOUNDS) -> None:
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0.0 or not math.isfinite(seconds):
            return
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)
        slot = bisect.bisect_left(self.bounds, seconds)
        if slot >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[slot] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (bucket upper bound, edge-exact)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for slot, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                # Clamp the bucket bound into the observed range so
                # degenerate histograms (all samples equal) stay exact.
                return min(max(self.bounds[slot], self.minimum),
                           self.maximum)
        return self.maximum

    def snapshot(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


@dataclasses.dataclass
class DetectorStats:
    """Counters and latency for one served detector."""

    name: str
    evaluations: int = 0
    detections: int = 0
    faults: int = 0
    batches: int = 0
    latency: LatencyHistogram = dataclasses.field(
        default_factory=LatencyHistogram
    )

    def record_batch(
        self, states: int, detections: int, seconds: float
    ) -> None:
        self.batches += 1
        self.evaluations += states
        self.detections += detections
        self.latency.observe(seconds)

    def record_fault(self) -> None:
        self.faults += 1

    def snapshot(self) -> dict[str, object]:
        latency = self.latency.snapshot()
        per_state = (
            self.latency.total / self.evaluations if self.evaluations else 0.0
        )
        return {
            "evaluations": self.evaluations,
            "detections": self.detections,
            "faults": self.faults,
            "batches": self.batches,
            "detection_rate": (
                self.detections / self.evaluations if self.evaluations else 0.0
            ),
            "latency": latency,
            "per_state": per_state,
        }


class RuntimeMetrics:
    """Metrics for a fleet of served detectors."""

    def __init__(self) -> None:
        self._stats: dict[str, DetectorStats] = {}

    def stats_for(self, name: str) -> DetectorStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = DetectorStats(name)
        return stats

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def reset(self) -> None:
        self._stats.clear()

    def report(self) -> dict[str, object]:
        """Plain-dict export: per-detector snapshots plus totals."""
        detectors = {
            name: stats.snapshot()
            for name, stats in sorted(self._stats.items())
        }
        totals = {
            "evaluations": sum(s.evaluations for s in self._stats.values()),
            "detections": sum(s.detections for s in self._stats.values()),
            "faults": sum(s.faults for s in self._stats.values()),
            "batches": sum(s.batches for s in self._stats.values()),
            "seconds": sum(s.latency.total for s in self._stats.values()),
        }
        return {"detectors": detectors, "totals": totals}

"""Runtime observability for served detectors.

DETOx-style experience (PAPERS.md) is that detector configurations are
only worth deploying when their runtime cost is continuously measured;
this module is the measuring half of the serving engine:

* per-detector **evaluation counts** (states checked), **detection
  counts** (states flagged) and **fault counts** (batches lost to a
  crashing predicate);
* per-detector **latency histograms** over fixed log-spaced buckets
  (about 18% resolution from 100 ns to ~85 s), answering p50/p95/p99
  without storing samples -- constant memory no matter the traffic;
* a plain-dict :meth:`RuntimeMetrics.report` suitable for JSON export
  or a scrape endpoint, no collector dependency.

Latencies are recorded per micro-batch (the engine's unit of work);
``per_state`` in the report divides by the states served so the two
cost views -- batch overhead and amortised per-check cost -- are both
visible.

Cross-process aggregation: the multi-worker serving tier
(:mod:`repro.serving`) runs one ``RuntimeMetrics`` per evaluator
process and folds them together with :meth:`RuntimeMetrics.merge`.
Merging is **bucket-exact** -- histograms over identical bounds add
slot-by-slot, so quantiles of the merged histogram are exactly the
quantiles of the pooled samples' bucketing -- and commutative.
``to_dict``/``from_dict`` give the lossless transport form a worker
writes at exit and the supervisor reloads.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import statistics
import time
from collections.abc import Mapping, Sequence

__all__ = [
    "LatencyHistogram",
    "DetectorStats",
    "RuntimeMetrics",
    "CostCalibration",
    "calibrate_detector_cost",
]


def _default_bounds() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: 1e-7 s .. ~85 s, ratio ~1.18."""
    bounds = []
    value = 1e-7
    while value < 100.0:
        bounds.append(value)
        value *= 1.18
    return tuple(bounds)


_BOUNDS = _default_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation."""

    __slots__ = ("bounds", "counts", "overflow", "count", "total",
                 "minimum", "maximum")

    def __init__(self, bounds: tuple[float, ...] = _BOUNDS) -> None:
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0.0 or not math.isfinite(seconds):
            return
        self.count += 1
        self.total += seconds
        self.minimum = min(self.minimum, seconds)
        self.maximum = max(self.maximum, seconds)
        slot = bisect.bisect_left(self.bounds, seconds)
        if slot >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[slot] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (bucket upper bound, edge-exact)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for slot, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                # Clamp the bucket bound into the observed range so
                # degenerate histograms (all samples equal) stay exact.
                return min(max(self.bounds[slot], self.minimum),
                           self.maximum)
        return self.maximum

    def snapshot(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    @property
    def empty(self) -> bool:
        """No samples observed (bucketed, overflowed or counted)."""
        return (
            self.count == 0
            and self.overflow == 0
            and not any(self.counts)
        )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram, bucket-exact.

        Two populated histograms must share bucket bounds; counts add
        slot-by-slot, so the merged quantiles are exactly what one
        histogram observing both sample streams would report.  The
        operation is commutative: ``a.merge(b)`` and ``b.merge(a)``
        leave the two sides with identical contents.

        An **empty** side is the identity whatever its bounds: merging
        an empty ``other`` is a no-op, and an empty ``self`` adopts
        ``other``'s bounds wholesale.  This is what lets a supervisor
        fold a worker that served a detector the aggregate has not
        seen yet (the ``stats_for``-created histogram is empty) even
        when that worker used custom bounds -- a one-sided merge must
        never lose the side that has data.
        """
        if self.bounds != other.bounds:
            if other.empty:
                return self
            if self.empty:
                self.bounds = other.bounds
                self.counts = list(other.counts)
                self.overflow = other.overflow
                self.count = other.count
                self.total = other.total
                self.minimum = other.minimum
                self.maximum = other.maximum
                return self
            raise ValueError(
                "cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for slot, bucket_count in enumerate(other.counts):
            self.counts[slot] += bucket_count
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def to_dict(self) -> dict:
        """Lossless transport form (sparse bucket counts)."""
        return {
            "buckets": [
                [slot, count]
                for slot, count in enumerate(self.counts)
                if count
            ],
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        histogram = cls()
        for slot, count in payload.get("buckets", ()):
            histogram.counts[int(slot)] = int(count)
        histogram.overflow = int(payload.get("overflow", 0))
        histogram.count = int(payload.get("count", 0))
        histogram.total = float(payload.get("total", 0.0))
        minimum = payload.get("min")
        histogram.minimum = float(minimum) if minimum is not None else math.inf
        histogram.maximum = float(payload.get("max", 0.0))
        return histogram


@dataclasses.dataclass
class DetectorStats:
    """Counters and latency for one served detector."""

    name: str
    evaluations: int = 0
    detections: int = 0
    faults: int = 0
    batches: int = 0
    latency: LatencyHistogram = dataclasses.field(
        default_factory=LatencyHistogram
    )

    def record_batch(
        self, states: int, detections: int, seconds: float
    ) -> None:
        self.batches += 1
        self.evaluations += states
        self.detections += detections
        self.latency.observe(seconds)

    def record_fault(self) -> None:
        self.faults += 1

    def merge(self, other: "DetectorStats") -> "DetectorStats":
        """Fold another worker's stats for the same detector in."""
        self.evaluations += other.evaluations
        self.detections += other.detections
        self.faults += other.faults
        self.batches += other.batches
        self.latency.merge(other.latency)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "evaluations": self.evaluations,
            "detections": self.detections,
            "faults": self.faults,
            "batches": self.batches,
            "latency": self.latency.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DetectorStats":
        return cls(
            name=str(payload["name"]),
            evaluations=int(payload.get("evaluations", 0)),
            detections=int(payload.get("detections", 0)),
            faults=int(payload.get("faults", 0)),
            batches=int(payload.get("batches", 0)),
            latency=LatencyHistogram.from_dict(payload.get("latency", {})),
        )

    def snapshot(self) -> dict[str, object]:
        latency = self.latency.snapshot()
        per_state = (
            self.latency.total / self.evaluations if self.evaluations else 0.0
        )
        return {
            "evaluations": self.evaluations,
            "detections": self.detections,
            "faults": self.faults,
            "batches": self.batches,
            "detection_rate": (
                self.detections / self.evaluations if self.evaluations else 0.0
            ),
            "latency": latency,
            "per_state": per_state,
        }


class RuntimeMetrics:
    """Metrics for a fleet of served detectors."""

    def __init__(self) -> None:
        self._stats: dict[str, DetectorStats] = {}

    def stats_for(self, name: str) -> DetectorStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = DetectorStats(name)
        return stats

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def reset(self) -> None:
        self._stats.clear()

    def merge(self, other: "RuntimeMetrics") -> "RuntimeMetrics":
        """Fold another process's metrics in, per-detector.

        Names present on either side survive; shared names merge
        counter-exact and bucket-exact (see
        :meth:`LatencyHistogram.merge`).  Commutative, so a supervisor
        can fold worker reports in any completion order and always
        produce the same aggregate.
        """
        for name, stats in other._stats.items():
            self.stats_for(name).merge(stats)
        return self

    def to_dict(self) -> dict:
        """Lossless transport form (`report` is the human-facing one)."""
        return {
            "stats": [
                self._stats[name].to_dict() for name in sorted(self._stats)
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RuntimeMetrics":
        metrics = cls()
        for spec in payload.get("stats", ()):
            stats = DetectorStats.from_dict(spec)
            metrics._stats[stats.name] = stats
        return metrics

    def report(self) -> dict[str, object]:
        """Plain-dict export: per-detector snapshots plus totals."""
        detectors = {
            name: stats.snapshot()
            for name, stats in sorted(self._stats.items())
        }
        totals = {
            "evaluations": sum(s.evaluations for s in self._stats.values()),
            "detections": sum(s.detections for s in self._stats.values()),
            "faults": sum(s.faults for s in self._stats.values()),
            "batches": sum(s.batches for s in self._stats.values()),
            "seconds": sum(s.latency.total for s in self._stats.values()),
        }
        return {"detectors": detectors, "totals": totals}


@dataclasses.dataclass(frozen=True)
class CostCalibration:
    """One detector's measured per-event evaluation cost.

    ``per_event_s`` is the number the portfolio optimizer budgets
    with: the **median** of ``repeats`` timed compiled-batch
    evaluations, divided by the batch size.  The median (not the mean)
    makes one descheduled repeat harmless; ``spread_s`` (max - min of
    the batch timings) is kept so a caller can see when the machine
    was too noisy to trust the number.
    """

    name: str
    per_event_s: float
    batch_s: float
    spread_s: float
    events: int
    repeats: int
    warmup: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "per_event_s": self.per_event_s,
            "batch_s": self.batch_s,
            "spread_s": self.spread_s,
            "events": self.events,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }


def calibrate_detector_cost(
    compiled,
    states: Sequence[Mapping[str, float]],
    *,
    repeats: int = 9,
    warmup: int = 2,
    name: str = "detector",
    metrics: "RuntimeMetrics | None" = None,
) -> CostCalibration:
    """Measure a compiled predicate's per-event cost over ``states``.

    Runs ``warmup`` untimed batch evaluations (populating caches and
    any lazy lowering), then ``repeats`` timed ones over the same
    packed batch, and reports the median batch time divided by the
    batch size.  When ``metrics`` is given every timed batch is also
    recorded into ``metrics.stats_for(name)``, so calibration runs
    show up in the same report as serving traffic.
    """
    import numpy as np

    if not states:
        raise ValueError("calibration needs at least one state")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    variables = sorted({key for state in states for key in state})
    index = {variable: i for i, variable in enumerate(variables)}
    x = np.full((len(states), len(variables)), np.nan, dtype=np.float64)
    for row, state in enumerate(states):
        for variable, value in state.items():
            x[row, index[variable]] = float(value)
    for _ in range(warmup):
        compiled.evaluate_rows(x, index)
    timings = []
    detections = 0
    for _ in range(repeats):
        start = time.perf_counter()
        flags = compiled.evaluate_rows(x, index)
        elapsed = time.perf_counter() - start
        timings.append(elapsed)
        detections = int(np.count_nonzero(flags))
        if metrics is not None:
            metrics.stats_for(name).record_batch(
                len(states), detections, elapsed
            )
    batch_s = statistics.median(timings)
    return CostCalibration(
        name=name,
        per_event_s=batch_s / len(states),
        batch_s=batch_s,
        spread_s=max(timings) - min(timings),
        events=len(states),
        repeats=repeats,
        warmup=warmup,
    )

"""Streaming detector evaluation with micro-batching.

A deployed detector sees one module state at a time, but the compiled
batch evaluators only pay off over arrays; the engine bridges the two:

* ``submit`` buffers incoming states and evaluates a micro-batch once
  ``batch_size`` states are pending (``flush`` drains a partial
  batch); ``evaluate_stream`` wraps the same loop around any iterable
  of states;
* each batch is packed **once** into an instance array over the union
  of the enabled detectors' variables, then fanned out across the
  detectors' compiled evaluators;
* detectors can be enabled/disabled at runtime (a disabled detector
  keeps its registration and metrics but is skipped);
* **error isolation**: a predicate that raises degrades to "no
  detection" for that batch -- the engine records a
  :class:`DetectorFault`, bumps the fault counter and keeps serving
  the remaining detectors; after ``max_faults`` faults a detector is
  auto-disabled (quarantined) so a persistently broken predicate
  cannot drag down every batch.

All activity lands in a :class:`~repro.runtime.metrics.RuntimeMetrics`
instance -- evaluation/detection counts and per-batch latency
histograms per detector -- and in the familiar
``Detector.evaluations``/``Detector.detections`` counters.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro import observability as obs
from repro.core.detector import Detector
from repro.runtime.compile import CompiledPredicate, compile_predicate
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.pack import build_index, pack_states

__all__ = ["BatchResult", "DetectorFault", "StreamingEngine"]


@dataclasses.dataclass(frozen=True)
class DetectorFault:
    """One isolated failure of a served detector."""

    detector: str
    batch: int
    error: str


@dataclasses.dataclass
class BatchResult:
    """Detection vectors for one evaluated micro-batch."""

    batch: int
    size: int
    flags: dict[str, np.ndarray]
    faults: tuple[DetectorFault, ...] = ()

    def any_flags(self) -> np.ndarray:
        """Union verdict: states flagged by at least one detector."""
        out = np.zeros(self.size, dtype=bool)
        for flagged in self.flags.values():
            out |= flagged
        return out

    def detections(self) -> dict[str, int]:
        return {name: int(f.sum()) for name, f in self.flags.items()}


@dataclasses.dataclass
class _Served:
    name: str
    detector: Detector
    compiled: CompiledPredicate
    enabled: bool = True
    faults: int = 0


class StreamingEngine:
    """Serve a set of compiled detectors over a stream of states."""

    def __init__(
        self,
        detectors: Sequence[Detector] = (),
        *,
        batch_size: int = 256,
        max_faults: int | None = None,
        metrics: RuntimeMetrics | None = None,
        check: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.max_faults = max_faults
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self._check = check
        self._served: dict[str, _Served] = {}
        self._pending: list[Mapping[str, object]] = []
        self._batches = 0

    @classmethod
    def from_registry(cls, registry, **kwargs) -> "StreamingEngine":
        """Serve the latest version of every detector in a registry."""
        engine = cls(**kwargs)
        for entry in registry.latest():
            engine._install(entry.name, entry.detector, entry.compiled)
        return engine

    # -- detector management -------------------------------------------
    def add(
        self,
        detector: Detector,
        name: str | None = None,
        compiled: CompiledPredicate | None = None,
    ) -> str:
        """Install a detector, compiling its predicate; returns name.

        ``compiled`` skips compilation when the caller already holds
        the lowered form (e.g. a registry entry).
        """
        name = name if name is not None else detector.name
        if compiled is None:
            compiled = compile_predicate(detector.predicate, check=self._check)
        self._install(name, detector, compiled)
        return name

    def swap(
        self,
        detector: Detector,
        name: str,
        compiled: CompiledPredicate | None = None,
    ) -> None:
        """Replace the implementation behind an installed name.

        The serving tier's hot-deploy path: the registration keeps its
        name (and so its metrics continuity) while the detector and
        compiled predicate are exchanged between micro-batches.  The
        fault count resets and the detector re-enables -- a fresh
        implementation earns a fresh quarantine budget.
        """
        served = self._require(name)
        if compiled is None:
            compiled = compile_predicate(detector.predicate, check=self._check)
        served.detector = detector
        served.compiled = compiled
        served.faults = 0
        served.enabled = True

    def _install(
        self, name: str, detector: Detector, compiled: CompiledPredicate
    ) -> None:
        if name in self._served:
            raise ValueError(f"detector {name!r} is already installed")
        self._served[name] = _Served(name, detector, compiled)

    def remove(self, name: str) -> None:
        del self._served[self._require(name).name]

    def enable(self, name: str) -> None:
        served = self._require(name)
        served.enabled = True
        served.faults = 0

    def disable(self, name: str) -> None:
        self._require(name).enabled = False

    def is_enabled(self, name: str) -> bool:
        return self._require(name).enabled

    def names(self) -> list[str]:
        return sorted(self._served)

    def enabled_names(self) -> list[str]:
        return sorted(n for n, s in self._served.items() if s.enabled)

    def _require(self, name: str) -> _Served:
        try:
            return self._served[name]
        except KeyError:
            raise KeyError(f"no detector {name!r} installed") from None

    # -- evaluation ----------------------------------------------------
    def submit(self, state: Mapping[str, object]) -> BatchResult | None:
        """Buffer one state; evaluates when a micro-batch is full."""
        self._pending.append(state)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> BatchResult | None:
        """Evaluate whatever is buffered (None when nothing pending)."""
        if not self._pending:
            return None
        states, self._pending = self._pending, []
        return self.evaluate_batch(states)

    def evaluate_stream(
        self,
        states: Iterable[Mapping[str, object]],
        batch_size: int | None = None,
    ) -> Iterator[BatchResult]:
        """Micro-batch an entire stream, yielding per-batch results."""
        size = batch_size if batch_size is not None else self.batch_size
        chunk: list[Mapping[str, object]] = []
        for state in states:
            chunk.append(state)
            if len(chunk) >= size:
                yield self.evaluate_batch(chunk)
                chunk = []
        if chunk:
            yield self.evaluate_batch(chunk)

    def evaluate_batch(
        self, states: Sequence[Mapping[str, object]]
    ) -> BatchResult:
        """Pack ``states`` once and fan out across enabled detectors."""
        served = [s for s in self._served.values() if s.enabled]
        variables: set[str] = set()
        for entry in served:
            variables |= entry.compiled.lowered.variables()
        index = build_index(variables)
        x = pack_states(states, index)
        return self.evaluate_packed(x, index)

    def evaluate_packed(
        self, x: np.ndarray, attribute_index: Mapping[str, int]
    ) -> BatchResult:
        """Fan a pre-packed ``(n, d)`` batch out across the detectors.

        The serving tier's zero-copy path: a shared-memory ingest ring
        already holds states in packed column form, so evaluation runs
        directly on the ring's NumPy view.  ``attribute_index`` must
        cover every enabled detector's variables (a missing column
        evaluates as missing/NaN, same as :func:`pack_states`); flags
        are bit-identical to :meth:`evaluate_batch` over the same
        states because both paths feed the same compiled evaluators
        with per-variable column lookups.
        """
        self._batches += 1
        batch_id = self._batches
        served = [s for s in self._served.values() if s.enabled]
        index = attribute_index
        n = len(x)
        with obs.span(
            "engine.batch",
            batch=batch_id,
            size=n,
            detectors=len(served),
        ) as batch_span:
            flags: dict[str, np.ndarray] = {}
            faults: list[DetectorFault] = []
            for entry in served:
                stats = self.metrics.stats_for(entry.name)
                started = time.perf_counter()
                try:
                    flagged = np.asarray(
                        entry.compiled.evaluate_rows(x, index), dtype=bool
                    )
                    if flagged.shape != (n,):
                        raise ValueError(
                            f"detection vector has shape {flagged.shape}, "
                            f"expected ({n},)"
                        )
                except Exception as exc:  # noqa: BLE001 -- isolation boundary
                    flagged = np.zeros(n, dtype=bool)
                    entry.faults += 1
                    stats.record_fault()
                    faults.append(
                        DetectorFault(
                            detector=entry.name,
                            batch=batch_id,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    if (
                        self.max_faults is not None
                        and entry.faults >= self.max_faults
                    ):
                        entry.enabled = False
                else:
                    elapsed = time.perf_counter() - started
                    detections = int(flagged.sum())
                    stats.record_batch(n, detections, elapsed)
                    entry.detector.evaluations += n
                    entry.detector.detections += detections
                flags[entry.name] = flagged
            batch_span.count("detections", sum(int(f.sum()) for f in flags.values()))
            batch_span.count("faults", len(faults))
        return BatchResult(
            batch=batch_id, size=n, flags=flags, faults=tuple(faults)
        )

    def report(self) -> dict[str, object]:
        """Metrics report plus per-detector serving status."""
        report = self.metrics.report()
        report["serving"] = {
            name: {
                "enabled": served.enabled,
                "mode": served.compiled.mode,
                "faults": served.faults,
                "fallback_reason": served.compiled.fallback_reason,
            }
            for name, served in sorted(self._served.items())
        }
        return report

"""Versioned detector registry: publish once, serve anywhere.

The methodology's campaigns (the offline side) and the serving engine
(the online side) meet here: a campaign **registers** a generated
detector under a name, the registry assigns a monotonically increasing
version, and a server **looks up** the latest (or a pinned) version.
Registrations are compiled on the way in (see
:mod:`repro.runtime.compile`), so lookup hands back a serving-ready
:class:`RegisteredDetector`.

Persistence builds on :mod:`repro.core.serialize`: ``save`` writes a
single JSON document (format ``repro.runtime.registry`` v1) with every
version of every detector, ``load`` rebuilds the registry -- including
recompilation -- so a server can start from a published artefact with
no access to the mining pipeline.

Publishing is statically gated (see :mod:`repro.analysis`): a detector
whose predicate has an error-grade lint finding (an unsatisfiable
clause, a provably constant predicate), or that is provably equivalent
to / implied by an already-published name, triggers the registry's
``lint_policy`` -- ``"warn"`` (default, emits :class:`RegistryWarning`),
``"reject"`` (raises :class:`RegistryError`) or ``"off"``.  ``load`` /
``from_dict`` rebuild with gating off: an artefact that was publishable
when written must stay loadable.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import warnings

from repro.analysis.lint import LintContext, Linter, Severity
from repro.analysis.redundancy import compare_predicates
from repro.core.detector import Detector
from repro.core.serialize import (
    SerializationError,
    detector_from_dict,
    detector_to_dict,
)
from repro.runtime.compile import CompiledPredicate, compile_predicate

__all__ = [
    "DetectorRegistry",
    "RegisteredDetector",
    "RegistryError",
    "RegistryWarning",
]

_FORMAT = "repro.runtime.registry"
_FORMAT_VERSION = 1

_LINT_POLICIES = ("warn", "reject", "off")


class RegistryError(KeyError):
    """Unknown detector/version, or a conflicting registration."""


class RegistryWarning(UserWarning):
    """A publish went through despite static findings (policy "warn")."""


@dataclasses.dataclass(frozen=True)
class RegisteredDetector:
    """One published (name, version) with its compiled predicate."""

    name: str
    version: int
    detector: Detector
    compiled: CompiledPredicate

    def __str__(self) -> str:
        return f"{self.name}@v{self.version} [{self.compiled.mode}]"


class DetectorRegistry:
    """In-memory registry with JSON persist/reload.

    ``lint_policy`` governs publish-time static gating: ``"warn"``
    (default), ``"reject"`` or ``"off"``; :meth:`register` can override
    it per publish.
    """

    def __init__(self, *, lint_policy: str = "warn") -> None:
        if lint_policy not in _LINT_POLICIES:
            raise ValueError(
                f"lint_policy must be one of {_LINT_POLICIES}, "
                f"got {lint_policy!r}"
            )
        self._entries: dict[str, dict[int, RegisteredDetector]] = {}
        self.lint_policy = lint_policy
        #: explicit latest pointers: only names whose serving version
        #: diverges from the numerically newest one (i.e. rollbacks).
        self._latest: dict[str, int] = {}
        #: recorded deploy actions (rollbacks), newest last.
        self.actions: list[dict] = []
        #: attached deployment plan (repro.portfolio.DeploymentPlan);
        #: when set, publishes are additionally gated by the plan lint
        #: rules (overbudget-deployment, redundant-deployment).
        self._plan = None

    # -- publishing ----------------------------------------------------
    def _publish_problems(self, name: str, detector: Detector) -> list[str]:
        """Static findings that should block (or flag) a publish:
        error-grade lint findings on the predicate, plus a proven
        equivalence/implication against the newest version of every
        *other* published name (new versions of the same name are the
        sanctioned way to supersede a detector)."""
        context = LintContext(predicates={name: detector.predicate})
        problems = [
            str(finding)
            for finding in Linter().run(context)
            if finding.severity >= Severity.ERROR
        ]
        for other in self.latest():
            if other.name == name:
                continue
            relation = compare_predicates(
                detector.predicate, other.detector.predicate
            )
            if relation.is_redundant:
                problems.append(
                    f"predicate is provably {relation.relation.replace('_', ' ')}"
                    f" {other.name}@v{other.version} ({relation.detail})"
                )
        problems.extend(
            str(finding)
            for finding in self._plan_findings()
            if finding.severity >= Severity.ERROR
        )
        return problems

    def _plan_findings(self) -> list:
        """Findings of the deployment-plan lint rules, when a plan is
        attached (empty otherwise)."""
        if self._plan is None:
            return []
        context = LintContext(
            registry=self,
            plans={getattr(self._plan, "name", "plan"): self._plan},
        )
        return Linter(
            select=["overbudget-deployment", "redundant-deployment"]
        ).run(context)

    def register(
        self,
        detector: Detector,
        name: str | None = None,
        version: int | None = None,
        *,
        check: bool = True,
        lint_policy: str | None = None,
    ) -> RegisteredDetector:
        """Publish ``detector``; returns the registered entry.

        ``version`` defaults to one past the latest published version
        of ``name`` (1 for a new name); re-publishing an existing
        (name, version) is rejected -- published versions are
        immutable by contract.  ``lint_policy`` overrides the
        registry's static-gating policy for this publish.
        """
        name = name if name is not None else detector.name
        policy = lint_policy if lint_policy is not None else self.lint_policy
        if policy not in _LINT_POLICIES:
            raise ValueError(
                f"lint_policy must be one of {_LINT_POLICIES}, got {policy!r}"
            )
        if policy != "off":
            problems = self._publish_problems(name, detector)
            if problems:
                summary = "; ".join(problems)
                if policy == "reject":
                    raise RegistryError(
                        f"refusing to publish {name}: {summary}"
                    )
                warnings.warn(
                    f"publishing {name} despite findings: {summary}",
                    RegistryWarning,
                    stacklevel=2,
                )
        versions = self._entries.setdefault(name, {})
        if version is None:
            version = max(versions, default=0) + 1
        if version < 1:
            raise RegistryError(f"version must be >= 1, got {version}")
        if version in versions:
            raise RegistryError(
                f"{name}@v{version} is already published; versions are "
                "immutable (bump the version instead)"
            )
        entry = RegisteredDetector(
            name=name,
            version=version,
            detector=detector,
            compiled=compile_predicate(detector.predicate, check=check),
        )
        versions[version] = entry
        # A fresh publish supersedes any standing rollback: the newest
        # version is what `latest` serves again.
        self._latest.pop(name, None)
        return entry

    @property
    def plan(self):
        """The attached deployment plan, or ``None``."""
        return self._plan

    def attach_plan(self, plan, *, lint_policy: str | None = None) -> None:
        """Attach a deployment plan; future publishes are gated by it.

        The plan must validate against this registry (every pinned
        ``name@version`` published), or :class:`RegistryError` is
        raised.  The plan lint rules run immediately under
        ``lint_policy`` (the registry's policy by default):
        error-grade findings reject or warn per policy, warning-grade
        findings always surface as :class:`RegistryWarning` while the
        policy is not ``"off"``.  The plan persists through
        :meth:`to_dict`/:meth:`from_dict`.
        """
        policy = lint_policy if lint_policy is not None else self.lint_policy
        if policy not in _LINT_POLICIES:
            raise ValueError(
                f"lint_policy must be one of {_LINT_POLICIES}, got {policy!r}"
            )
        unexecutable = plan.validate_against(self)
        if unexecutable:
            raise RegistryError(
                f"plan {plan.name!r} does not validate against this "
                f"registry: {'; '.join(unexecutable)}"
            )
        previous, self._plan = self._plan, plan
        if policy == "off":
            return
        findings = self._plan_findings()
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        if errors and policy == "reject":
            self._plan = previous
            raise RegistryError(
                f"refusing to attach plan {plan.name!r}: "
                + "; ".join(str(f) for f in errors)
            )
        if findings:
            warnings.warn(
                f"plan {plan.name!r} attached with findings: "
                + "; ".join(str(f) for f in findings),
                RegistryWarning,
                stacklevel=2,
            )

    def detach_plan(self):
        """Remove (and return) the attached plan, if any."""
        plan, self._plan = self._plan, None
        return plan

    def publish(
        self,
        detector: Detector,
        name: str | None = None,
        version: int | None = None,
        *,
        check: bool = True,
        lint_policy: str | None = None,
    ) -> RegisteredDetector:
        """Alias of :meth:`register` (the paper-facing verb)."""
        return self.register(
            detector, name, version, check=check, lint_policy=lint_policy
        )

    def unregister(self, name: str, version: int | None = None) -> None:
        """Retire one version, or every version when ``version=None``."""
        versions = self._entries.get(name)
        if not versions:
            raise RegistryError(f"unknown detector {name!r}")
        if version is None:
            del self._entries[name]
            self._latest.pop(name, None)
            return
        if version not in versions:
            raise RegistryError(f"unknown version {name}@v{version}")
        del versions[version]
        if self._latest.get(name) == version:
            del self._latest[name]
        if not versions:
            del self._entries[name]
            self._latest.pop(name, None)

    def rollback(self, name: str) -> RegisteredDetector:
        """Re-point ``latest`` at the version before the one serving.

        The serving version stays published (versions are immutable);
        ``latest``/:meth:`lookup` simply resolve to its predecessor,
        and the action is recorded on :attr:`actions` so a registry
        snapshot carries its own deploy history.  Repeated rollbacks
        walk further back; :meth:`register`-ing a new version clears
        the pointer (a fresh publish is the roll-forward).  Raises
        :class:`RegistryError` when there is no prior version to
        return to.
        """
        versions = self._entries.get(name)
        if not versions:
            raise RegistryError(f"unknown detector {name!r}")
        current = self.latest_version(name)
        prior_candidates = [v for v in versions if v < current]
        if not prior_candidates:
            raise RegistryError(
                f"cannot roll back {name}@v{current}: no prior version"
            )
        prior = max(prior_candidates)
        self._latest[name] = prior
        self.actions.append(
            {"action": "rollback", "name": name,
             "from_version": current, "to_version": prior}
        )
        return self.lookup(name)

    # -- lookup --------------------------------------------------------
    def lookup(
        self, name: str, version: int | None = None
    ) -> RegisteredDetector:
        """Fetch a published detector; latest version by default."""
        versions = self._entries.get(name)
        if not versions:
            raise RegistryError(f"unknown detector {name!r}")
        if version is None:
            version = self._latest.get(name, max(versions))
        try:
            return versions[version]
        except KeyError:
            raise RegistryError(
                f"unknown version {name}@v{version}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def versions(self, name: str) -> list[int]:
        versions = self._entries.get(name)
        if not versions:
            raise RegistryError(f"unknown detector {name!r}")
        return sorted(versions)

    def latest_version(self, name: str) -> int:
        """The version ``latest`` resolves to (rollback-aware)."""
        versions = self._entries.get(name)
        if not versions:
            raise RegistryError(f"unknown detector {name!r}")
        return self._latest.get(name, max(versions))

    def latest(self) -> list[RegisteredDetector]:
        """The newest version of every published name."""
        return [self.lookup(name) for name in self.names()]

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def __iter__(self):
        for name in self.names():
            for version in self.versions(name):
                yield self._entries[name][version]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "detectors": [
                {
                    "name": entry.name,
                    "version": entry.version,
                    "detector": detector_to_dict(entry.detector),
                }
                for entry in self
            ],
        }
        # Optional keys, omitted when empty so pre-rollback artefacts
        # stay byte-for-byte what they were.
        if self._latest:
            payload["latest"] = dict(sorted(self._latest.items()))
        if self.actions:
            payload["actions"] = list(self.actions)
        if self._plan is not None:
            payload["plan"] = self._plan.to_dict()
        return payload

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the registry as one JSON document."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def from_dict(cls, payload: dict, *, check: bool = True) -> "DetectorRegistry":
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise SerializationError(
                f"not a {_FORMAT} document: {payload!r:.80}"
            )
        if payload.get("version") != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported registry format version "
                f"{payload.get('version')!r}"
            )
        registry = cls()
        entries = payload.get("detectors")
        if not isinstance(entries, list):
            raise SerializationError("registry payload needs 'detectors'")
        for spec in entries:
            try:
                name = spec["name"]
                version = int(spec["version"])
                detector = detector_from_dict(spec["detector"])
            except (TypeError, KeyError, ValueError) as exc:
                raise SerializationError(
                    f"bad registry entry: {exc}"
                ) from exc
            # Gating off: a saved artefact must stay loadable even if
            # the lint rules have tightened since it was published.
            registry.register(detector, name=name, version=version,
                              check=check, lint_policy="off")
        latest = payload.get("latest") or {}
        if not isinstance(latest, dict):
            raise SerializationError("registry 'latest' must be a mapping")
        for name, version in latest.items():
            try:
                version = int(version)
            except (TypeError, ValueError) as exc:
                raise SerializationError(
                    f"bad latest pointer for {name!r}: {exc}"
                ) from exc
            if name not in registry._entries or (
                version not in registry._entries[name]
            ):
                raise SerializationError(
                    f"latest pointer {name}@v{version} is not published"
                )
            registry._latest[name] = version
        actions = payload.get("actions") or []
        if not isinstance(actions, list):
            raise SerializationError("registry 'actions' must be a list")
        registry.actions = [dict(action) for action in actions]
        plan_spec = payload.get("plan")
        if plan_spec is not None:
            from repro.portfolio.plan import DeploymentPlan

            try:
                plan = DeploymentPlan.from_dict(plan_spec)
            except (TypeError, KeyError, ValueError) as exc:
                raise SerializationError(f"bad registry plan: {exc}") from exc
            # Gating off, like the detector entries: an artefact that
            # was publishable when written must stay loadable.
            registry.attach_plan(plan, lint_policy="off")
        return registry

    @classmethod
    def load(
        cls, path: str | pathlib.Path, *, check: bool = True
    ) -> "DetectorRegistry":
        """Rebuild (and recompile) a registry from ``save`` output."""
        text = pathlib.Path(path).read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(payload, check=check)

"""Detector serving: the deployment half of the methodology.

The paper defines a detector as "a program component that asserts the
validity of a predicate in a program at a given location" (Section I).
:mod:`repro.core` generates those predicates offline; this package is
what a production system runs:

* :mod:`repro.runtime.compile` -- lowers a
  :class:`~repro.core.predicate.Predicate` AST into a NumPy-vectorised
  batch evaluator and a generated-Python scalar closure, with a
  correctness-checked fallback to interpreted evaluation;
* :mod:`repro.runtime.registry` -- versioned publish/lookup/persist of
  detectors, built on :mod:`repro.core.serialize`, so the team that
  mines a detector is decoupled from the service that installs it;
* :mod:`repro.runtime.engine` -- a streaming evaluation engine that
  micro-batches incoming module states into instance arrays, fans out
  across the registered detectors, isolates per-detector faults (a
  crashing predicate degrades to "no detection", never takes the
  engine down) and supports enable/disable at runtime;
* :mod:`repro.runtime.metrics` -- per-detector evaluation counts,
  detection counts and latency histograms (p50/p95/p99), exported as
  a plain-dict report for scraping;
* :mod:`repro.runtime.pack` -- dict-state to instance-array packing
  with the predicate algebra's missing/NaN semantics.

The compiled and interpreted paths are bit-identical by construction
(and re-checked at compile time); ``repro-experiments runtime``
measures the resulting throughput gap on the Table II detectors.
"""

from repro.runtime.compile import CompiledPredicate, compile_predicate
from repro.runtime.engine import BatchResult, DetectorFault, StreamingEngine
from repro.runtime.metrics import (
    DetectorStats,
    LatencyHistogram,
    RuntimeMetrics,
)
from repro.runtime.pack import build_index, pack_states, state_value
from repro.runtime.registry import (
    DetectorRegistry,
    RegisteredDetector,
    RegistryError,
)

__all__ = [
    "BatchResult",
    "CompiledPredicate",
    "DetectorFault",
    "DetectorRegistry",
    "DetectorStats",
    "LatencyHistogram",
    "RegisteredDetector",
    "RegistryError",
    "RuntimeMetrics",
    "StreamingEngine",
    "build_index",
    "compile_predicate",
    "pack_states",
    "state_value",
]

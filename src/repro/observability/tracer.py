"""Span-based structured tracing for the whole pipeline.

The methodology's cost question -- where does a campaign or a
refinement sweep actually spend its time? -- is exactly what ZOFI and
DETOx treat as first-class when judging detector configurations, and
answering it needs more than the runtime's latency histograms.  This
module is the measurement substrate:

* a **span** is one timed region of work (a refinement trial, a CV
  fold, an engine micro-batch) with a name, monotonic start/duration,
  free-form attributes and additive counters;
* spans **nest**: a thread-local stack links each span to its parent,
  so a trace is a forest of per-process trees (a worker's spans root
  at its task span);
* the **active tracer** is process-global.  The default is a shared
  :data:`NULL_TRACER` whose spans are a single reusable no-op object,
  so instrumented code pays one call and no allocation when tracing is
  off -- near-zero cost, and *bit-identical results either way* is
  part of the contract (tracing only reads clocks; it never touches an
  RNG or a result value).

Clocks: durations come from :func:`time.perf_counter_ns` (monotonic);
span starts are anchored to :func:`time.time_ns` captured once per
tracer, so traces from different processes land on one comparable
timeline while staying monotonic within a process.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "span",
    "count",
    "enabled",
]


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One completed span, ready for export.

    ``start_ns`` is wall-anchored (epoch nanoseconds derived from the
    tracer's monotonic anchor); ``duration_ns`` is purely monotonic.
    ``span_id`` is unique within ``pid``, so ``(pid, span_id)`` names a
    span globally and ``(pid, parent_id)`` its parent.
    """

    name: str
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    start_ns: int
    duration_ns: int
    attributes: dict
    counters: dict

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        return {
            "k": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start": self.start_ns,
            "dur": self.duration_ns,
            "attrs": self.attributes,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            span_id=int(payload["id"]),
            parent_id=(
                int(payload["parent"]) if payload.get("parent") is not None else None
            ),
            pid=int(payload["pid"]),
            tid=int(payload["tid"]),
            start_ns=int(payload["start"]),
            duration_ns=int(payload["dur"]),
            attributes=dict(payload.get("attrs") or {}),
            counters=dict(payload.get("counters") or {}),
        )


def _sanitize(value: object) -> object:
    """Clamp an attribute value to something JSON-serialisable."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Journals are written with allow_nan=False; non-finite floats
        # become their repr rather than poisoning the whole line.
        return value if math.isfinite(value) else repr(value)
    return str(value)


class Span:
    """A live (open) span; use as a context manager."""

    __slots__ = (
        "name", "attributes", "counters", "span_id", "parent_id",
        "_tracer", "_start_perf", "record",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.counters: dict[str, float] = {}
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self._tracer = tracer
        self._start_perf = 0
        self.record: SpanRecord | None = None

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = _sanitize(value)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to one of the span's additive counters."""
        self.counters[name] = self.counters.get(name, 0) + value

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._start_perf = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter_ns() - self._start_perf
        tracer = self._tracer
        stack = tracer._stack()
        # Tolerate exotic exits (generators finalised out of order):
        # drop everything above this span rather than corrupting parents.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        self.record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            pid=tracer.pid,
            tid=threading.get_native_id(),
            start_ns=tracer._time_anchor + (self._start_perf - tracer._perf_anchor),
            duration_ns=duration,
            attributes=self.attributes,
            counters=self.counters,
        )
        tracer._finish(self.record)


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def count(self, name: str, value: float = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a near-free no-op."""

    __slots__ = ()

    pid = -1
    worker_spec = None

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        pass

    def current(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer: spans buffer in memory or stream to a sink.

    ``sink`` is called with each completed :class:`SpanRecord`; when
    omitted, records accumulate on :attr:`spans` (the in-memory form
    tests and the overhead benchmark use).  ``worker_spec`` advertises
    where worker processes should write their shard-local traces (see
    :func:`repro.observability.context.export_spec`).
    """

    def __init__(self, sink=None, worker_spec=None) -> None:
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.sink = sink
        self.worker_spec = worker_spec
        self.pid = os.getpid()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._time_anchor = time.time_ns()
        self._perf_anchor = time.perf_counter_ns()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes) -> Span:
        return Span(self, name, {k: _sanitize(v) for k, v in attributes.items()})

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def count(self, name: str, value: float = 1) -> None:
        """Add to the innermost open span's counters, else the tracer's."""
        current = self.current()
        if current is not None:
            current.count(name, value)
        else:
            self.counters[name] = self.counters.get(name, 0) + value

    def _finish(self, record: SpanRecord) -> None:
        if self.sink is not None:
            self.sink(record)
        else:
            self.spans.append(record)


# ----------------------------------------------------------------------
# The process-global active tracer
# ----------------------------------------------------------------------
_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process's active tracer (the shared no-op by default)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (``None`` restores the no-op); returns the old one."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **attributes):
    """Open a span on the active tracer (no-op while tracing is off)."""
    return _active.span(name, **attributes)


def count(name: str, value: float = 1) -> None:
    """Bump a counter on the active tracer's innermost open span."""
    _active.count(name, value)


def enabled() -> bool:
    """Whether a recording tracer is active in this process."""
    return _active is not NULL_TRACER


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Activate an in-memory tracer for the duration of the block."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        global _active
        _active = previous

"""Unified observability: tracing and profiling across the pipeline.

The four subsystems of the reproduction -- injection campaigns, the
Step 2-4 mining grid, orchestration, and the runtime serving engine --
are instrumented with one span-based structured tracer:

* :mod:`~repro.observability.tracer` -- spans (context-manager API,
  monotonic clocks, parent/child nesting, attributes and counters),
  the process-global active tracer, and the shared no-op default that
  makes instrumentation near-free when tracing is off;
* :mod:`~repro.observability.journal` -- append-only JSONL trace
  journal (torn-tail tolerant, like the orchestration checkpoint
  journal) plus the deterministic worker-shard merge;
* :mod:`~repro.observability.context` -- process-safe activation:
  ``tracing_to`` for the main process, ``TraceSpec``/``ensure_worker``
  for pool workers writing shard-local traces;
* :mod:`~repro.observability.export` -- Chrome trace-event JSON, so a
  refine sweep opens in ``about:tracing``/Perfetto;
* :mod:`~repro.observability.summary` -- per-phase totals, per-name
  self-time and counter rollups (``repro trace summarize``).

Contract: results are **bit-identical with tracing on or off** -- the
tracer reads clocks and writes journals; it never touches an RNG, a
dataset, or a result value.  See ``docs/observability.md``.
"""

from repro.observability import names
from repro.observability.context import (
    TraceSpec,
    ensure_worker,
    export_spec,
    tracing_to,
)
from repro.observability.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observability.journal import (
    TraceJournal,
    load_trace,
    merge_worker_traces,
    sort_spans,
)
from repro.observability.summary import (
    NameStats,
    TraceSummary,
    render_summary,
    summarize,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    count,
    enabled,
    get_tracer,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "names",
    "Span",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "tracing_to",
    "span",
    "count",
    "enabled",
    "TraceSpec",
    "export_spec",
    "ensure_worker",
    "TraceJournal",
    "load_trace",
    "merge_worker_traces",
    "sort_spans",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "summarize",
    "render_summary",
    "TraceSummary",
    "NameStats",
]

"""Chrome trace-event export: open a refine sweep in Perfetto.

Serialises a span list into the Trace Event Format's JSON object form
(``{"traceEvents": [...]}``) using complete events (``"ph": "X"``):
one event per span with microsecond ``ts``/``dur``, the span's
``pid``/``tid``, and its attributes and counters under ``args``.
Timestamps are rebased to the earliest span so the viewer opens at
t=0; per-process metadata events name each process, so a parallel
refine sweep shows the main process and every worker as separate
tracks.

The companion :func:`validate_chrome_trace` enforces the structural
subset of the format this exporter targets (well-formed ``ph``, ``ts``
and ``dur`` numbers, integer ``pid``/``tid``); it exists so the unit
tests can prove every export is loadable before anyone pays the cost
of opening a browser.
"""

from __future__ import annotations

import json
import pathlib

from repro.observability.journal import sort_spans
from repro.observability.tracer import SpanRecord

__all__ = ["chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

#: Event phases this exporter emits (complete events + metadata).
_EMITTED_PHASES = ("X", "M")


def chrome_trace(spans: list[SpanRecord]) -> dict:
    """Build the Trace Event Format JSON object for ``spans``."""
    ordered = sort_spans(spans)
    base_ns = ordered[0].start_ns if ordered else 0
    events: list[dict] = []
    for pid in sorted({record.pid for record in ordered}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for record in ordered:
        args: dict = dict(record.attributes)
        for name, value in record.counters.items():
            args[f"counter.{name}"] = value
        events.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": (record.start_ns - base_ns) / 1e3,
                "dur": record.duration_ns / 1e3,
                "pid": record.pid,
                "tid": record.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[SpanRecord], path) -> int:
    """Write the export to ``path``; returns the event count."""
    payload = chrome_trace(spans)
    validate_chrome_trace(payload)
    pathlib.Path(path).write_text(
        json.dumps(payload, separators=(",", ":"), allow_nan=False),
        encoding="utf-8",
    )
    return len(payload["traceEvents"])


def validate_chrome_trace(payload: object) -> int:
    """Check ``payload`` against the trace-event structural schema.

    Raises :class:`ValueError` naming the first malformed event;
    returns the number of events validated.  The checks cover what
    ``about:tracing``/Perfetto require to load a file: a
    ``traceEvents`` list whose entries carry a string ``name``, a
    known ``ph``, integer ``pid``/``tid``, and -- for duration-bearing
    phases -- finite, non-negative numeric ``ts`` and ``dur``.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object with 'traceEvents'")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be objects")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing or empty 'name'")
        phase = event.get("ph")
        if phase not in _EMITTED_PHASES:
            raise ValueError(f"{where}: unexpected phase {phase!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int) or isinstance(
                event.get(field), bool
            ):
                raise ValueError(f"{where}: {field!r} must be an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or value != value
                    or value < 0
                ):
                    raise ValueError(
                        f"{where}: {field!r} must be a non-negative number"
                    )
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
    return len(events)

"""Append-only JSONL trace journal, torn-tail tolerant.

The trace journal follows the same durability contract as the
orchestration checkpoint journal (:mod:`repro.orchestration.journal`):

* one JSON line per record, appended and flushed as each span
  completes, so a process killed mid-flight keeps every span finished
  so far;
* a torn final line (the kill itself) -- or any other unparseable
  line -- is skipped on load; the surviving records are exactly the
  spans that were durably written;
* ``meta`` records carry per-process context (format version, wall
  anchor); the **last** meta per pid wins, so a journal reused across
  runs describes the run that wrote last.

Worker processes write *shard-local* journals (``worker-<pid>.jsonl``
inside a spill directory) rather than contending on one file;
:func:`merge_worker_traces` folds them back into the main journal in a
deterministic order -- sorted by ``(start_ns, pid, span_id)`` -- so
the merged trace is byte-stable for a given set of shard files no
matter how the scheduler interleaved the workers.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.observability.tracer import SpanRecord

__all__ = ["TraceJournal", "load_trace", "merge_worker_traces"]

_FORMAT = "repro.observability.trace"
_VERSION = 1


class TraceJournal:
    """An append-only JSONL file of span and meta records."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def _append_line(self, payload: dict) -> None:
        line = json.dumps(payload, separators=(",", ":"), allow_nan=False)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fp:
            fp.write(line + "\n")
            fp.flush()

    def append_meta(self, **extra) -> None:
        """Record per-process context (last meta per pid wins on load)."""
        self._append_line(
            {
                "k": "meta",
                "format": _FORMAT,
                "version": _VERSION,
                "pid": os.getpid(),
                **extra,
            }
        )

    def append_span(self, record: SpanRecord) -> None:
        """Durably record one completed span."""
        self._append_line(record.to_dict())

    def append_counters(self, counters: dict) -> None:
        """Record tracer-level (outside-any-span) counter totals."""
        if counters:
            self._append_line(
                {"k": "counters", "pid": os.getpid(), "counters": counters}
            )

    def load(self) -> tuple[list[SpanRecord], dict[int, dict], dict[str, float]]:
        """Spans, last-wins metas per pid, and orphan counter totals.

        Unparseable lines -- typically one torn tail line from a killed
        writer -- are skipped, as are structurally invalid records; a
        corrupted journal degrades to the spans that survived, never to
        an exception.
        """
        spans: list[SpanRecord] = []
        metas: dict[int, dict] = {}
        counters: dict[str, float] = {}
        if not self.path.exists():
            return spans, metas, counters
        with open(self.path, encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(payload, dict):
                    continue
                kind = payload.get("k")
                if kind == "span":
                    try:
                        spans.append(SpanRecord.from_dict(payload))
                    except (KeyError, TypeError, ValueError):
                        continue
                elif kind == "meta":
                    pid = payload.get("pid")
                    if isinstance(pid, int):
                        metas[pid] = payload
                elif kind == "counters":
                    extra = payload.get("counters")
                    if isinstance(extra, dict):
                        for name, value in extra.items():
                            if isinstance(value, (int, float)):
                                counters[name] = counters.get(name, 0) + value
        return spans, metas, counters

    def load_spans(self) -> list[SpanRecord]:
        """Just the spans, in deterministic merged order."""
        spans, _, _ = self.load()
        return sort_spans(spans)

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)


def sort_spans(spans: list[SpanRecord]) -> list[SpanRecord]:
    """The canonical cross-process span order: (start, pid, id)."""
    return sorted(spans, key=lambda s: (s.start_ns, s.pid, s.span_id))


def load_trace(path: str | pathlib.Path) -> list[SpanRecord]:
    """Load a trace journal (or a spill directory) as sorted spans."""
    target = pathlib.Path(path)
    if target.is_dir():
        spans: list[SpanRecord] = []
        for shard in sorted(target.glob("*.jsonl")):
            spans.extend(TraceJournal(shard).load()[0])
        return sort_spans(spans)
    return TraceJournal(target).load_spans()


def merge_worker_traces(
    journal: TraceJournal, directory: str | pathlib.Path, remove: bool = True
) -> int:
    """Fold shard-local worker journals into the main journal.

    Spans from every ``*.jsonl`` shard in ``directory`` are appended to
    ``journal`` sorted by ``(start_ns, pid, span_id)``, so the merge is
    deterministic for a given set of shard files regardless of worker
    scheduling.  Returns the number of spans merged; shard files (and
    the directory, when emptied) are deleted afterwards unless
    ``remove`` is false.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return 0
    shards = sorted(directory.glob("*.jsonl"))
    merged: list[SpanRecord] = []
    counters: dict[str, float] = {}
    metas: dict[int, dict] = {}
    for shard in shards:
        spans, shard_metas, orphans = TraceJournal(shard).load()
        merged.extend(spans)
        metas.update(shard_metas)
        for name, value in orphans.items():
            counters[name] = counters.get(name, 0) + value
    for pid in sorted(metas):
        meta = {
            k: v
            for k, v in metas[pid].items()
            if k not in ("k", "format", "version", "pid")
        }
        journal.append_meta(**{**meta, "pid": pid})
    for record in sort_spans(merged):
        journal.append_span(record)
    journal.append_counters(counters)
    if remove:
        for shard in shards:
            shard.unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:
            pass
    return len(merged)

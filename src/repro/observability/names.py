"""Canonical span and counter names across the pipeline.

Span names are the tracer's public contract: summaries group by them,
dashboards filter on them, and cross-subsystem traces only line up
when every emitter spells them the same way.  This module is the one
place they are defined; emitters import the constant instead of
retyping the string.

Phases (``phase.*``) are the top-level pipeline stages the summary
compares against the root wall clock; everything else is a nested
working span.  The serving tier (:mod:`repro.serving`) threads spans
through all three of its layers -- router (ingest/shed), ring-fed
evaluator workers (batch/deploy), and the supervisor lifecycle -- so
one trace shows an event's whole path from submit to flags.
"""

from __future__ import annotations

__all__ = [
    "PHASE_CAMPAIGN",
    "PHASE_BASELINE",
    "PHASE_REFINE",
    "PHASE_SERVE",
    "ENGINE_BATCH",
    "POOL_RUN",
    "ORCHESTRATION_TASK",
    "WORKER_START",
    "SERVE_FLUSH",
    "SERVE_DRAIN",
    "SERVE_PUBLISH",
    "SERVE_WORKER",
    "SERVE_WORKER_BATCH",
    "SERVE_DEPLOY",
    "PRUNE_PLAN",
    "PRUNE_SYNTHESIZE",
    "PRUNE_AUDIT",
    "SAMPLE_PLAN",
    "SAMPLE_ROUND",
    "SAMPLE_ESTIMATE",
    "STORE_RESOLVE",
    "STORE_SYNC",
    "STORE_GC",
    "PORTFOLIO_CANDIDATES",
    "PORTFOLIO_SOLVE",
    "PORTFOLIO_PARETO",
    "PORTFOLIO_APPLY",
    "COUNTER_SHED",
    "COUNTER_DETECTIONS",
    "COUNTER_FAULTS",
    "COUNTER_PRUNED",
    "COUNTER_AUDITED",
    "COUNTER_CONTRADICTIONS",
    "COUNTER_EXPLORED",
    "COUNTER_SELECTED",
    "COUNTER_SAMPLED_CELLS",
    "COUNTER_CONVERGED_STRATA",
    "COUNTER_STORE_HITS",
    "COUNTER_STORE_MISSES",
    "COUNTER_STORE_INVALIDATED",
    "COUNTER_STORE_WRITES",
    "COUNTER_STORE_STALE",
]

# -- pipeline phases (orchestrate.run, serve lifecycles) ---------------
PHASE_CAMPAIGN = "phase.campaign"
PHASE_BASELINE = "phase.baseline"
PHASE_REFINE = "phase.refine"
#: One serving session end-to-end: start -> ingest -> drain -> stop.
PHASE_SERVE = "phase.serve"

# -- runtime / orchestration (emitted since PR 1/3/5) ------------------
ENGINE_BATCH = "engine.batch"
POOL_RUN = "pool.run"
ORCHESTRATION_TASK = "orchestration.task"
WORKER_START = "worker.start"

# -- serving tier ------------------------------------------------------
#: Router flushing one shard's pending micro-batch into its ring
#: (carries ``shard``, ``size``; counts ``shed`` on backpressure).
SERVE_FLUSH = "serve.flush"
#: Supervisor waiting for in-flight events to clear the topology.
SERVE_DRAIN = "serve.drain"
#: Supervisor publishing a registry snapshot (hot deploy/rollback).
SERVE_PUBLISH = "serve.publish"
#: One evaluator worker's lifetime (root of the worker's span tree).
SERVE_WORKER = "serve.worker"
#: One micro-batch through a worker's StreamingEngine.
SERVE_WORKER_BATCH = "serve.worker.batch"
#: A worker swapping detector versions between micro-batches.
SERVE_DEPLOY = "serve.deploy"

# -- static injection-space pruning (repro.analysis.prune) -------------
#: Dataflow analysis + golden capture + per-point classification
#: (carries ``target``; counts ``points`` and ``pruned``).
PRUNE_PLAN = "prune.plan"
#: Merging executed records with synthesized dead/member records
#: (counts ``synthesized``).
PRUNE_SYNTHESIZE = "prune.synthesize"
#: Seeded re-injection of pruned cells against synthesized records
#: (counts ``audited`` and ``contradictions``).
PRUNE_AUDIT = "prune.audit"

# -- statistical sampling campaigns (repro.injection.sampling) ---------
#: Stratification of the (restricted) pair space into seeded draw
#: orders (carries ``target``, ``ci``; counts ``strata``, ``cells``).
SAMPLE_PLAN = "campaign.sample.plan"
#: One synchronized sampling round across every open stratum (carries
#: ``round``, ``pairs``; counts ``sampled_cells``).
SAMPLE_ROUND = "campaign.sample.round"
#: Final per-stratum interval estimation and record assembly (counts
#: ``sampled_cells`` and ``converged_strata``).
SAMPLE_ESTIMATE = "campaign.sample.estimate"

# -- compositional campaign store (repro.injection.store) --------------
#: Deriving the per-shard store keys and peeking containment during
#: campaign planning (carries ``target``; counts ``shards`` and
#: ``store_hits`` for the fully-stored fast path decision).
STORE_RESOLVE = "campaign.store.resolve"
#: Post-run reconciliation of one campaign against its store (carries
#: ``target``, ``root``; counts ``store_hits``/``store_misses``/
#: ``store_invalidated``/``store_writes`` deltas of the run).
STORE_SYNC = "campaign.store.sync"
#: Removing stale shard generations (counts ``store_stale``).
STORE_GC = "campaign.store.gc"

# -- detector portfolio optimizer (repro.portfolio) --------------------
#: Pooled candidate assembly across datasets (carries ``datasets``,
#: ``scale``).
PORTFOLIO_CANDIDATES = "portfolio.candidates"
#: One knapsack solve (carries ``solver``, ``candidates``; sets
#: ``selected``; the exact solver counts ``explored`` subtrees).
PORTFOLIO_SOLVE = "portfolio.solve"
#: One budget-axis sweep producing the coverage-vs-overhead front.
PORTFOLIO_PARETO = "portfolio.pareto"
#: Applying a deployment plan through the serving topology.
PORTFOLIO_APPLY = "portfolio.apply"

# -- counter names -----------------------------------------------------
COUNTER_SHED = "shed"
COUNTER_DETECTIONS = "detections"
COUNTER_FAULTS = "faults"
#: Injection points (variable x bit) skipped by a prune plan.
COUNTER_PRUNED = "pruned"
#: Pruned cells re-injected for real by the audit pass.
COUNTER_AUDITED = "audited"
#: Audited cells whose real outcome contradicted the synthesized one.
COUNTER_CONTRADICTIONS = "contradictions"
#: Branch-and-bound subtrees visited by the exact portfolio solver.
COUNTER_EXPLORED = "explored"
#: Detectors chosen by a portfolio solve.
COUNTER_SELECTED = "selected"
#: Cells (variable x bit x time x test case) executed by a sampling
#: campaign.
COUNTER_SAMPLED_CELLS = "sampled_cells"
#: Strata whose early-stop rule fired (every class interval at or
#: below the target half-width).
COUNTER_CONVERGED_STRATA = "converged_strata"
#: Campaign shards answered by the content-addressed store.
COUNTER_STORE_HITS = "store_hits"
#: Store lookups for slices no generation of which is stored (cold).
COUNTER_STORE_MISSES = "store_misses"
#: Store lookups for slices whose stored generation was superseded by
#: a module/failure-spec edit (the delta a compositional run re-runs).
COUNTER_STORE_INVALIDATED = "store_invalidated"
#: New shard files written to the store this run.
COUNTER_STORE_WRITES = "store_writes"
#: Stale (superseded) shard generations seen by gc/lint.
COUNTER_STORE_STALE = "store_stale"

"""Aggregated trace summaries: per-phase totals, self-time, counters.

A raw trace answers "what happened when"; the summary answers the
cost question directly:

* **per-name aggregation** -- count, total, self-time (total minus the
  time attributed to direct children), min/max per span name;
* **phases** -- spans named ``phase.<name>`` are the pipeline's
  top-level stages (campaign, baseline, refine, ...); the summary
  reports their totals and what fraction of the root span's wall
  clock they cover, which is the acceptance check for the
  instrumentation itself (phases should account for ~all of a run);
* **counter rollups** -- additive counters (cache hits/misses,
  detections, records) summed per span name and overall.

Self-time is computed within a process: a worker's spans root at its
own task span, and the scheduler overhead between a pool's ``run``
span and its workers' task spans shows up as the pool span's
self-time.
"""

from __future__ import annotations

import dataclasses

from repro.observability.tracer import SpanRecord

__all__ = ["NameStats", "TraceSummary", "summarize", "render_summary"]


@dataclasses.dataclass
class NameStats:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    counters: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "counters": dict(sorted(self.counters.items())),
        }


@dataclasses.dataclass
class TraceSummary:
    """The aggregated view of one trace."""

    names: dict[str, NameStats]
    phases: dict[str, float]
    counters: dict[str, float]
    wall_s: float
    root: str | None
    span_count: int

    @property
    def phase_total_s(self) -> float:
        return sum(self.phases.values())

    @property
    def phase_coverage(self) -> float:
        """Fraction of the root span's wall clock the phases explain."""
        return self.phase_total_s / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "spans": self.span_count,
            "wall_s": self.wall_s,
            "root": self.root,
            "phases": {name: seconds for name, seconds in self.phases.items()},
            "phase_total_s": self.phase_total_s,
            "phase_coverage": self.phase_coverage,
            "counters": dict(sorted(self.counters.items())),
            "names": {
                name: stats.to_dict() for name, stats in sorted(self.names.items())
            },
        }


def summarize(spans: list[SpanRecord]) -> TraceSummary:
    """Aggregate a list of span records into a :class:`TraceSummary`.

    The *root* is the longest parentless span (an orchestrated run's
    ``orchestrate.run``/``methodology.run``); its duration is the wall
    clock the ``phase.*`` totals are compared against.
    """
    names: dict[str, NameStats] = {}
    phases: dict[str, float] = {}
    counters: dict[str, float] = {}
    child_time: dict[tuple[int, int], float] = {}
    for record in spans:
        if record.parent_id is not None:
            key = (record.pid, record.parent_id)
            child_time[key] = child_time.get(key, 0.0) + record.duration_s
    root: SpanRecord | None = None
    for record in spans:
        stats = names.get(record.name)
        if stats is None:
            stats = names[record.name] = NameStats(record.name)
        seconds = record.duration_s
        stats.count += 1
        stats.total_s += seconds
        children = child_time.get((record.pid, record.span_id), 0.0)
        stats.self_s += max(seconds - children, 0.0)
        stats.min_s = min(stats.min_s, seconds)
        stats.max_s = max(stats.max_s, seconds)
        for name, value in record.counters.items():
            stats.counters[name] = stats.counters.get(name, 0) + value
            counters[name] = counters.get(name, 0) + value
        if record.name.startswith("phase."):
            phase = record.name[len("phase."):]
            phases[phase] = phases.get(phase, 0.0) + seconds
        if record.parent_id is None and (
            root is None or record.duration_ns > root.duration_ns
        ):
            root = record
    return TraceSummary(
        names=names,
        phases=phases,
        counters=counters,
        wall_s=root.duration_s if root is not None else 0.0,
        root=root.name if root is not None else None,
        span_count=len(spans),
    )


def render_summary(summary: TraceSummary) -> str:
    """Human-readable summary table (phases, then hottest names)."""
    lines: list[str] = []
    lines.append(
        f"{summary.span_count} span(s); root "
        f"{summary.root or '(none)'} wall {summary.wall_s:.3f}s"
    )
    if summary.phases:
        lines.append(
            f"phases ({summary.phase_total_s:.3f}s, "
            f"{summary.phase_coverage * 100:.1f}% of wall):"
        )
        for name, seconds in sorted(
            summary.phases.items(), key=lambda kv: -kv[1]
        ):
            share = seconds / summary.wall_s * 100 if summary.wall_s else 0.0
            lines.append(f"  {name:<12s} {seconds:>9.3f}s  {share:5.1f}%")
    lines.append(
        f"{'span':<24s} {'count':>7s} {'total s':>9s} {'self s':>9s} "
        f"{'mean ms':>9s} {'max ms':>9s}"
    )
    for name, stats in sorted(
        summary.names.items(), key=lambda kv: -kv[1].self_s
    ):
        mean_ms = stats.total_s / stats.count * 1e3 if stats.count else 0.0
        lines.append(
            f"{name:<24s} {stats.count:>7d} {stats.total_s:>9.3f} "
            f"{stats.self_s:>9.3f} {mean_ms:>9.2f} {stats.max_s * 1e3:>9.2f}"
        )
    if summary.counters:
        lines.append("counters:")
        for name, value in sorted(summary.counters.items()):
            lines.append(f"  {name:<32s} {value:>12g}")
    return "\n".join(lines)

"""Process-safe tracing activation: main process and pool workers.

Tracing state is process-global, but the pipeline spans processes: a
``ProcessPool`` worker must not inherit (via fork) the parent's
file-backed tracer -- two processes appending to one journal would
make the merged order scheduler-dependent.  The protocol here keeps
every process writing its own file:

* the main process activates tracing with :func:`tracing_to`, which
  journals spans to ``path`` and advertises a *worker spill
  directory* through a picklable :class:`TraceSpec`;
* the pool ships the spec (read via :func:`export_spec`) to workers
  alongside each task; the worker-side shim calls
  :func:`ensure_worker`, which installs a shard-local tracer writing
  ``worker-<pid>.jsonl`` into the spill directory -- idempotently, and
  explicitly *replacing* any tracer inherited across a fork;
* when the ``tracing_to`` block closes, the shard journals are merged
  into the main journal in deterministic ``(start, pid, id)`` order
  (:func:`repro.observability.journal.merge_worker_traces`).

A worker that is killed mid-task leaves a torn tail in its shard file;
the merge tolerates it, mirroring the orchestration journal's
contract.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from contextlib import contextmanager

from repro.observability.journal import TraceJournal, merge_worker_traces
from repro.observability.tracer import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = ["TraceSpec", "export_spec", "ensure_worker", "tracing_to"]


@dataclasses.dataclass(frozen=True)
class TraceSpec:
    """Picklable instruction: 'trace this task into this directory'."""

    directory: str


def export_spec() -> TraceSpec | None:
    """The active tracer's worker spec (None when workers shouldn't trace)."""
    return getattr(get_tracer(), "worker_spec", None)


def ensure_worker(spec: TraceSpec | None) -> None:
    """Make this process's tracer consistent with ``spec``.

    Called by the worker-side task shim before running a task.  With a
    spec, installs (once per process) a tracer journaling to a
    shard-local file in the spill directory.  Without one, drops any
    recording tracer inherited across a fork -- its sink belongs to
    the parent process -- so an untraced run stays untraced and the
    parent's journal is never written from two processes.
    """
    active = get_tracer()
    pid = os.getpid()
    if spec is None:
        if active is not NULL_TRACER and active.pid != pid:
            set_tracer(None)
        return
    if (
        active is not NULL_TRACER
        and active.pid == pid
        and getattr(active, "_shard_directory", None) == spec.directory
    ):
        return
    journal = TraceJournal(pathlib.Path(spec.directory) / f"worker-{pid}.jsonl")
    tracer = Tracer(sink=journal.append_span)
    tracer._shard_directory = spec.directory
    journal.append_meta(role="worker")
    set_tracer(tracer)
    # Lifecycle marker: when this worker first came up (or was rebuilt
    # after a crash -- each rebuild appends another marker).
    with tracer.span("worker.start"):
        pass


@contextmanager
def tracing_to(path, workers: bool = True):
    """Activate file-backed tracing for the duration of the block.

    Spans journal to ``path`` as they complete; with ``workers`` true
    (the default) pool workers journal to shard files under
    ``<path>.workers/``, merged back deterministically when the block
    exits.  Yields the active :class:`Tracer`.
    """
    path = pathlib.Path(path)
    journal = TraceJournal(path)
    spec = None
    worker_dir = None
    if workers:
        worker_dir = path.with_name(path.name + ".workers")
        spec = TraceSpec(str(worker_dir))
    journal.append_meta(role="main")
    tracer = Tracer(sink=journal.append_span, worker_spec=spec)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous if previous is not NULL_TRACER else None)
        journal.append_counters(tracer.counters)
        if worker_dir is not None:
            merge_worker_traces(journal, worker_dir)

"""The instrumented PZip archiver target (7-Zip analogue).

A test case archives a batch of deterministic pseudo-random files
(LZ77 + canonical Huffman per file) and then recovers every file from
the archive, mirroring the paper's 7Z procedure: "a set of 25 files
were input to the procedure, each of which was compressed to form an
archive and then decompressed in order to recover the original
content".  The observable output is the sequence of archive entry
descriptors plus the CRC of every recovered file; the failure
specification is the golden diff of Section VI-F.

Instrumented modules (probed at entry and exit once per file, so
injection times are measured in files processed, as in the paper):

``FHandle`` -- file/archive handling, invoked per file during
compression.  Entry state: ``file_index``, ``file_size``,
``buf_capacity``, ``checksum_acc``, ``n_files``, ``arch_offset``.
Exit state: ``stored_size``, ``token_len``, ``checksum``,
``arch_offset``, ``ratio``.  ``file_size`` and ``arch_offset`` are
live (corrupting them corrupts the archive); ``checksum_acc`` is
recomputed inside the module and ``buf_capacity`` only matters when it
drops below the file size, so both are resilient -- the mix of live
and resilient variables produces the class imbalance fault injection
data exhibits.

``LDecode`` -- LZ77/Huffman decoding, invoked per file during
recovery.  Entry state: ``file_index``, ``token_len``, ``total_bits``,
``expected_size``, ``crc_expected``.  Exit state: ``out_len``, ``crc``,
``ok``.
"""

from __future__ import annotations

import random
import zlib

from repro.injection.instrument import Harness, Location, VariableSpec
from repro.targets.base import TargetSystem
from repro.targets.sevenzip.huffman import huffman_decode, huffman_encode
from repro.targets.sevenzip.lz77 import lz77_compress, lz77_decompress

__all__ = ["SevenZipTarget"]

# Hard bounds that keep corrupted control variables from exhausting
# memory; chosen far above anything a legitimate run produces.
_MAX_DECODE_BYTES = 1 << 20


def _clamp_int(value: object, lo: int, hi: int) -> int:
    try:
        v = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError, OverflowError):
        return lo
    return max(lo, min(hi, v))


class SevenZipTarget(TargetSystem):
    """PZip archiver with instrumented ``FHandle`` and ``LDecode``.

    Parameters
    ----------
    n_files:
        Files per test case (paper: 25).
    min_size / max_size:
        File size range in bytes; contents are compressible
        pseudo-random text, deterministic per (test case, file index).
    encrypt:
        Enable the XTEA-CTR encryption stage (the real 7-Zip also
        encrypts; disabled by default so the Table II campaigns match
        the recorded EXPERIMENTS.md numbers).  Encryption keys are
        derived deterministically per test case.
    """

    name = "7Z"

    def __init__(
        self,
        n_files: int = 25,
        min_size: int = 60,
        max_size: int = 240,
        encrypt: bool = False,
    ) -> None:
        if n_files < 1:
            raise ValueError("need at least one file per test case")
        if not 8 <= min_size <= max_size:
            raise ValueError("file sizes must satisfy 8 <= min <= max")
        self.n_files = n_files
        self.min_size = min_size
        self.max_size = max_size
        self.encrypt = encrypt

    def _key_for(self, test_case: int) -> bytes:
        import hashlib

        return hashlib.sha256(f"pzip-key-{test_case}".encode()).digest()[:16]

    # ------------------------------------------------------------------
    # TargetSystem protocol
    # ------------------------------------------------------------------
    @property
    def modules(self) -> tuple[str, ...]:
        return ("FHandle", "LDecode")

    def variables_of(
        self, module: str, location: Location | None = None
    ) -> tuple[VariableSpec, ...]:
        self.check_module(module)
        if module == "FHandle":
            entry = (
                VariableSpec("file_index", "int32"),
                VariableSpec("file_size", "int32"),
                VariableSpec("buf_capacity", "int32"),
                VariableSpec("checksum_acc", "int32"),
                VariableSpec("n_files", "int32"),
                VariableSpec("arch_offset", "int32"),
            )
            exit_only = (
                VariableSpec("stored_size", "int32"),
                VariableSpec("token_len", "int32"),
                VariableSpec("checksum", "int32"),
                VariableSpec("ratio", "float64"),
            )
        else:
            entry = (
                VariableSpec("file_index", "int32"),
                VariableSpec("token_len", "int32"),
                VariableSpec("total_bits", "int32"),
                VariableSpec("expected_size", "int32"),
                VariableSpec("crc_expected", "int32"),
            )
            exit_only = (
                VariableSpec("out_len", "int32"),
                VariableSpec("crc", "int32"),
                VariableSpec("ok", "bool"),
            )
        if location is Location.ENTRY:
            return entry
        return entry + exit_only

    def module_sources(self, module: str) -> tuple | None:
        # Both instrumented modules execute the whole pipeline
        # (compress feeds decode through the archive), so the closure
        # is conservatively the entire package: any edit invalidates
        # both modules' stored shards rather than risking a stale hit.
        self.check_module(module)
        from repro.targets.sevenzip import huffman, lz77, xtea
        import repro.targets.sevenzip.archiver as archiver

        return (archiver, lz77, huffman, xtea)

    def run(self, test_case: int, harness: Harness) -> object:
        files = self._make_files(test_case)
        key = self._key_for(test_case) if self.encrypt else None
        archive = self._compress(files, harness, key)
        recovered = self._decompress(archive, harness, key)
        # The observable archive descriptor: sizes and offsets (what an
        # external diff of the archive's file listing sees).  checksum
        # and token_len stay internal to the archive: corrupting them
        # only violates the spec if the *decode* then produces
        # different content -- the software's inherent resilience the
        # paper notes.
        entries = tuple((e["stored_size"], e["offset"]) for e in archive)
        digests = tuple(zlib.crc32(data) for data in recovered)
        return (entries, digests)

    def is_failure(self, golden_output: object, run_output: object) -> bool:
        return golden_output != run_output

    # ------------------------------------------------------------------
    # Workload generation
    # ------------------------------------------------------------------
    def _make_files(self, test_case: int) -> list[bytes]:
        rng = random.Random(0xA11CE ^ (test_case * 2654435761))
        words = [
            bytes(rng.choices(range(97, 123), k=rng.randint(3, 8)))
            for _ in range(12)
        ]
        files = []
        for _ in range(self.n_files):
            size = rng.randint(self.min_size, self.max_size)
            buf = bytearray()
            while len(buf) < size:
                buf += rng.choice(words) + b" "
            files.append(bytes(buf[:size]))
        return files

    # ------------------------------------------------------------------
    # Compression path (FHandle)
    # ------------------------------------------------------------------
    def _compress(
        self, files: list[bytes], harness: Harness, key: bytes | None = None
    ) -> list[dict]:
        archive: list[dict] = []
        arch_offset = 0
        for file_index, data in enumerate(files):
            state = harness.probe(
                "FHandle",
                Location.ENTRY,
                {
                    "file_index": file_index,
                    "file_size": len(data),
                    "buf_capacity": self.max_size,
                    "checksum_acc": 0,
                    "n_files": self.n_files,
                    "arch_offset": arch_offset,
                },
            )
            # Live control variables read back from the (possibly
            # corrupted) probe state.
            file_size = _clamp_int(state["file_size"], 0, len(data))
            buf_capacity = _clamp_int(state["buf_capacity"], 0, 1 << 30)
            arch_offset = _clamp_int(state["arch_offset"], -(1 << 30), 1 << 30)
            # A buffer smaller than the file truncates the input, as a
            # fixed-size C buffer would.
            usable = min(file_size, buf_capacity)
            payload_in = data[:usable]
            # checksum_acc is a scratch accumulator: recomputed from
            # scratch here, so entry corruption of it is absorbed.
            checksum = zlib.crc32(payload_in) & 0x7FFFFFFF
            tokens = lz77_compress(payload_in)
            lengths, payload, total_bits = huffman_encode(tokens)
            if key is not None:
                from repro.targets.sevenzip.xtea import xtea_ctr

                payload = xtea_ctr(payload, key, nonce=file_index << 32)
            ratio = len(payload) / len(payload_in) if payload_in else 1.0

            exit_state = harness.probe(
                "FHandle",
                Location.EXIT,
                {
                    "file_index": file_index,
                    "file_size": usable,
                    "buf_capacity": buf_capacity,
                    "checksum_acc": checksum,
                    "n_files": self.n_files,
                    "arch_offset": arch_offset,
                    "stored_size": len(payload_in),
                    "token_len": len(tokens),
                    "checksum": checksum,
                    "ratio": ratio,
                },
            )
            stored_size = _clamp_int(exit_state["stored_size"], 0, 1 << 30)
            token_len = _clamp_int(exit_state["token_len"], 0, 1 << 30)
            entry_checksum = _clamp_int(
                exit_state["checksum"], -(1 << 31), (1 << 31) - 1
            )
            arch_offset = _clamp_int(
                exit_state["arch_offset"], -(1 << 30), 1 << 30
            )
            archive.append(
                {
                    "stored_size": stored_size,
                    "token_len": token_len,
                    "checksum": entry_checksum,
                    "offset": arch_offset,
                    "lengths": lengths,
                    "payload": payload,
                    "total_bits": total_bits,
                }
            )
            arch_offset += len(payload)
        return archive

    # ------------------------------------------------------------------
    # Decompression path (LDecode)
    # ------------------------------------------------------------------
    def _decompress(
        self, archive: list[dict], harness: Harness, key: bytes | None = None
    ) -> list[bytes]:
        recovered: list[bytes] = []
        for file_index, entry in enumerate(archive):
            state = harness.probe(
                "LDecode",
                Location.ENTRY,
                {
                    "file_index": file_index,
                    "token_len": entry["token_len"],
                    "total_bits": entry["total_bits"],
                    "expected_size": entry["stored_size"],
                    "crc_expected": entry["checksum"],
                },
            )
            token_len = _clamp_int(state["token_len"], 0, _MAX_DECODE_BYTES)
            total_bits = _clamp_int(state["total_bits"], 0, 8 * len(entry["payload"]))
            expected_size = _clamp_int(
                state["expected_size"], 0, _MAX_DECODE_BYTES
            )
            crc_expected = _clamp_int(
                state["crc_expected"], -(1 << 31), (1 << 31) - 1
            )

            payload = entry["payload"]
            if key is not None:
                from repro.targets.sevenzip.xtea import xtea_ctr

                payload = xtea_ctr(payload, key, nonce=file_index << 32)
            tokens = huffman_decode(
                entry["lengths"], payload, total_bits, token_len
            )
            data = lz77_decompress(tokens, expected_size)
            crc = zlib.crc32(data) & 0x7FFFFFFF
            ok = crc == crc_expected

            exit_state = harness.probe(
                "LDecode",
                Location.EXIT,
                {
                    "file_index": file_index,
                    "token_len": token_len,
                    "total_bits": total_bits,
                    "expected_size": expected_size,
                    "crc_expected": crc_expected,
                    "out_len": len(data),
                    "crc": crc,
                    "ok": ok,
                },
            )
            out_len = _clamp_int(exit_state["out_len"], 0, len(data))
            # crc / ok are diagnostics: consumed by logging only, so
            # corrupting them at exit does not violate the failure spec.
            recovered.append(data[:out_len])
        return recovered

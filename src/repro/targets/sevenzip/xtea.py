"""XTEA block cipher in CTR mode for encrypted archives.

The real 7-Zip "supports a variety of file archiving and encryption
formats" (Section VI-B); PZip's optional encryption stage mirrors
that: compressed payloads are encrypted with XTEA (Needham & Wheeler's
64-bit block cipher, 32 rounds) in counter mode, so decryption is the
same keystream XOR and corrupted ciphertext degrades into corrupted
plaintext rather than exceptions -- the property fault injection
needs.

This is a real, test-vector-checked XTEA; it is *not* a security
recommendation (a 64-bit block cipher in 2011, let alone now, is for
compatibility, exactly as in the original tool's older formats).
"""

from __future__ import annotations

import struct

__all__ = ["xtea_encrypt_block", "xtea_decrypt_block", "xtea_ctr"]

_MASK = 0xFFFFFFFF
_DELTA = 0x9E3779B9
_ROUNDS = 32


def _key_words(key: bytes) -> tuple[int, int, int, int]:
    if len(key) != 16:
        raise ValueError("XTEA requires a 16-byte key")
    return struct.unpack("<4I", key)


def xtea_encrypt_block(block: bytes, key: bytes) -> bytes:
    """Encrypt one 8-byte block."""
    if len(block) != 8:
        raise ValueError("XTEA block must be 8 bytes")
    v0, v1 = struct.unpack("<2I", block)
    k = _key_words(key)
    total = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (
            v1
            + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK
    return struct.pack("<2I", v0, v1)


def xtea_decrypt_block(block: bytes, key: bytes) -> bytes:
    """Decrypt one 8-byte block."""
    if len(block) != 8:
        raise ValueError("XTEA block must be 8 bytes")
    v0, v1 = struct.unpack("<2I", block)
    k = _key_words(key)
    total = (_DELTA * _ROUNDS) & _MASK
    for _ in range(_ROUNDS):
        v1 = (
            v1
            - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK
        total = (total - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
    return struct.pack("<2I", v0, v1)


def xtea_ctr(data: bytes, key: bytes, nonce: int = 0) -> bytes:
    """Encrypt/decrypt ``data`` in counter mode (self-inverse).

    The keystream block for counter ``i`` is the encryption of the
    64-bit little-endian value ``nonce + i``.
    """
    out = bytearray(len(data))
    for i in range(0, len(data), 8):
        counter = struct.pack("<Q", (nonce + i // 8) & 0xFFFFFFFFFFFFFFFF)
        keystream = xtea_encrypt_block(counter, key)
        chunk = data[i : i + 8]
        for j, byte in enumerate(chunk):
            out[i + j] = byte ^ keystream[j]
    return bytes(out)

"""PZip: the 7-Zip target analogue.

The paper's 7Z case study archives and recovers batches of 25 files
with two instrumented modules, ``FHandle`` (file/archive handling) and
``LDecode`` (LZ decoding).  PZip is a genuine archiver implementing the
same pipeline in Python:

* :mod:`repro.targets.sevenzip.lz77` -- LZ77 sliding-window
  compression with hash-chain match search;
* :mod:`repro.targets.sevenzip.huffman` -- canonical Huffman coding of
  the token stream;
* :mod:`repro.targets.sevenzip.archiver` -- the instrumented target:
  archive format, golden-diff failure specification and the ``FHandle``
  / ``LDecode`` probe points.
"""

from repro.targets.sevenzip.archiver import SevenZipTarget
from repro.targets.sevenzip.lz77 import lz77_compress, lz77_decompress
from repro.targets.sevenzip.huffman import huffman_decode, huffman_encode

__all__ = [
    "SevenZipTarget",
    "lz77_compress",
    "lz77_decompress",
    "huffman_encode",
    "huffman_decode",
]

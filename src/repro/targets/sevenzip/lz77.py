"""LZ77 sliding-window compression.

A real (if compact) LZ77: the compressor emits a token stream of
literals and back-references found with a hash-chain match search; the
decompressor reconstructs the data by copying from its own output
window.  The decompressor is written so that *corrupted* tokens or
control variables degrade gracefully into wrong output rather than
unbounded loops -- bit-flipped state must be able to propagate to the
archive contents (that is the point of the fault injection study)
without hanging the campaign.

Token encoding (byte-oriented, so Huffman coding can treat it as a
symbol stream):

* literal: ``0x00, byte``
* match:   ``0x01, offset_hi, offset_lo, length``

Offsets are 1..65535 back from the current output position; lengths
are 3..255.
"""

from __future__ import annotations

__all__ = [
    "LITERAL",
    "MATCH",
    "MIN_MATCH",
    "MAX_MATCH",
    "lz77_compress",
    "lz77_decompress",
]

LITERAL = 0x00
MATCH = 0x01
MIN_MATCH = 3
MAX_MATCH = 255
_MAX_OFFSET = 0xFFFF
_HASH_CHAIN_LIMIT = 16  # candidates examined per position


def lz77_compress(data: bytes, window: int = 4096) -> bytes:
    """Compress ``data`` into an LZ77 token stream."""
    if window < MIN_MATCH:
        raise ValueError("window must be at least the minimum match length")
    window = min(window, _MAX_OFFSET)
    out = bytearray()
    n = len(data)
    # Hash chains: 3-byte prefix hash -> recent positions (most recent last).
    chains: dict[int, list[int]] = {}
    i = 0
    while i < n:
        best_length = 0
        best_offset = 0
        if i + MIN_MATCH <= n:
            key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
            candidates = chains.get(key, ())
            lo = i - window
            for pos in reversed(candidates[-_HASH_CHAIN_LIMIT:]):
                if pos < lo:
                    break
                length = _match_length(data, pos, i, n)
                if length > best_length:
                    best_length = length
                    best_offset = i - pos
                    if length >= MAX_MATCH:
                        break
        if best_length >= MIN_MATCH:
            out.append(MATCH)
            out.append((best_offset >> 8) & 0xFF)
            out.append(best_offset & 0xFF)
            out.append(best_length)
            end = min(i + best_length, n - MIN_MATCH + 1)
            for j in range(i, max(i + 1, end)):
                if j + MIN_MATCH <= n:
                    key = data[j] | (data[j + 1] << 8) | (data[j + 2] << 16)
                    chains.setdefault(key, []).append(j)
            i += best_length
        else:
            out.append(LITERAL)
            out.append(data[i])
            if i + MIN_MATCH <= n:
                key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
                chains.setdefault(key, []).append(i)
            i += 1
    return bytes(out)


def _match_length(data: bytes, pos: int, i: int, n: int) -> int:
    length = 0
    limit = min(MAX_MATCH, n - i)
    while length < limit and data[pos + length] == data[i + length]:
        length += 1
    return length


def lz77_decompress(tokens: bytes, expected_size: int | None = None) -> bytes:
    """Reconstruct data from an LZ77 token stream.

    ``expected_size`` bounds the output: decoding stops once that many
    bytes have been produced (a corrupted length field cannot expand
    the output unboundedly).  Malformed streams -- truncated tokens,
    zero/too-large offsets -- terminate decoding early rather than
    raising, returning whatever was reconstructed so far, because a
    fault-injected archive must still yield *an* output for the failure
    specification to diff.
    """
    out = bytearray()
    limit = expected_size if expected_size is not None else 1 << 31
    i = 0
    n = len(tokens)
    while i < n and len(out) < limit:
        tag = tokens[i]
        if tag == LITERAL:
            if i + 1 >= n:
                break
            out.append(tokens[i + 1])
            i += 2
        elif tag == MATCH:
            if i + 3 >= n:
                break
            offset = (tokens[i + 1] << 8) | tokens[i + 2]
            length = tokens[i + 3]
            i += 4
            if offset == 0 or offset > len(out):
                break  # corrupt back-reference
            start = len(out) - offset
            for k in range(min(length, limit - len(out))):
                out.append(out[start + k])
        else:
            break  # unknown token tag: corrupt stream
    return bytes(out)

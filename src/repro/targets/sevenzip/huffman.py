"""Canonical Huffman coding of byte streams.

The second compression stage of PZip: token streams from the LZ77
stage are entropy-coded with a canonical Huffman code.  The code is
canonical so only the per-symbol code lengths need to be stored in the
archive header (256 bytes), exactly as real archivers do.

Code lengths are capped at 15 bits with the standard
length-limiting adjustment; decoding walks the canonical tables
(first-code/first-symbol per length), again degrading gracefully on
corrupt input: an invalid prefix terminates decoding early instead of
raising, so fault-injected archives still produce diffable output.
"""

from __future__ import annotations

import heapq

__all__ = [
    "code_lengths",
    "canonical_codes",
    "huffman_encode",
    "huffman_decode",
]

MAX_CODE_LENGTH = 15


def code_lengths(frequencies: list[int]) -> list[int]:
    """Per-symbol Huffman code lengths from symbol frequencies.

    Returns a list of 256 lengths (0 for absent symbols).  Lengths are
    limited to :data:`MAX_CODE_LENGTH` by promoting over-long codes,
    preserving Kraft validity.
    """
    if len(frequencies) != 256:
        raise ValueError("expected 256 symbol frequencies")
    present = [(f, s) for s, f in enumerate(frequencies) if f > 0]
    if not present:
        return [0] * 256
    if len(present) == 1:
        lengths = [0] * 256
        lengths[present[0][1]] = 1
        return lengths

    # Standard Huffman tree build on a heap of (freq, tiebreak, node).
    heap: list[tuple[int, int, object]] = []
    counter = 0
    for freq, symbol in present:
        heap.append((freq, counter, symbol))
        counter += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, left = heapq.heappop(heap)
        f2, _, right = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, (left, right)))
        counter += 1
    root = heap[0][2]

    lengths = [0] * 256
    _assign_depths(root, 0, lengths)
    return _limit_lengths(lengths)


def _assign_depths(node: object, depth: int, lengths: list[int]) -> None:
    if isinstance(node, int):
        lengths[node] = max(depth, 1)
        return
    left, right = node  # type: ignore[misc]
    _assign_depths(left, depth + 1, lengths)
    _assign_depths(right, depth + 1, lengths)


def _limit_lengths(lengths: list[int]) -> list[int]:
    """Cap code lengths at MAX_CODE_LENGTH keeping Kraft sum <= 1."""
    if max(lengths) <= MAX_CODE_LENGTH:
        return lengths
    lengths = [min(l, MAX_CODE_LENGTH) if l else 0 for l in lengths]
    # Restore Kraft validity: while oversubscribed, lengthen the
    # shortest-codeword symbols with room to grow.
    def kraft() -> float:
        return sum(2.0 ** -l for l in lengths if l)

    while kraft() > 1.0:
        candidates = [
            s for s, l in enumerate(lengths) if 0 < l < MAX_CODE_LENGTH
        ]
        best = min(candidates, key=lambda s: lengths[s])
        lengths[best] += 1
    return lengths


def canonical_codes(lengths: list[int]) -> dict[int, tuple[int, int]]:
    """Canonical (code, length) per symbol from code lengths.

    Symbols are ordered by (length, symbol); codes are assigned
    consecutively within each length, shifted when the length grows.
    """
    symbols = sorted(
        (s for s in range(256) if lengths[s]), key=lambda s: (lengths[s], s)
    )
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol in symbols:
        length = lengths[symbol]
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


def huffman_encode(data: bytes) -> tuple[bytes, bytes, int]:
    """Encode ``data``; returns (lengths-table, payload, bit count).

    The lengths table is the 256-byte canonical header; the payload is
    the concatenated codewords padded to a byte boundary.
    """
    frequencies = [0] * 256
    for byte in data:
        frequencies[byte] += 1
    lengths = code_lengths(frequencies)
    codes = canonical_codes(lengths)
    bit_buffer = 0
    bit_count = 0
    total_bits = 0
    payload = bytearray()
    for byte in data:
        code, length = codes[byte]
        bit_buffer = (bit_buffer << length) | code
        bit_count += length
        total_bits += length
        while bit_count >= 8:
            bit_count -= 8
            payload.append((bit_buffer >> bit_count) & 0xFF)
    if bit_count:
        payload.append((bit_buffer << (8 - bit_count)) & 0xFF)
    return bytes(lengths), bytes(payload), total_bits


def huffman_decode(
    lengths_table: bytes, payload: bytes, total_bits: int, max_symbols: int
) -> bytes:
    """Decode a canonical Huffman payload back into symbols.

    Stops after ``max_symbols`` symbols or ``total_bits`` bits, or on
    an invalid prefix (corrupt data), returning what was decoded.
    """
    if len(lengths_table) != 256:
        return b""
    lengths = list(lengths_table)
    if not any(lengths):
        return b""
    codes = canonical_codes(lengths)
    # Invert into per-length tables for canonical decoding.
    by_length: dict[int, dict[int, int]] = {}
    for symbol, (code, length) in codes.items():
        by_length.setdefault(length, {})[code] = symbol

    out = bytearray()
    code = 0
    length = 0
    consumed = 0
    for byte in payload:
        for shift in range(7, -1, -1):
            if consumed >= total_bits or len(out) >= max_symbols:
                return bytes(out)
            bit = (byte >> shift) & 1
            code = (code << 1) | bit
            length += 1
            consumed += 1
            if length > MAX_CODE_LENGTH:
                return bytes(out)  # invalid prefix: corrupt stream
            table = by_length.get(length)
            if table is not None and code in table:
                out.append(table[code])
                code = 0
                length = 0
    return bytes(out)

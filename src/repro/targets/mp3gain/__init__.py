"""Mp3Gain target analogue: a loudness analyser and volume normaliser.

The paper's MG case study normalises the volume of batches of 25 mp3
files with two instrumented modules, ``GAnalysis`` (gain analysis) and
``RGain`` (replay gain).  This package implements the equivalent
ReplayGain-style pipeline over synthetic PCM tracks:

* :mod:`repro.targets.mp3gain.signal` -- deterministic synthetic track
  generation (tone mixtures plus noise, varying loudness);
* :mod:`repro.targets.mp3gain.analysis` -- the ``GAnalysis`` module:
  framewise RMS loudness analysis with percentile statistics;
* :mod:`repro.targets.mp3gain.replaygain` -- the ``RGain`` module:
  gain computation and sample scaling with clipping protection;
* :mod:`repro.targets.mp3gain.target` -- the instrumented
  :class:`repro.targets.base.TargetSystem` with the golden-diff
  failure specification of Section VI-F.
"""

from repro.targets.mp3gain.target import Mp3GainTarget
from repro.targets.mp3gain.analysis import analyse_track
from repro.targets.mp3gain.signal import make_track

__all__ = ["Mp3GainTarget", "analyse_track", "make_track"]

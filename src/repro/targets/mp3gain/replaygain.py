"""The ``RGain`` module: gain computation and application.

From the analysis result, compute the replay gain that moves the track
to the reference loudness, limit it so the track peak cannot clip, and
scale every sample, quantising to 16-bit PCM.  Invoked once per track.

Quantisation is the target's natural error absorber: a bit flip that
perturbs the gain by less than half a 16-bit step leaves the output
identical (non-failure), while exponent/sign flips shift every sample
(failure) -- giving the class imbalance the methodology expects.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.injection.instrument import Harness, Location
from repro.targets.mp3gain.analysis import AnalysisResult

__all__ = ["RGainModule", "NormalisedTrack", "REFERENCE_LOUDNESS_DB"]

REFERENCE_LOUDNESS_DB = -14.0  # target loudness (dBFS of 95th pct RMS)
_MAX_GAIN_DB = 30.0


@dataclasses.dataclass
class NormalisedTrack:
    """Quantised output of one track plus bookkeeping."""

    pcm16: np.ndarray
    applied_gain_db: float
    clip_count: int


class RGainModule:
    """Instrumented gain stage."""

    def __init__(self, reference_db: float = REFERENCE_LOUDNESS_DB) -> None:
        self.reference_db = reference_db

    def step(
        self,
        harness: Harness,
        track_index: int,
        samples: np.ndarray,
        analysis: AnalysisResult,
    ) -> NormalisedTrack:
        gain_db = self.reference_db - analysis.loudness_db
        state = harness.probe(
            "RGain",
            Location.ENTRY,
            {
                "track_index": track_index,
                "gain_db": gain_db,
                "reference_db": self.reference_db,
                "loudness_db": analysis.loudness_db,
                "peak": analysis.peak,
                "clip_count": 0,
            },
        )
        gain_db = float(state["gain_db"])
        peak = float(state["peak"])
        # clip_count at entry is a scratch counter (resilient).

        if not math.isfinite(gain_db):
            gain_db = 0.0
        gain_db = max(min(gain_db, _MAX_GAIN_DB), -_MAX_GAIN_DB)
        # Peak protection: do not amplify beyond full scale.
        if peak > 1e-9:
            headroom_db = 20.0 * math.log10(1.0 / peak)
            gain_db = min(gain_db, headroom_db)
        scale = 10.0 ** (gain_db / 20.0)

        scaled = samples * scale
        clipped = np.count_nonzero(np.abs(scaled) > 1.0)
        scaled = np.clip(np.nan_to_num(scaled, nan=0.0, posinf=1.0, neginf=-1.0),
                         -1.0, 1.0)
        pcm16 = np.round(scaled * 32767.0).astype(np.int16)

        exit_state = harness.probe(
            "RGain",
            Location.EXIT,
            {
                "track_index": track_index,
                "gain_db": gain_db,
                "reference_db": self.reference_db,
                "loudness_db": analysis.loudness_db,
                "peak": peak,
                "clip_count": int(clipped),
                "applied_scale": scale,
                "out_rms": float(np.sqrt(np.mean(scaled * scaled)))
                if len(scaled)
                else 0.0,
            },
        )
        # The exit gain/scale feed the *stored* metadata; re-apply the
        # exit scale when it was corrupted so exit injection is live.
        exit_scale = float(exit_state["applied_scale"])
        if exit_scale != scale and math.isfinite(exit_scale):
            rescaled = np.clip(
                np.nan_to_num(samples * exit_scale, nan=0.0, posinf=1.0,
                              neginf=-1.0),
                -1.0,
                1.0,
            )
            pcm16 = np.round(rescaled * 32767.0).astype(np.int16)
        return NormalisedTrack(
            pcm16=pcm16,
            applied_gain_db=float(exit_state["gain_db"]),
            clip_count=int(exit_state["clip_count"]),
        )

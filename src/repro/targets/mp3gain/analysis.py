"""The ``GAnalysis`` module: framewise loudness analysis.

ReplayGain-style analysis: the track is split into fixed-size frames,
each frame's RMS energy is computed, and the track loudness is the
95th-percentile frame RMS expressed in dB (so brief silence does not
drag the estimate down, and brief peaks do not dominate).  The module
also tracks the sample peak, which the gain stage uses for clipping
protection.

Invoked once per track; entry variables steer the analysis (frame
size, percentile, accumulators), exit variables carry its results, and
the gain stage consumes what the exit probe returns -- so injected
corruption at either probe propagates into the normalised output.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.injection.instrument import Harness, Location

__all__ = ["AnalysisResult", "GAnalysisModule", "analyse_track"]

#: dB floor for silent frames (avoids log of zero).
_SILENCE_DB = -120.0


@dataclasses.dataclass
class AnalysisResult:
    """Per-track loudness statistics."""

    loudness_db: float
    peak: float
    frame_count: int


def analyse_track(
    samples: np.ndarray, frame_size: int, percentile: float
) -> AnalysisResult:
    """Pure analysis used by the module (and directly testable)."""
    frame_size = max(int(frame_size), 1)
    n_frames = max(len(samples) // frame_size, 1)
    usable = samples[: n_frames * frame_size]
    frames = usable.reshape(n_frames, -1) if len(usable) else np.zeros((1, 1))
    rms = np.sqrt(np.mean(frames * frames, axis=1))
    percentile = min(max(float(percentile), 0.0), 100.0)
    loudness_rms = float(np.percentile(rms, percentile))
    loudness_db = (
        20.0 * math.log10(loudness_rms) if loudness_rms > 1e-6 else _SILENCE_DB
    )
    peak = float(np.max(np.abs(samples))) if len(samples) else 0.0
    return AnalysisResult(loudness_db, peak, n_frames)


class GAnalysisModule:
    """Instrumented wrapper driving :func:`analyse_track` per track."""

    def __init__(self, frame_size: int = 256, percentile: float = 95.0) -> None:
        self.frame_size = frame_size
        self.percentile = percentile

    def step(
        self, harness: Harness, track_index: int, samples: np.ndarray
    ) -> AnalysisResult:
        state = harness.probe(
            "GAnalysis",
            Location.ENTRY,
            {
                "track_index": track_index,
                "frame_size": self.frame_size,
                "percentile": self.percentile,
                "n_samples": len(samples),
                "rms_acc": 0.0,
                "peak_acc": 0.0,
            },
        )
        frame_size = int(state["frame_size"])
        percentile = float(state["percentile"])
        n_samples = max(min(int(state["n_samples"]), len(samples)), 0)
        # rms_acc / peak_acc are scratch accumulators, reset inside the
        # analysis, so entry corruption of them is absorbed (resilient).
        if frame_size < 1 or frame_size > max(n_samples, 1):
            # A corrupted frame size degrades to whole-track analysis,
            # as a defensive C implementation clamping its loop bound
            # would; the loudness estimate changes accordingly.
            frame_size = max(n_samples, 1)
        if not math.isfinite(percentile):
            percentile = 0.0
        result = analyse_track(samples[:n_samples], frame_size, percentile)

        exit_state = harness.probe(
            "GAnalysis",
            Location.EXIT,
            {
                "track_index": track_index,
                "frame_size": frame_size,
                "percentile": percentile,
                "n_samples": n_samples,
                "loudness_db": result.loudness_db,
                "peak": result.peak,
                "frame_count": result.frame_count,
            },
        )
        return AnalysisResult(
            loudness_db=float(exit_state["loudness_db"]),
            peak=float(exit_state["peak"]),
            frame_count=int(exit_state["frame_count"]),
        )

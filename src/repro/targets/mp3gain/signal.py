"""Synthetic PCM track generation.

The paper's MG test cases feed "a set of 25 mp3 files of varying
sizes"; decoded mp3 audio is PCM, which is what the analyser operates
on, so the substitution generates deterministic PCM directly: a
mixture of tones with an amplitude envelope plus low-level noise, with
per-track loudness spread over ~18 dB so normalisation has real work
to do.  Tracks are deterministic per (test case, track index).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_track", "make_batch"]

SAMPLE_RATE = 8000.0


def make_track(test_case: int, track_index: int, n_samples: int) -> np.ndarray:
    """One deterministic mono track in [-1, 1] as float64."""
    seed = (test_case * 1_000_003 + track_index * 7919) & 0xFFFFFFFF
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples) / SAMPLE_RATE
    signal = np.zeros(n_samples)
    for _ in range(rng.integers(2, 5)):
        freq = float(rng.uniform(80.0, 1200.0))
        amp = float(rng.uniform(0.05, 0.35))
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        signal += amp * np.sin(2.0 * np.pi * freq * t + phase)
    # Slow amplitude envelope (quiet intros, loud choruses).
    envelope = 0.55 + 0.45 * np.sin(
        2.0 * np.pi * float(rng.uniform(0.1, 0.6)) * t
        + float(rng.uniform(0.0, 2.0 * np.pi))
    )
    signal *= envelope
    signal += rng.normal(0.0, 0.004, n_samples)
    # Per-track loudness offset: -12..+6 dB around nominal.
    level_db = float(rng.uniform(-12.0, 6.0))
    signal *= 10.0 ** (level_db / 20.0)
    return np.clip(signal, -1.0, 1.0)


def make_batch(
    test_case: int, n_tracks: int, min_samples: int, max_samples: int
) -> list[np.ndarray]:
    """The batch of varying-size tracks for one test case."""
    rng = np.random.default_rng((test_case * 2_654_435_761) & 0xFFFFFFFF)
    tracks = []
    for track_index in range(n_tracks):
        n_samples = int(rng.integers(min_samples, max_samples + 1))
        tracks.append(make_track(test_case, track_index, n_samples))
    return tracks

"""Target system protocol.

Section III-A models a software system as interconnected modules, each
holding non-composite variables and actions that read/write them.  A
target system in this reproduction is a class that

* names its instrumented modules and declares the machine
  representation of every variable each module exposes at its probes
  (:meth:`TargetSystem.variables_of`);
* executes a numbered, deterministic test case against a harness
  (:meth:`TargetSystem.run`), calling ``harness.probe(module,
  location, state)`` at every instrumented module's entry and exit and
  continuing with the returned (possibly corrupted) state;
* defines its failure specification (:meth:`TargetSystem.is_failure`),
  comparing an injected run's output to the golden run's (Section
  VI-F).

Targets are grey box, as the paper assumes: the harness sees variable
names and values, not the target's semantics.
"""

from __future__ import annotations

import abc

from repro.injection.instrument import Harness, Location, VariableSpec

__all__ = ["TargetSystem", "TargetError"]


class TargetError(RuntimeError):
    """Raised for invalid target configuration or test case numbers."""


class TargetSystem(abc.ABC):
    """Abstract instrumented target system."""

    #: Short identifier used in dataset names ("7Z", "FG", "MG").
    name: str = "target"

    @property
    @abc.abstractmethod
    def modules(self) -> tuple[str, ...]:
        """Names of the instrumented modules."""

    @abc.abstractmethod
    def variables_of(
        self, module: str, location: Location | None = None
    ) -> tuple[VariableSpec, ...]:
        """Variable specs exposed at the probes of ``module``.

        Entry and exit probes may expose different variables (a
        module's results only exist at its exit), so callers that
        inject or sample at a specific location pass it; ``None``
        returns the union.
        """

    @abc.abstractmethod
    def run(self, test_case: int, harness: Harness) -> object:
        """Execute ``test_case`` under ``harness`` and return the output.

        The output must be a picklable, equality-comparable value that
        the failure specification can diff against the golden run's.
        A run may raise an exception when an injected fault crashes the
        target; the campaign treats crashes as failures.
        """

    @abc.abstractmethod
    def is_failure(self, golden_output: object, run_output: object) -> bool:
        """The failure specification: did the run violate the spec?"""

    def fingerprint(self) -> str | None:
        """Content fingerprint of this target's configuration.

        Two targets with equal fingerprints run their test cases
        identically (same class, same constructor-derived state), so
        anything deterministically derived from one -- golden runs in
        particular -- can be reused for the other.

        Every instance attribute participates (private ones included:
        they shape behaviour just the same), via ``repr``.  An
        attribute whose repr is identity-based (``<function work at
        0x...>``) proves nothing about content, so such targets return
        ``None`` -- *not fingerprintable* -- and callers must skip
        content-addressed reuse rather than risk a false hit.  Targets
        carrying such state can override this with a content-true
        fingerprint of their own.
        """
        import re

        from repro.orchestration.tasks import fingerprint_of

        state = {}
        for attr, value in sorted(vars(self).items()):
            encoded = repr(value)
            if re.search(r"0x[0-9a-fA-F]{4,}", encoded):
                return None
            state[attr] = encoded
        return fingerprint_of(
            {
                "class": f"{type(self).__module__}.{type(self).__qualname__}",
                "name": self.name,
                "state": state,
            }
        )

    def check_module(self, module: str) -> None:
        if module not in self.modules:
            raise TargetError(
                f"{self.name} has no instrumented module {module!r}; "
                f"available: {self.modules}"
            )

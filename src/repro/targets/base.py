"""Target system protocol.

Section III-A models a software system as interconnected modules, each
holding non-composite variables and actions that read/write them.  A
target system in this reproduction is a class that

* names its instrumented modules and declares the machine
  representation of every variable each module exposes at its probes
  (:meth:`TargetSystem.variables_of`);
* executes a numbered, deterministic test case against a harness
  (:meth:`TargetSystem.run`), calling ``harness.probe(module,
  location, state)`` at every instrumented module's entry and exit and
  continuing with the returned (possibly corrupted) state;
* defines its failure specification (:meth:`TargetSystem.is_failure`),
  comparing an injected run's output to the golden run's (Section
  VI-F).

Targets are grey box, as the paper assumes: the harness sees variable
names and values, not the target's semantics.
"""

from __future__ import annotations

import abc
import ast
import inspect
import re
import textwrap

from repro.injection.instrument import Harness, Location, VariableSpec

__all__ = ["TargetSystem", "TargetError", "normalized_source"]

#: Memory-address tokens in a repr (``<function f at 0x7f...>``):
#: evidence the repr is identity-based and proves nothing about content.
_IDENTITY_REPR = re.compile(r"0x[0-9a-fA-F]{4,}")


def normalized_source(unit: object) -> str | None:
    """AST-normalized Python source of a code unit, or ``None``.

    ``unit`` may be a Python module, class, or function (resolved via
    :func:`inspect.getsource`) or a plain source string.  The text is
    parsed and unparsed, so comments, blank lines and formatting drop
    out: two sources normalize equal iff they are the same program.
    This is what makes a comment-only edit a store *hit* while a
    one-character semantic edit is a store *invalidation*.

    ``None`` means the source is unavailable (built-ins, ``exec``'d
    code) or unparsable -- callers must treat the unit as not
    fingerprintable.
    """
    if isinstance(unit, str):
        text = unit
    else:
        try:
            text = inspect.getsource(unit)
        except (OSError, TypeError):
            return None
    try:
        tree = ast.parse(textwrap.dedent(text))
    except (SyntaxError, ValueError):
        return None
    return ast.unparse(tree)


def _encode_state(value: object) -> object | None:
    """Content-true encoding of one attribute value, or ``None``.

    Scalars and anything else with a content repr encode as that repr;
    containers recurse elementwise (sets sorted, so iteration order
    cannot leak in).  An object whose repr is identity-based but that
    carries a ``__dict__`` (a plain or dataclass-like instance without
    a custom ``__repr__``) encodes as its class plus the recursive
    encoding of its attributes -- equal field values fingerprint
    equal, whatever addresses the instances live at.  Functions,
    methods, modules and classes stay opaque: their identity repr
    really does prove nothing, so the fingerprint bails.
    """
    if isinstance(value, (list, tuple)):
        encoded = [_encode_state(item) for item in value]
        if any(item is None for item in encoded):
            return None
        return [type(value).__name__, encoded]
    if isinstance(value, dict):
        items = []
        for key in sorted(value, key=repr):
            ek = _encode_state(key)
            ev = _encode_state(value[key])
            if ek is None or ev is None:
                return None
            items.append([ek, ev])
        return ["dict", items]
    if isinstance(value, (set, frozenset)):
        encoded = [_encode_state(item) for item in value]
        if any(item is None for item in encoded):
            return None
        return [type(value).__name__, sorted(encoded, key=repr)]
    text = repr(value)
    if not _IDENTITY_REPR.search(text):
        return text
    if (
        isinstance(value, type)
        or inspect.isroutine(value)
        or inspect.ismodule(value)
    ):
        return None
    attrs = getattr(value, "__dict__", None)
    if not isinstance(attrs, dict):
        return None
    fields: dict[str, object] = {}
    for name in sorted(attrs):
        encoded = _encode_state(attrs[name])
        if encoded is None:
            return None
        fields[name] = encoded
    return [
        "object",
        f"{type(value).__module__}.{type(value).__qualname__}",
        fields,
    ]


class TargetError(RuntimeError):
    """Raised for invalid target configuration or test case numbers."""


class TargetSystem(abc.ABC):
    """Abstract instrumented target system."""

    #: Short identifier used in dataset names ("7Z", "FG", "MG").
    name: str = "target"

    @property
    @abc.abstractmethod
    def modules(self) -> tuple[str, ...]:
        """Names of the instrumented modules."""

    @abc.abstractmethod
    def variables_of(
        self, module: str, location: Location | None = None
    ) -> tuple[VariableSpec, ...]:
        """Variable specs exposed at the probes of ``module``.

        Entry and exit probes may expose different variables (a
        module's results only exist at its exit), so callers that
        inject or sample at a specific location pass it; ``None``
        returns the union.
        """

    @abc.abstractmethod
    def run(self, test_case: int, harness: Harness) -> object:
        """Execute ``test_case`` under ``harness`` and return the output.

        The output must be a picklable, equality-comparable value that
        the failure specification can diff against the golden run's.
        A run may raise an exception when an injected fault crashes the
        target; the campaign treats crashes as failures.
        """

    @abc.abstractmethod
    def is_failure(self, golden_output: object, run_output: object) -> bool:
        """The failure specification: did the run violate the spec?"""

    def fingerprint(self) -> str | None:
        """Content fingerprint of this target's configuration.

        Two targets with equal fingerprints run their test cases
        identically (same class, same constructor-derived state), so
        anything deterministically derived from one -- golden runs in
        particular -- can be reused for the other.

        Every instance attribute participates (private ones included:
        they shape behaviour just the same), via :func:`_encode_state`:
        content reprs pass through, containers recurse, and a
        dataclass-like attribute whose repr is identity-based
        (``<Config object at 0x...>``) is hashed through its
        ``__dict__`` instead of bailing.  Attributes that stay opaque
        even then -- functions, lambdas, modules, classes -- make the
        target return ``None``: *not fingerprintable*, and callers
        must skip content-addressed reuse rather than risk a false
        hit.  Targets carrying such state can override this with a
        content-true fingerprint of their own.
        """
        from repro.orchestration.tasks import fingerprint_of

        state = {}
        for attr, value in sorted(vars(self).items()):
            encoded = _encode_state(value)
            if encoded is None:
                return None
            state[attr] = encoded
        return fingerprint_of(
            {
                "class": f"{type(self).__module__}.{type(self).__qualname__}",
                "name": self.name,
                "state": state,
            }
        )

    def module_sources(self, module: str) -> tuple[object, ...] | None:
        """Source closure of one instrumented module, or ``None``.

        The units (Python modules, classes, functions, or plain source
        strings) whose code -- together with the instance state --
        fully determines the records of a campaign injecting into
        ``module``.  This is the compositional-store eligibility hook:
        a target that declares closures gets module-granular
        invalidation (editing one module re-runs only its shards,
        :mod:`repro.injection.store`); the default ``None`` means the
        closure is unknown and the target is not store-eligible.
        Declaring a closure that misses code the module executes
        breaks the store's bit-identity contract, so when in doubt
        return the whole package (coarse but sound -- any edit
        invalidates every module).
        """
        return None

    def shared_state_fingerprint(self) -> str | None:
        """Fingerprint of the instance state shared across modules.

        Store keys combine this with the per-module source closure.
        Defaults to :meth:`fingerprint`; targets whose instance state
        *embeds* per-module sources (so editing one module would churn
        the whole-instance fingerprint and defeat the delta) override
        it to cover only the genuinely shared state.
        """
        return self.fingerprint()

    def module_fingerprint(self, module: str) -> str | None:
        """Content fingerprint of everything (except the failure spec)
        that determines a campaign's records for ``module``.

        Built from the module's declared source closure
        (:meth:`module_sources`, AST-normalized so comment and
        formatting edits do not invalidate) plus
        :meth:`shared_state_fingerprint`.  ``None`` -- not
        store-eligible -- when the target declares no closure, any
        closure unit has no retrievable source, or the shared state is
        not fingerprintable.
        """
        self.check_module(module)
        sources = self.module_sources(module)
        if sources is None:
            return None
        state = self.shared_state_fingerprint()
        if state is None:
            return None
        normalized = [normalized_source(unit) for unit in sources]
        if any(text is None for text in normalized):
            return None
        from repro.orchestration.tasks import fingerprint_of

        return fingerprint_of(
            {"module": module, "state": state, "sources": normalized}
        )

    def failure_fingerprint(self) -> str | None:
        """Fingerprint of the failure specification's source.

        The store key carries it separately from the module closures
        so an edit to :meth:`is_failure` invalidates every module's
        shards (the spec relabels *all* records).  Helpers the spec
        calls must live in the module closures; this only covers the
        method body itself.  ``None`` when the source is unavailable
        (``exec``'d classes), which makes the target store-ineligible.
        """
        source = normalized_source(type(self).is_failure)
        if source is None:
            return None
        from repro.orchestration.tasks import fingerprint_of

        return fingerprint_of({"failure": source})

    def check_module(self, module: str) -> None:
        if module not in self.modules:
            raise TargetError(
                f"{self.name} has no instrumented module {module!r}; "
                f"available: {self.modules}"
            )

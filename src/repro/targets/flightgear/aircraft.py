"""Aircraft constants and the 9-scenario test grid.

The paper's FG experiments use "3 aircraft masses and 3 wind speeds
uniformly distributed across 1300-2100 lbs and 0-60 kph" -- a light
single-engine aircraft (the numbers match a Cessna-172 class machine).
The aerodynamic constants below describe such an aircraft; they are
tuned so that all nine golden scenarios take off cleanly within the
failure specification of :mod:`repro.targets.flightgear.spec`.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Aircraft", "Scenario", "scenario_for", "LBS_TO_KG", "KPH_TO_MS"]

LBS_TO_KG = 0.45359237
KPH_TO_MS = 1.0 / 3.6

#: Scenario grid of Section VI-C: 3 masses x 3 head-wind speeds.
MASSES_LBS = (1300.0, 1700.0, 2100.0)
WINDS_KPH = (0.0, 30.0, 60.0)


@dataclasses.dataclass(frozen=True)
class Aircraft:
    """Fixed airframe/engine constants (SI units unless noted)."""

    wing_area: float = 16.2          # m^2
    cl_ground: float = 0.35          # lift coefficient at ground attitude
    cl_alpha: float = 5.0            # lift slope per radian of pitch
    cl_max: float = 1.7              # stall lift coefficient
    cd0: float = 0.031               # parasitic drag coefficient
    induced_k: float = 0.052         # induced drag factor (k * CL^2)
    thrust_static: float = 3400.0    # N at v = 0
    thrust_slope: float = 22.0       # N lost per m/s of airspeed
    rho: float = 1.225               # air density kg/m^3
    gravity: float = 9.80665         # m/s^2
    dry_mass_lbs: float = 1150.0     # airframe without fuel, lbs
    fuel_burn_rate: float = 0.008    # kg/s at full throttle
    rotate_speed: float = 28.0       # m/s IAS: Vr
    target_pitch_deg: float = 8.0    # rotation target attitude
    pitch_rate_cmd_deg: float = 3.0  # commanded rotation rate, deg/s
    pitch_inertia: float = 1800.0    # kg m^2 (Iyy)
    runway_clear_height: float = 15.0  # m: "clear of the runway"

    def thrust(self, airspeed: float) -> float:
        """Full-throttle thrust decaying linearly with airspeed."""
        return max(self.thrust_static - self.thrust_slope * airspeed, 0.0)


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One test case: an aircraft mass and a head-wind speed."""

    test_case: int
    mass_lbs: float
    wind_kph: float

    @property
    def mass_kg(self) -> float:
        return self.mass_lbs * LBS_TO_KG

    @property
    def headwind_ms(self) -> float:
        return self.wind_kph * KPH_TO_MS

    @property
    def fuel_kg(self) -> float:
        """Fuel load: scenario mass minus the dry airframe."""
        return (self.mass_lbs - Aircraft.dry_mass_lbs) * LBS_TO_KG


def scenario_for(test_case: int) -> Scenario:
    """Map a test case number 0..8 onto the 3x3 scenario grid."""
    if not 0 <= test_case < len(MASSES_LBS) * len(WINDS_KPH):
        raise ValueError(
            f"FlightGear test cases are 0..{len(MASSES_LBS) * len(WINDS_KPH) - 1}, "
            f"got {test_case}"
        )
    mass = MASSES_LBS[test_case // len(WINDS_KPH)]
    wind = WINDS_KPH[test_case % len(WINDS_KPH)]
    return Scenario(test_case, mass, wind)

"""The ``Mass`` module: fuel burn, total mass, weight and inertia.

Invoked once per control-loop iteration.  Fuel is a persistent module
variable (it burns over the run), so a transient bit flip in it has a
lasting effect -- exactly the behaviour the transient data value fault
model studies.  The flight dynamics loop consumes the weight, mass and
pitch inertia the *exit probe returns*, and the rotation controller
scales its pitch-rate command by the centre-of-gravity offset, so
every exposed variable is on a live path.
"""

from __future__ import annotations

import dataclasses

from repro.injection.instrument import Harness, Location
from repro.targets.flightgear.aircraft import Aircraft, Scenario, LBS_TO_KG

__all__ = ["MassModule", "MassState"]


@dataclasses.dataclass
class MassState:
    """Mass properties returned to the flight dynamics loop."""

    mass: float      # kg total
    weight: float    # N
    inertia: float   # kg m^2 effective pitch inertia
    cg_offset: float  # dimensionless CG offset from reference point


class MassModule:
    """Stateful mass & balance model."""

    def __init__(self, aircraft: Aircraft, scenario: Scenario) -> None:
        self._aircraft = aircraft
        self.dry_mass = aircraft.dry_mass_lbs * LBS_TO_KG
        self.fuel = scenario.fuel_kg
        self.burn_rate = aircraft.fuel_burn_rate
        # CG drifts slightly aft as fuel burns; tiny but live.
        self.cg_offset = 0.02
        self.inertia_base = aircraft.pitch_inertia

    def step(self, harness: Harness, dt: float, throttle: float) -> MassState:
        state = harness.probe(
            "Mass",
            Location.ENTRY,
            {
                "fuel": self.fuel,
                "burn_rate": self.burn_rate,
                "dry_mass": self.dry_mass,
                "cg_offset": self.cg_offset,
                "inertia_base": self.inertia_base,
            },
        )
        fuel = float(state["fuel"])
        burn_rate = float(state["burn_rate"])
        dry_mass = float(state["dry_mass"])
        cg_offset = float(state["cg_offset"])
        inertia_base = float(state["inertia_base"])

        fuel = max(fuel - burn_rate * throttle * dt, 0.0)
        mass_total = dry_mass + fuel
        weight = mass_total * self._aircraft.gravity
        inertia_eff = inertia_base * (1.0 + 0.1 * cg_offset)

        exit_state = harness.probe(
            "Mass",
            Location.EXIT,
            {
                "fuel": fuel,
                "burn_rate": burn_rate,
                "dry_mass": dry_mass,
                "cg_offset": cg_offset,
                "inertia_base": inertia_base,
                "mass_total": mass_total,
                "weight": weight,
                "inertia_eff": inertia_eff,
            },
        )
        self.fuel = float(exit_state["fuel"])
        self.burn_rate = burn_rate
        self.dry_mass = dry_mass
        self.cg_offset = float(exit_state["cg_offset"])
        self.inertia_base = inertia_base
        return MassState(
            mass=float(exit_state["mass_total"]),
            weight=float(exit_state["weight"]),
            inertia=float(exit_state["inertia_eff"]),
            cg_offset=float(exit_state["cg_offset"]),
        )
